#!/usr/bin/env python3
"""Benchmark runner emitting perf-trajectory snapshots.

Two artifacts:

* ``BENCH_solver.json`` — per-module benchmark wall times plus *direct
  solver probes*: fixed workloads driven straight through
  :class:`repro.smt.dpllt.DpllTEngine`, capturing the full solver
  statistics (theory propagations split by theory, reduceDB rounds,
  clauses deleted, live-clause peak, conflicts, decisions).
* ``BENCH_service.json`` — *service probes*: a mixed-fingerprint query
  stream pushed through :class:`repro.service.server.VerificationService`
  twice, recording cold vs warm-pool queries/sec and the pool counters.

Both artifacts are uploaded by CI on every run, so the perf trajectory of
the solver hot path and the service layer is recorded PR over PR and a
regression shows up as a diff between artifacts rather than as an
anecdote.  Run from the repository root::

    python tools/bench_report.py --output BENCH_solver.json
    python tools/bench_report.py --quick          # probes + the solver benches
    python tools/bench_report.py --probes-only --service-output BENCH_service.json

Only the standard library is used; pytest is invoked as a subprocess with
the same interpreter.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Benchmark modules in the order they are reported.  The quick subset is
#: the clause-DB module alone — in CI every other module already runs as
#: its own dedicated job step, so the snapshot must not re-run them.
QUICK_BENCHMARKS = [
    "benchmarks/test_bench_clause_db.py",
]
FULL_BENCHMARKS = QUICK_BENCHMARKS + [
    "benchmarks/test_bench_online_theory.py",
    "benchmarks/test_bench_session.py",
    "benchmarks/test_bench_parallel.py",
    "benchmarks/test_bench_deadlock.py",
    "benchmarks/test_bench_figure4.py",
    "benchmarks/test_bench_service.py",
]


def run_benchmarks(modules):
    """Run each benchmark module; return {module: {seconds, exit_status}}."""
    results = {}
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for module in modules:
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", module, "-q", "-p", "no:cacheprovider"],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        seconds = time.perf_counter() - start
        results[module] = {
            "seconds": round(seconds, 3),
            "exit_status": proc.returncode,
        }
        status = "ok" if proc.returncode == 0 else f"FAILED ({proc.returncode})"
        print(f"  {module}: {seconds:.1f}s {status}")
        if proc.returncode != 0:
            print(proc.stdout[-2000:])
    return results


def _ordering_terms(num_clocks, window_slots):
    from repro.smt.terms import IntVal, IntVar, Le, Lt, Or

    clocks = [IntVar(f"clk{i}") for i in range(num_clocks)]
    terms = []
    for i, j in itertools.combinations(range(num_clocks), 2):
        terms.append(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
    for clock in clocks:
        terms.append(Le(IntVal(0), clock))
        terms.append(Le(clock, IntVal(window_slots - 1)))
    return terms


def _random_3sat(seed, num_vars, ratio=4.26):
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(int(num_vars * ratio)):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses


def sat_core_probe(num_vars=140, instances=6):
    """Propagation-bound probe: hard random 3-SAT straight into the SAT core.

    Reports propagations/sec (the flat core's headline number), whether
    the native kernel is active, and the arena occupancy after the run —
    live words over total words, showing how much garbage the compaction
    policy tolerates.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.smt.sat import SatResult, SatSolver

    propagations = 0
    conflicts = 0
    compactions = 0
    arena_words = 0
    arena_live = 0
    kernel_active = False
    verdicts = {"sat": 0, "unsat": 0}
    start = time.perf_counter()
    for seed in range(instances):
        solver = SatSolver(reduce_db=True)
        solver.ensure_vars(num_vars)
        solver.add_clauses(_random_3sat(seed, num_vars))
        verdict = solver.solve()
        verdicts["sat" if verdict is SatResult.SAT else "unsat"] += 1
        propagations += solver.stats.propagations
        conflicts += solver.stats.conflicts
        compactions += solver.stats.compactions
        arena_words += solver.arena_words
        arena_live += solver.arena_live_words()
        kernel_active = solver.kernel_active
    seconds = time.perf_counter() - start
    probe = {
        "seconds": round(seconds, 3),
        "instances": instances,
        "num_vars": num_vars,
        "verdicts": verdicts,
        "kernel_active": kernel_active,
        "propagations": propagations,
        "conflicts": conflicts,
        "propagations_per_sec": round(propagations / seconds) if seconds else 0,
        "compactions": compactions,
        "arena_words": arena_words,
        "arena_live_words": arena_live,
        "arena_occupancy": round(arena_live / arena_words, 3) if arena_words else 1.0,
    }
    print(
        f"  probe sat_core_3sat: {seconds:.2f}s, "
        f"{probe['propagations_per_sec']:,} props/s "
        f"(kernel={'on' if kernel_active else 'off'}, "
        f"occupancy={probe['arena_occupancy']})"
    )
    return {"sat_core_3sat": probe}


def solver_probes():
    """Fixed solver workloads reported with their full statistics."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.program.interpreter import run_program
    from repro.smt.dpllt import DpllTEngine
    from repro.verification.session import VerificationSession
    from repro.workloads.generators import racy_fanin

    probes = {}

    def record(name, seconds, verdict, stats):
        entry = {"seconds": round(seconds, 3), "verdict": verdict}
        entry.update(stats)
        probes[name] = entry
        print(f"  probe {name}: {seconds:.2f}s ({verdict})")

    # Ordering window: the theory-conflict-heavy UNSAT shape, with and
    # without the hot-path features, so their contributions stay visible.
    terms = _ordering_terms(6, 5)
    for name, knobs in (
        ("ordering_window_6", {}),
        ("ordering_window_6_no_prop", {"idl_propagation": False}),
        ("ordering_window_6_no_reduce", {"reduce_db": False}),
    ):
        engine = DpllTEngine(terms, **knobs)
        start = time.perf_counter()
        verdict = engine.check()
        record(name, time.perf_counter() - start, verdict.value, engine.stats.as_dict())

    # One real trace through the full verification stack.
    run = run_program(racy_fanin(5, assert_first_from_sender0=True), seed=0)
    session = VerificationSession(run.trace)
    start = time.perf_counter()
    result = session.verdict()
    record(
        "racy_fanin_5_verdict",
        time.perf_counter() - start,
        result.verdict.value,
        session.statistics(),
    )
    return probes


def service_probes():
    """Cold vs warm-pool throughput of the verification service.

    The stream is the service benchmark's shape scaled down (8 distinct
    questions × 4 seeds = 32 queries) and runs inline (``jobs=0``) so the
    probe measures pool semantics, not this host's process-spawn latency.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.service import protocol
    from repro.service.server import VerificationService

    specs = [
        {"workload": "figure1"},
        {"workload": "racy_fanin", "params": {"senders": 2}},
        {"workload": "racy_fanin", "params": {"senders": 3}},
        {"workload": "racy_fanin", "params": {"senders": 4}},
        {"workload": "pipeline", "params": {"senders": 6}},
        {"workload": "scatter_gather", "params": {"senders": 3}},
        {"workload": "client_server", "params": {"senders": 3}},
        {"workload": "token_ring", "params": {"senders": 4}},
    ]
    queries = [dict(spec, seed=seed) for seed in range(4) for spec in specs]

    service = VerificationService(jobs=0)
    try:

        def push():
            start = time.perf_counter()
            for index, query in enumerate(queries):
                response = service.handle_json(
                    protocol.make_request("verify", query, request_id=index)
                )
                assert "error" not in response, response
            return time.perf_counter() - start

        cold_seconds = push()
        warm_seconds = push()
        stats = service.handle_json(
            protocol.make_request("stats", request_id=len(queries))
        )["result"]
    finally:
        service.close()

    probe = {
        "queries": len(queries),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_queries_per_sec": round(len(queries) / cold_seconds, 1),
        "warm_queries_per_sec": round(len(queries) / warm_seconds, 1),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "pool_hits": stats["pool"]["hits"],
        "pool_misses": stats["pool"]["misses"],
    }
    print(
        f"  probe service_stream_32: cold {probe['cold_queries_per_sec']} q/s, "
        f"warm {probe['warm_queries_per_sec']} q/s "
        f"({probe['warm_speedup']}x)"
    )
    return {"service_stream_32": probe}


def compare_with_baseline(report, baseline_path, threshold):
    """Wall-time regression gate against a previous ``BENCH_solver.json``.

    Compares the ``seconds`` of every benchmark module and solver probe
    present in both snapshots.  An entry regresses when it is more than
    ``threshold`` times slower *and* at least 0.1s slower in absolute
    terms (sub-100ms probes are noise-bound).  Returns the list of
    regressed entry names.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    regressions = []
    print(f"baseline comparison (threshold {threshold:.2f}x):")
    for section in ("benchmarks", "solver_probes"):
        old_entries = baseline.get(section, {})
        new_entries = report.get(section, {})
        for name in sorted(set(old_entries) & set(new_entries)):
            old_s = old_entries[name].get("seconds")
            new_s = new_entries[name].get("seconds")
            if not old_s or new_s is None:
                continue
            ratio = new_s / old_s
            regressed = ratio > threshold and new_s - old_s > 0.1
            marker = " REGRESSION" if regressed else ""
            print(
                f"  {section}/{name}: {old_s:.2f}s -> {new_s:.2f}s "
                f"({ratio:.2f}x){marker}"
            )
            if regressed:
                regressions.append(f"{section}/{name}")
    if regressions:
        print(f"REGRESSED: {', '.join(regressions)}")
    else:
        print("  no regressions")
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_solver.json")
    parser.add_argument(
        "--service-output",
        default="BENCH_service.json",
        metavar="PATH",
        help="where the service cold-vs-warm snapshot is written",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the solver-focused benchmark modules",
    )
    parser.add_argument(
        "--probes-only",
        action="store_true",
        help="skip pytest benchmark modules entirely",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="previous BENCH_solver.json to compare against; exits 1 when "
        "any shared module or probe regresses past the threshold",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=1.3,
        metavar="RATIO",
        help="wall-time ratio above which a baseline comparison fails",
    )
    args = parser.parse_args(argv)

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {},
        "solver_probes": {},
    }
    print("solver probes:")
    report["solver_probes"] = solver_probes()
    report["solver_probes"].update(sat_core_probe())
    if not args.probes_only:
        modules = QUICK_BENCHMARKS if args.quick else FULL_BENCHMARKS
        print("benchmark modules:")
        report["benchmarks"] = run_benchmarks(modules)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    service_report = {
        "schema": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "service_probes": {},
    }
    print("service probes:")
    service_report["service_probes"] = service_probes()
    with open(args.service_output, "w", encoding="utf-8") as handle:
        json.dump(service_report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.service_output}")
    failed = [
        module
        for module, entry in report["benchmarks"].items()
        if entry["exit_status"] != 0
    ]
    regressions = []
    if args.baseline is not None:
        if os.path.exists(args.baseline):
            regressions = compare_with_baseline(
                report, args.baseline, args.regression_threshold
            )
        else:
            # First run of the gate (or the artifact expired): nothing to
            # compare against is not a failure.
            print(f"baseline {args.baseline} not found; skipping comparison")
    return 1 if failed or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
