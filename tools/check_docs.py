#!/usr/bin/env python3
"""Documentation link and reference checker (stdlib only).

Scans ``README.md`` and every Markdown file under ``docs/`` for

* **relative links** — ``[text](path)`` targets that are not URLs or
  in-page anchors must exist on disk (anchors on existing files are
  accepted without checking the heading), and
* **module references** — every ``repro.foo.bar[.Baz]`` dotted path
  mentioned in prose, tables or code blocks must resolve: the longest
  importable module prefix is imported and any remaining components are
  looked up with ``getattr``.

Exits non-zero listing every dangling link or unresolvable reference, so
CI fails when documentation rots.  Run from the repository root::

    python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — target captured; images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Dotted repro paths: modules and optionally a trailing Class/attr chain.
REFERENCE_PATTERN = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def markdown_files():
    yield os.path.join(REPO_ROOT, "README.md")
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def check_links(path: str, text: str, problems: list) -> None:
    base = os.path.dirname(path)
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]  # in-page anchor on another file
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            problems.append(
                f"{os.path.relpath(path, REPO_ROOT)}: dangling link -> {match.group(1)}"
            )


def resolve_reference(reference: str) -> bool:
    """Import the longest module prefix, getattr the rest."""
    parts = reference.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_references(path: str, text: str, problems: list) -> None:
    for reference in sorted(set(REFERENCE_PATTERN.findall(text))):
        if not resolve_reference(reference):
            problems.append(
                f"{os.path.relpath(path, REPO_ROOT)}: unresolvable reference "
                f"-> {reference}"
            )


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    problems: list = []
    checked = 0
    for path in markdown_files():
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        check_links(path, text, problems)
        check_references(path, text, problems)
        checked += 1
    if problems:
        print(f"check_docs: {len(problems)} problem(s) in {checked} file(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"check_docs: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
