#!/usr/bin/env python3
"""Quickstart: verify the paper's Figure 1 program.

The program (paper Figure 1)::

    Thread t0        Thread t1        Thread t2
    1: recv(A)       recv(C)          send(Y):t0
    2: recv(B)       send(X):t0       send(Z):t1

Thread t0 asserts that its first receive obtained ``Y`` — which is true in
the execution MCC explores (Figure 4a) but false when the message carrying
``Y`` is delayed long enough for ``X`` to overtake it (Figure 4b).  The
symbolic analysis models both behaviours from a single recorded trace and
reports the violation together with a concrete counterexample.

Run with::

    python examples/quickstart.py
"""

from repro.verification import Verdict, VerificationSession, replay_witness
from repro.workloads import figure1_program


def main() -> None:
    program = figure1_program(assert_a_is_y=True)

    # One session = one recorded trace, encoded once; every query below
    # (verdict, pairing enumeration) reuses the same incremental solver.
    session = VerificationSession.from_program(program, seed=0)
    result = session.verdict()

    print("=== recorded trace (one arbitrary interleaving) ===")
    print(result.trace.pretty())
    print()

    print("=== verdict ===")
    print(result.describe())
    print()

    print("=== every admissible send/receive pairing (same encoding) ===")
    for i, matching in enumerate(session.pairings(), start=1):
        print(f"  pairing {i}: recv->send {matching}")
    print()

    if result.verdict is Verdict.VIOLATION:
        print("=== send/receive pairing of the counterexample ===")
        for recv, send in result.witness.pairing_description(result.problem).items():
            print(f"  {recv:10s} <- {send}")
        print()

        print("=== replaying the witness on the MCAPI simulator ===")
        outcome = replay_witness(program, result.problem, result.witness)
        print(f"  replay observed the predicted values : {outcome.values_match}")
        print(f"  replay tripped the program assertion : {outcome.reproduced_violation}")
        for failure in outcome.run.assertion_failures:
            print(f"    assertion {failure.label!r} failed in thread {failure.thread}")


if __name__ == "__main__":
    main()
