#!/usr/bin/env python3
"""Reproduce the paper's Figure 4 comparison: which behaviours does each tool see?

Four analyses are run on the Figure 1 program with the assertion
``A == Y`` (violated only by the delayed-message behaviour of Figure 4b):

* **this work**       — the paper's SMT encoding (delays modelled),
* **Elwakil/Yang**    — SMT encoding without transmission delays,
* **MCC**             — explicit-state exploration without transmission delays,
* **exhaustive**      — explicit-state exploration *with* delays (ground truth).

Expected output: the delay-aware analyses admit 2 pairings and find the bug;
the delay-free analyses admit only the Figure 4a pairing and miss it.

Run with::

    python examples/tool_comparison.py
"""

from repro.baselines import ElwakilEncoder, ExplicitStateExplorer, MccChecker
from repro.baselines.explicit import canonical_matching
from repro.encoding.witness import decode_witness
from repro.encoding.variables import match_var
from repro.program import run_program
from repro.smt import And, CheckResult, Eq, IntVal, Not, Solver
from repro.verification import Verdict, VerificationSession
from repro.workloads import figure1_program


def count_pairings_for_encoder(encoder, trace) -> int:
    """Enumerate the matchings an SMT encoding admits (blocking loop)."""
    problem = encoder.encode(trace, properties=[])
    solver = Solver()
    solver.add_all(problem.assertions(include_property=False))
    count = 0
    while solver.check() is CheckResult.SAT and count < 30:
        witness = decode_witness(problem, solver.model())
        count += 1
        solver.add(
            Not(And([Eq(match_var(r), IntVal(s)) for r, s in witness.matching.items()]))
        )
    return count


def main() -> None:
    program = figure1_program(assert_a_is_y=True)
    trace = run_program(program, seed=0).trace

    rows = []

    # This work: one session answers both the verdict and the enumeration.
    session = VerificationSession(trace)
    ours = session.verdict()
    ours_pairings = len(session.enumerate_pairings())
    rows.append(("this work (delays modelled)", ours_pairings, ours.verdict is Verdict.VIOLATION))

    # Elwakil / Yang style (no delays).
    elwakil_pairings = count_pairings_for_encoder(ElwakilEncoder(), trace)
    problem = ElwakilEncoder().encode(trace)
    solver = Solver()
    solver.add_all(problem.assertions())
    elwakil_bug = solver.check() is CheckResult.SAT
    rows.append(("Elwakil/Yang-style (no delays)", elwakil_pairings, elwakil_bug))

    # MCC style (explicit, no delays).
    mcc = MccChecker(program).check()
    rows.append(("MCC-style (no delays)", mcc.pairing_count(), mcc.property_violated))

    # Ground truth: exhaustive exploration with delays.
    explicit = ExplicitStateExplorer(program).explore()
    rows.append(
        ("exhaustive exploration (delays)", explicit.pairing_count(), bool(explicit.assertion_failures))
    )

    print(f"{'analysis':36s} {'pairings admitted':>18s} {'finds A==Y bug':>15s}")
    print("-" * 72)
    for name, pairings, found in rows:
        print(f"{name:36s} {pairings:>18d} {str(found):>15s}")

    print()
    print("Figure 4a pairing: recv(A)<-Y, recv(C)<-Z, recv(B)<-X")
    print("Figure 4b pairing: recv(A)<-X, recv(C)<-Z, recv(B)<-Y  (needs a delayed Y)")


if __name__ == "__main__":
    main()
