#!/usr/bin/env python3
"""Analysing a realistic fan-in workload: scatter/gather with a racy assumption.

A master thread scatters one task to each of N workers and gathers the
doubled results.  Two properties are checked:

* the *sum* of the gathered results — schedule independent, so the verifier
  proves it SAFE;
* "the first gathered result came from worker 0" — a classic racy assumption
  (all replies target the master's single endpoint), which the verifier
  refutes with a concrete counterexample schedule.

The example also prints how the number of admissible send/receive pairings
grows with the number of workers, which is why symbolic reasoning beats
enumerating interleavings.

Run with::

    python examples/racy_scatter_gather.py
"""

from repro.verification import Verdict, VerificationSession, verify_many
from repro.workloads import racy_fanin, scatter_gather


def main() -> None:
    print("=== scatter/gather: both properties in one batch call ===")
    safe, racy = verify_many(
        [scatter_gather(3), scatter_gather(3, assert_order=True)]
    )
    print(f"sum property     -> verdict: {safe.verdict.value}   (expected: safe)")
    print(f"order property   -> verdict: {racy.verdict.value}   (expected: violation)")
    if racy.verdict is Verdict.VIOLATION:
        print("counterexample pairing:")
        for recv, send in racy.witness.pairing_description(racy.problem).items():
            print(f"  {recv:12s} <- {send}")
    print()

    print("=== behaviour growth of the racy fan-in pattern ===")
    print(f"{'senders':>8s} {'admissible pairings':>22s}")
    for senders in range(1, 5):
        # Encode once per size; the enumeration solves warm on one backend.
        session = VerificationSession.from_program(racy_fanin(senders), seed=0)
        pairings = session.enumerate_pairings()
        print(f"{senders:>8d} {len(pairings):>22d}")
    print("(n! pairings: every delivery order of the racing messages is possible)")


if __name__ == "__main__":
    main()
