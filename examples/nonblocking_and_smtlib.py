#!/usr/bin/env python3
"""Non-blocking receives, custom properties and SMT-LIB export.

This example shows the parts of the API a user debugging a real MCAPI
application would touch:

1. a workload using ``mcapi_msg_recv_i`` + ``mcapi_wait`` (the paper's match
   predicate must anchor the happens-before on the *wait*, not the issue);
2. a custom property phrased over a specific receive's value rather than an
   in-program assertion;
3. exporting the generated problem as an SMT-LIB v2 script, which is what the
   paper's tool handed to Yices — useful for cross-checking with an external
   solver.

Run with::

    python examples/nonblocking_and_smtlib.py
"""

from repro.encoding import ReceiveValueProperty
from repro.program import ProgramBuilder, V, C, run_program
from repro.smt import Eq, Ge, IntVal, SmtLibProcessBackend
from repro.verification import SymbolicVerifier, Verdict, VerificationSession


def build_program():
    """Two producers race into a consumer that posts both receives up front."""
    builder = ProgramBuilder("nonblocking_demo")

    consumer = builder.thread("consumer")
    consumer.recv_i("first", handle="h0")
    consumer.recv_i("second", handle="h1")
    consumer.wait("h0")
    consumer.wait("h1")
    consumer.assign("total", V("first") + V("second"))
    consumer.assertion(V("total").eq(C(30)), label="total-is-30")

    builder.thread("producerA").send("consumer", C(10))
    builder.thread("producerB").send("consumer", C(20))
    return builder.build()


def main() -> None:
    program = build_program()
    verifier = SymbolicVerifier()

    print("=== program assertion: first + second == 30 ===")
    result = verifier.verify_program(program, seed=0)
    print(f"verdict: {result.verdict.value}   (expected: safe — the sum is order independent)")
    print()

    print("=== custom property: the FIRST receive always gets producerA's 10 ===")
    run = run_program(program, seed=0)
    first_recv = min(op.recv_id for op in run.trace.receive_operations())
    prop = ReceiveValueProperty(
        first_recv, lambda v: Eq(v, IntVal(10)), name="first-is-from-A"
    )
    session = VerificationSession(run.trace, properties=[prop], program_run=run)
    racy = session.verdict()
    print(f"verdict: {racy.verdict.value}   (expected: violation — B can be bound first)")
    if racy.verdict is Verdict.VIOLATION:
        print("counterexample receive values:", racy.witness.receive_values)
    print()

    print("=== SMT-LIB export of the generated problem (first 25 lines) ===")
    for line in session.problem.to_smtlib().splitlines()[:25]:
        print(line)
    print("...")
    print()

    # The same script can be solved by an external solver instead of the
    # in-tree engine: set REPRO_SMT_SOLVER (e.g. to "z3") and open the
    # session with backend="smtlib".
    if SmtLibProcessBackend.is_available():
        external = VerificationSession(
            run.trace, properties=[prop], backend="smtlib"
        ).verdict()
        print(f"external solver verdict: {external.verdict.value}")
    else:
        print("(set REPRO_SMT_SOLVER to cross-check with an external solver)")


if __name__ == "__main__":
    main()
