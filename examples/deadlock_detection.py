#!/usr/bin/env python3
"""Symbolic deadlock and orphan-message detection.

The paper's base encoding assumes every receive finds a matching send, so it
cannot express the one bug class the explicit-state explorers catch that it
historically could not: deadlocks and lost messages.  The partial-match
extension closes that gap — this example runs it on three tiny topologies:

* a **circular wait**: two threads that each receive before sending to the
  other (deadlocks in every schedule — there is not even a complete
  recording to analyse, so the session falls back to the static symbolic
  trace);
* a **starved fan-in**: a receiver expecting one message more than is ever
  sent;
* a **lost message**: two senders racing to a single receive — no deadlock,
  but one message is orphaned in every execution.

Run with::

    python examples/deadlock_detection.py
"""

from repro.program.builder import ProgramBuilder
from repro.program.ast import C
from repro.verification import Verdict, VerificationSession
from repro.verification.replay import replay_deadlock_witness
from repro.workloads import circular_wait, starved_fanin


def lost_message_program():
    builder = ProgramBuilder("lost_message")
    builder.thread("recv").recv("a")
    builder.thread("s0").send("recv", C(1))
    builder.thread("s1").send("recv", C(2))
    return builder.build()


def main() -> None:
    # --- circular wait ------------------------------------------------------
    program = circular_wait(2)
    session = VerificationSession.from_program(program, on_deadlock="static")
    result = session.deadlocks()
    print("=== circular_wait(2): deadlock check ===")
    print(f"verdict: {result.verdict.value}")
    print(result.witness.deadlock_description(result.problem))
    print()

    # The witness is a real partial execution: replaying it on the MCAPI
    # simulator must end in a blocked run, not an artefact of the encoding.
    run = replay_deadlock_witness(program, result.problem, result.witness)
    print(f"replayed witness deadlocked : {run.deadlocked}")
    print(f"blocked threads             : {run.result.blocked_tasks}")
    print()

    # --- starved fan-in -----------------------------------------------------
    session = VerificationSession.from_program(
        starved_fanin(2, extra_receives=1), on_deadlock="static"
    )
    result = session.verdict(mode="deadlock")  # equivalent to .deadlocks()
    print("=== starved_fanin(2, extra_receives=1): deadlock check ===")
    print(f"verdict: {result.verdict.value}")
    print(result.witness.deadlock_description(result.problem))
    print()

    # --- lost message -------------------------------------------------------
    session = VerificationSession.from_program(lost_message_program())
    deadlock = session.deadlocks()
    orphan = session.orphans()
    print("=== lost_message: deadlock vs orphan ===")
    print(f"deadlock verdict: {deadlock.verdict.value}   (the receive always completes)")
    print(f"orphan verdict  : {orphan.verdict.value}")
    if orphan.verdict is Verdict.VIOLATION:
        print(orphan.witness.deadlock_description(orphan.problem))


if __name__ == "__main__":
    main()
