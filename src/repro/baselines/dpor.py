"""A sleep-set partial-order-reduction explorer (Inspect/DPOR-style baseline).

The paper motivates SMT-based analyses with Fusion's speed-up over Inspect, a
stateless model checker using dynamic partial-order reduction [Flanagan &
Godefroid, POPL 2005].  This module provides the explicit-state comparison
point for the runtime benchmarks: the same exhaustive exploration as
:class:`repro.baselines.explicit.ExplicitStateExplorer` but pruned with
*sleep sets* over a conservative independence relation, so redundant
interleavings of commuting actions are visited only once.

Independence used (conservative — anything doubtful is treated as dependent,
which preserves soundness of the reduction):

* two deliveries are independent iff they target different endpoints;
* a thread step and a delivery are independent iff the thread does not own
  the destination endpoint;
* two thread steps of different threads are independent iff neither is about
  to perform a send, receive or wait that shares an endpoint with the other.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.baselines.explicit import ExplorationResult, _World
from repro.mcapi.endpoint import EndpointId
from repro.mcapi.scheduler import Action, TaskStatus
from repro.program.ast import Program, Receive, ReceiveNonblocking, Send, Wait
from repro.program.interpreter import ThreadTask
from repro.utils.errors import McapiError

__all__ = ["SleepSetExplorer"]


class SleepSetExplorer:
    """Exhaustive exploration with sleep-set pruning."""

    def __init__(
        self,
        program: Program,
        max_runs: Optional[int] = None,
        max_depth: int = 10_000,
    ) -> None:
        program.validate()
        self.program = program
        self.max_runs = max_runs
        self.max_depth = max_depth

    # ------------------------------------------------------------------ public

    def explore(self) -> ExplorationResult:
        result = ExplorationResult()
        root = _World(self.program, delay_free=False)
        self._dfs(root, frozenset(), 0, result)
        return result

    # ------------------------------------------------------------------ independence

    def _action_endpoints(self, world: _World, action: Action) -> Set[EndpointId]:
        """Endpoints an action may touch (used by the independence relation)."""
        if action.kind == "deliver":
            record = world.runtime.network.find(action.message_id)
            return {record.message.destination}
        task = next(t for t in world.tasks if t.name == action.task_name)
        statement = task._peek()
        endpoints: Set[EndpointId] = set()
        if isinstance(statement, Send):
            endpoints.add(task._endpoint_for(statement.destination))
        elif isinstance(statement, (Receive, ReceiveNonblocking)):
            endpoints.add(task._endpoint_for(statement.endpoint))
        elif isinstance(statement, Wait):
            endpoints.add(task._endpoint_for(None))
        return endpoints

    def _owned_endpoint(self, world: _World, task_name: str) -> EndpointId:
        task = next(t for t in world.tasks if t.name == task_name)
        return task._endpoint_for(None)

    def independent(self, world: _World, a: Action, b: Action) -> bool:
        """Conservative independence check between two enabled actions."""
        if a.kind == "deliver" and b.kind == "deliver":
            ra = world.runtime.network.find(a.message_id)
            rb = world.runtime.network.find(b.message_id)
            return ra.message.destination != rb.message.destination
        if a.kind == "run" and b.kind == "run":
            if a.task_name == b.task_name:
                return False
            return not (self._action_endpoints(world, a) & self._action_endpoints(world, b))
        # Mixed run/deliver.
        run_action = a if a.kind == "run" else b
        deliver_action = a if a.kind == "deliver" else b
        record = world.runtime.network.find(deliver_action.message_id)
        destination = record.message.destination
        if destination == self._owned_endpoint(world, run_action.task_name):
            return False
        return destination not in self._action_endpoints(world, run_action)

    # ------------------------------------------------------------------ DFS

    def _budget_left(self, result: ExplorationResult) -> bool:
        if self.max_runs is None:
            return True
        return result.complete_runs + result.deadlocks < self.max_runs

    def _dfs(
        self,
        world: _World,
        sleep: FrozenSet[Tuple[str, object]],
        depth: int,
        result: ExplorationResult,
    ) -> None:
        if not self._budget_left(result):
            result.truncated = True
            return
        if depth > self.max_depth:
            raise McapiError(f"exploration exceeded max depth {self.max_depth}")

        if world.all_done():
            result.complete_runs += 1
            result.matchings.add(world.matching())
            result.orphan_messages.update(world.orphaned_sends())
            for label in world.assertion_failures():
                result.assertion_failures.add(label)
            return

        actions = world.enabled_actions()
        explorable = [a for a in actions if a.key() not in sleep]
        if not actions:
            result.deadlocks += 1
            return
        if not explorable:
            # Everything enabled is asleep: this state's behaviours are
            # covered by sibling branches.
            return

        done_here: List[Action] = []
        for action in explorable:
            if not self._budget_left(result):
                result.truncated = True
                return
            child = world.fork()
            # Child sleep set: actions explored earlier from this state that
            # are independent of the chosen action stay asleep.
            child_sleep = {
                earlier.key()
                for earlier in done_here
                if self.independent(world, earlier, action)
            }
            child_sleep |= {
                key
                for key in sleep
                if self._still_independent(world, key, action)
            }
            child.perform(action)
            result.transitions_explored += 1
            self._dfs(child, frozenset(child_sleep), depth + 1, result)
            done_here.append(action)

    def _still_independent(
        self, world: _World, sleeping_key: Tuple[str, object], action: Action
    ) -> bool:
        """Keep a sleeping action asleep only if it is independent of ``action``."""
        kind, payload = sleeping_key
        if kind == "run":
            sleeping = Action(kind="run", task_name=payload)  # type: ignore[arg-type]
        else:
            sleeping = Action(kind="deliver", message_id=payload)  # type: ignore[arg-type]
        try:
            return self.independent(world, sleeping, action)
        except (StopIteration, McapiError):
            # The sleeping action no longer exists in this state; drop it.
            return False
