"""An Elwakil & Yang (PADTAD 2010)-style SMT encoding baseline.

The closely related work the paper compares against also models MCAPI
executions as SMT problems, but — per the paper's §1/§2 — it "ignores
potential delays in the MCAPI communication network", and therefore misses
behaviours such as Figure 4b.

Ignoring transmission delays means a message is considered to *arrive* at
its destination endpoint at the moment the send executes, so the order in
which messages arrive at an endpoint equals the order in which their sends
execute.  We reproduce that semantics on top of our own (clock-based)
encoding by adding **no-overtaking** constraints: if two receives on the same
endpoint occur in program order ``r_i`` before ``r_j``, then the send matched
to ``r_i`` must execute before the send matched to ``r_j``.  Everything else
(program order, match disjunctions, uniqueness, events, negated properties)
is shared with the faithful encoder, which isolates exactly the difference
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.encoding.encoder import EncodedProblem, EncoderOptions, TraceEncoder
from repro.encoding.properties import Property
from repro.encoding.variables import clock_var, match_var
from repro.matching.matchpairs import MatchPairs
from repro.smt.terms import And, Eq, Implies, IntVal, Lt, Term
from repro.trace.trace import ExecutionTrace

__all__ = ["ElwakilEncoder", "no_overtaking_constraints"]


def no_overtaking_constraints(
    trace: ExecutionTrace, match_pairs: MatchPairs
) -> List[Term]:
    """Delay-free arrival order: matched sends respect receive program order.

    For receives ``r_i`` (earlier) and ``r_j`` (later) on the same endpoint,
    and candidate sends ``s_a`` of ``r_i`` and ``s_b`` of ``r_j``::

        match(r_i) = a  and  match(r_j) = b   ==>   clk(s_a) < clk(s_b)
    """
    constraints: List[Term] = []
    receives = sorted(trace.receive_operations(), key=lambda op: op.recv_id)
    sends = {event.send_id: event for event in trace.sends()}

    for i, earlier in enumerate(receives):
        for later in receives[i + 1 :]:
            if earlier.endpoint != later.endpoint:
                continue
            if earlier.thread != later.thread:
                continue
            # Receive order on one endpoint is the owning thread's program
            # order; ``receive_operations`` sorts by recv_id which follows it.
            for send_a in match_pairs.get_sends(earlier.recv_id):
                for send_b in match_pairs.get_sends(later.recv_id):
                    if send_a == send_b:
                        continue
                    premise = And(
                        Eq(match_var(earlier), IntVal(send_a)),
                        Eq(match_var(later), IntVal(send_b)),
                    )
                    conclusion = Lt(
                        clock_var(sends[send_a].event_id),
                        clock_var(sends[send_b].event_id),
                    )
                    constraints.append(Implies(premise, conclusion))
    return constraints


class ElwakilEncoder(TraceEncoder):
    """The delay-free ("no overtaking") variant of the trace encoder."""

    def encode(
        self,
        trace: ExecutionTrace,
        properties: Optional[Sequence[Property]] = None,
        match_pairs: Optional[MatchPairs] = None,
    ) -> EncodedProblem:
        problem = super().encode(trace, properties=properties, match_pairs=match_pairs)
        problem.extras = problem.extras + no_overtaking_constraints(
            trace, problem.match_pairs
        )
        return problem
