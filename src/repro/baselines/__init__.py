"""Baseline analyses the paper compares against (or motivates with).

* :mod:`repro.baselines.explicit` — exhaustive explicit-state exploration
  (ground truth, with and without the no-delay assumption).
* :mod:`repro.baselines.mcc` — MCC-style checking: all thread interleavings,
  but no transmission delays.
* :mod:`repro.baselines.elwakil` — the delay-free SMT encoding in the style
  of Elwakil & Yang (PADTAD 2010).
* :mod:`repro.baselines.dpor` — sleep-set partial-order reduction
  (Inspect/DPOR-style) used for the runtime comparison benchmarks.
"""

from repro.baselines.explicit import ExplicitStateExplorer, ExplorationResult, Matching
from repro.baselines.mcc import MccChecker, MccResult
from repro.baselines.elwakil import ElwakilEncoder, no_overtaking_constraints
from repro.baselines.dpor import SleepSetExplorer

__all__ = [
    "ExplicitStateExplorer",
    "ExplorationResult",
    "Matching",
    "MccChecker",
    "MccResult",
    "ElwakilEncoder",
    "no_overtaking_constraints",
    "SleepSetExplorer",
]
