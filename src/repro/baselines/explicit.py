"""Exhaustive explicit-state exploration of a program's schedules.

This is the ground-truth oracle of the reproduction: it enumerates *every*
scheduler decision sequence — which thread steps next and, when the network
model allows it, which in-flight message is delivered next — and records the
behaviours reached (send/receive matchings, assertion failures, deadlocks).

Two delivery modes matter for the paper's comparison:

* ``delay_free=False`` (default): deliveries are explicit choices under the
  :class:`repro.mcapi.network.UnorderedDelivery` policy.  This explores all
  behaviours the paper's symbolic encoding models, and is used to validate
  the encoding's soundness and completeness on small programs.
* ``delay_free=True``: after every step all deliverable messages are flushed
  to their endpoints in global send order — the no-transmission-delay
  assumption of MCC.  The MCC baseline (:mod:`repro.baselines.mcc`) is this
  mode plus MCC's reporting conventions.

The explorer is exponential by construction (that is the point of comparing
it against the SMT encoding); ``max_runs`` bounds the work.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.mcapi.network import ImmediateDelivery, UnorderedDelivery
from repro.mcapi.runtime import McapiRuntime
from repro.mcapi.scheduler import Action, Scheduler, Task, TaskStatus
from repro.program.ast import Program
from repro.program.interpreter import ProgramRunner, ThreadTask
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import McapiError

__all__ = [
    "ExplorationResult",
    "ExplicitStateExplorer",
    "Matching",
    "canonical_matching",
]

#: A complete behaviour signature: the set of (receive, send) pairs, where
#: each operation is identified canonically by ``(thread, thread_index)`` so
#: that matchings are comparable *across* runs and across tools (trace-local
#: send/recv ids are assigned in execution order and would not be stable).
OperationKey = Tuple[str, int]
Matching = FrozenSet[Tuple[OperationKey, OperationKey]]


def canonical_matching(trace: ExecutionTrace, matching: Dict[int, int]) -> Matching:
    """Convert a ``recv_id -> send_id`` matching into the canonical form.

    Used to compare the symbolic verifier's pairings (expressed in
    trace-local identifiers) with the explicit-state explorers' behaviours.
    """
    receives = {op.recv_id: op for op in trace.receive_operations()}
    sends = {event.send_id: event for event in trace.sends()}
    pairs = set()
    for recv_id, send_id in matching.items():
        recv = receives[recv_id]
        issue_event = trace[recv.issue_event_id]
        send = sends[send_id]
        pairs.add(
            (
                (issue_event.thread, issue_event.thread_index),
                (send.thread, send.thread_index),
            )
        )
    return frozenset(pairs)


@dataclass
class ExplorationResult:
    """Aggregate of everything the exploration observed."""

    matchings: Set[Matching] = field(default_factory=set)
    assertion_failures: Set[str] = field(default_factory=set)
    deadlocks: int = 0
    complete_runs: int = 0
    truncated: bool = False
    transitions_explored: int = 0
    #: Sends (canonical ``(thread, thread_index)`` keys) that went unreceived
    #: in at least one *complete* run — the ground truth the symbolic
    #: :class:`repro.encoding.properties.OrphanMessageProperty` is checked
    #: against by the deadlock differential harness.
    orphan_messages: Set[OperationKey] = field(default_factory=set)

    @property
    def found_violation(self) -> bool:
        return bool(self.assertion_failures) or self.deadlocks > 0

    def pairing_count(self) -> int:
        return len(self.matchings)

    def summary(self) -> Dict[str, object]:
        return {
            "complete_runs": self.complete_runs,
            "distinct_matchings": len(self.matchings),
            "assertion_failures": sorted(self.assertion_failures),
            "deadlocks": self.deadlocks,
            "orphan_messages": sorted(self.orphan_messages),
            "transitions": self.transitions_explored,
            "truncated": self.truncated,
        }


class _World:
    """A self-contained simulation state that can be forked with deepcopy."""

    def __init__(self, program: Program, delay_free: bool) -> None:
        policy = ImmediateDelivery() if delay_free else UnorderedDelivery()
        runner = ProgramRunner(program, policy=policy)
        runtime, endpoints, tasks, builder = runner._setup()
        self.runtime = runtime
        self.tasks: List[ThreadTask] = tasks
        self.builder = builder
        self.delay_free = delay_free

    # -- scheduling primitives ---------------------------------------------------

    def task_statuses(self) -> Dict[str, TaskStatus]:
        return {task.name: task.status(self.runtime) for task in self.tasks}

    def enabled_actions(self) -> List[Action]:
        actions: List[Action] = []
        for task in self.tasks:
            if task.status(self.runtime) is TaskStatus.READY:
                actions.append(Action.run(task))
        if not self.delay_free:
            for record in self.runtime.deliverable_messages():
                actions.append(Action.deliver(record))
        return actions

    def perform(self, action: Action) -> None:
        if action.kind == "run":
            task = next(t for t in self.tasks if t.name == action.task_name)
            task.step(self.runtime)
        else:
            record = self.runtime.network.find(action.message_id)
            self.runtime.deliver(record)
        self.runtime.advance_step()
        if self.delay_free:
            self._flush_deliveries()

    def _flush_deliveries(self) -> None:
        """Deliver everything immediately, oldest message first (no delays)."""
        while True:
            deliverable = self.runtime.deliverable_messages()
            if not deliverable:
                return
            record = min(deliverable, key=lambda r: r.message_id)
            self.runtime.deliver(record)
            self.runtime.advance_step()

    def all_done(self) -> bool:
        return all(
            task.status(self.runtime) is TaskStatus.DONE for task in self.tasks
        )

    def fork(self) -> "_World":
        return copy.deepcopy(self)

    # -- outcome extraction --------------------------------------------------------

    def trace(self) -> ExecutionTrace:
        return self.builder.trace

    def matching(self) -> Matching:
        observed = {
            op.recv_id: op.observed_send_id
            for op in self.builder.trace.receive_operations()
            if op.observed_send_id is not None
        }
        return canonical_matching(self.builder.trace, observed)

    def assertion_failures(self) -> List[str]:
        labels: List[str] = []
        for task in self.tasks:
            for failure in task.assertion_failures:
                labels.append(failure.label or f"{failure.thread}@{failure.event_id}")
        return labels

    def orphaned_sends(self) -> Set[OperationKey]:
        """Canonical keys of sends no receive consumed in this run."""
        trace = self.builder.trace
        consumed = {
            op.observed_send_id
            for op in trace.receive_operations()
            if op.observed_send_id is not None
        }
        return {
            (event.thread, event.thread_index)
            for event in trace.sends()
            if event.send_id not in consumed
        }


class ExplicitStateExplorer:
    """Depth-first exhaustive exploration of scheduler choices."""

    def __init__(
        self,
        program: Program,
        delay_free: bool = False,
        max_runs: Optional[int] = None,
        max_depth: int = 10_000,
    ) -> None:
        program.validate()
        self.program = program
        self.delay_free = delay_free
        self.max_runs = max_runs
        self.max_depth = max_depth

    def explore(self) -> ExplorationResult:
        result = ExplorationResult()
        root = _World(self.program, delay_free=self.delay_free)
        if self.delay_free:
            root._flush_deliveries()
        self._dfs(root, 0, result)
        return result

    # ------------------------------------------------------------------ internals

    def _budget_left(self, result: ExplorationResult) -> bool:
        if self.max_runs is None:
            return True
        return result.complete_runs + result.deadlocks < self.max_runs

    def _dfs(self, world: _World, depth: int, result: ExplorationResult) -> None:
        if not self._budget_left(result):
            result.truncated = True
            return
        if depth > self.max_depth:
            raise McapiError(f"exploration exceeded max depth {self.max_depth}")

        if world.all_done():
            result.complete_runs += 1
            result.matchings.add(world.matching())
            result.orphan_messages.update(world.orphaned_sends())
            for label in world.assertion_failures():
                result.assertion_failures.add(label)
            return

        actions = world.enabled_actions()
        if not actions:
            result.deadlocks += 1
            return

        for action in actions:
            if not self._budget_left(result):
                result.truncated = True
                return
            child = world.fork()
            child.perform(action)
            result.transitions_explored += 1
            self._dfs(child, depth + 1, result)
