"""An MCC-style baseline model checker.

MCC [Sharma et al., FMCAD 2009] is a runtime model checker for MCAPI user
applications.  The limitation the paper highlights (§1, §2) is that MCC "is
not able to consider non-deterministic delays in the communication network
when sending messages from two different threads to a common endpoint": a
message is assumed to arrive (and be queued) as soon as it is sent, so the
arrival order at an endpoint always equals the global send order.

This baseline reproduces exactly that analysis: it exhaustively explores all
thread interleavings (like MCC's dynamic exploration) but delivers messages
eagerly, in send order, with no transmission delays.  On the paper's Figure 1
program it therefore reports only the Figure 4a pairing and misses the
assertion violation that requires the Figure 4b behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.baselines.explicit import ExplicitStateExplorer, ExplorationResult, Matching
from repro.program.ast import Program

__all__ = ["MccResult", "MccChecker"]


@dataclass
class MccResult:
    """What the MCC-style exploration reports."""

    exploration: ExplorationResult
    property_violated: bool
    violated_labels: Set[str] = field(default_factory=set)

    @property
    def matchings(self) -> Set[Matching]:
        return self.exploration.matchings

    def pairing_count(self) -> int:
        return self.exploration.pairing_count()

    def summary(self) -> Dict[str, object]:
        data = self.exploration.summary()
        data["property_violated"] = self.property_violated
        return data


class MccChecker:
    """Explicit-state checking under the no-transmission-delay assumption."""

    def __init__(self, program: Program, max_runs: Optional[int] = None) -> None:
        self.program = program
        self.max_runs = max_runs

    def check(self) -> MccResult:
        """Explore all thread interleavings with delay-free delivery."""
        explorer = ExplicitStateExplorer(
            self.program, delay_free=True, max_runs=self.max_runs
        )
        exploration = explorer.explore()
        return MccResult(
            exploration=exploration,
            property_violated=bool(exploration.assertion_failures)
            or exploration.deadlocks > 0,
            violated_labels=set(exploration.assertion_failures),
        )
