"""Lightweight wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start(); _ = sum(range(1000)); sw.stop()
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (excluding a currently-running span)."""
        total = self._elapsed
        if self._start is not None:
            total += time.perf_counter() - self._start
        return total


class Timer:
    """Context manager measuring one span of wall-clock time.

    >>> with Timer() as t:
    ...     _ = [i * i for i in range(100)]
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class StatsCollector:
    """Named counters and timing series, used for solver statistics."""

    counters: Dict[str, int] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append(value)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def summary(self) -> Dict[str, float]:
        """Flatten into a report-friendly dictionary."""
        out: Dict[str, float] = dict(self.counters)
        for name, values in self.series.items():
            if values:
                out[f"{name}_mean"] = sum(values) / len(values)
                out[f"{name}_max"] = max(values)
        return out
