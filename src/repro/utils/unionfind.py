"""Union-find (disjoint sets) with path compression and union by rank.

Used by the EUF congruence-closure theory solver and by the DPOR baseline's
independence analysis.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are added lazily on first use, so callers never need to
    pre-declare the universe.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, x: Hashable) -> None:
        """Ensure ``x`` is present as (at least) a singleton class."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0

    def find(self, x: Hashable) -> Hashable:
        """Return the canonical representative of ``x``'s class."""
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the classes of ``a`` and ``b``; return the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are currently in the same class."""
        return self.find(a) == self.find(b)

    def classes(self) -> List[Set[Hashable]]:
        """Return the current partition as a list of sets."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return list(groups.values())

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)
