"""Monotonic identifier generation.

Identifiers are plain ``int``s; each :class:`IdGenerator` hands them out
densely starting from a configurable base.  The trace analysis assigns every
send operation a unique identifier this way (paper §2), and the same
mechanism numbers events, endpoints and SMT variables.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable


class IdGenerator:
    """Hands out consecutive integers, optionally memoising by key."""

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._start = start
        self._by_key: Dict[Hashable, int] = {}

    def fresh(self) -> int:
        """Return the next unused identifier."""
        return next(self._counter)

    def for_key(self, key: Hashable) -> int:
        """Return a stable identifier for ``key`` (allocating on first use)."""
        if key not in self._by_key:
            self._by_key[key] = self.fresh()
        return self._by_key[key]

    def known(self, key: Hashable) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def reset(self) -> None:
        self._counter = itertools.count(self._start)
        self._by_key.clear()
