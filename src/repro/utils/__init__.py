"""Small shared utilities used across the repro packages.

Everything here is dependency-free (stdlib only) and deterministic: all
randomised helpers require an explicit seed so that traces, schedules and
workloads are reproducible run-to-run.
"""

from repro.utils.rng import DeterministicRNG
from repro.utils.timing import Stopwatch, Timer
from repro.utils.ids import IdGenerator
from repro.utils.unionfind import UnionFind
from repro.utils.errors import (
    ReproError,
    EncodingError,
    SolverError,
    McapiError,
    ProgramError,
    TraceError,
)

__all__ = [
    "DeterministicRNG",
    "Stopwatch",
    "Timer",
    "IdGenerator",
    "UnionFind",
    "ReproError",
    "EncodingError",
    "SolverError",
    "McapiError",
    "ProgramError",
    "TraceError",
]
