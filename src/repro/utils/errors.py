"""Exception hierarchy for the repro package.

A single root exception (:class:`ReproError`) makes it easy for callers to
catch anything raised by the library without also swallowing unrelated
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class SolverError(ReproError):
    """Raised for misuse of the SMT solver or internal solver failures."""


class UnknownBackendError(SolverError):
    """Raised when a solver backend name does not resolve in the registry."""


class BackendUnavailableError(SolverError):
    """Raised when a registered backend cannot run in this environment.

    The canonical case is :class:`repro.smt.backend.SmtLibProcessBackend`
    when no external SMT solver binary is configured.
    """


class IncompleteEnumerationError(SolverError):
    """Raised when a pairing enumeration stops on UNKNOWN instead of UNSAT.

    The matchings discovered before the solver gave up are available on the
    :attr:`pairings` attribute; callers must not treat them as complete.
    """

    def __init__(self, message: str, pairings=()) -> None:
        super().__init__(message)
        self.pairings = list(pairings)


class EncodingError(ReproError):
    """Raised when a trace cannot be encoded into an SMT problem."""


class McapiError(ReproError):
    """Raised by the MCAPI runtime simulator for API misuse.

    Mirrors the error statuses of the C API: most runtime routines also
    report a status code, but programming errors (using an endpoint that
    was never created, waiting on a foreign request handle, ...) raise.
    """


class ProgramError(ReproError):
    """Raised for malformed programs in the modelling language."""


class TraceError(ReproError):
    """Raised for malformed or inconsistent execution traces."""


class PropertyError(ReproError):
    """Raised for malformed correctness properties."""


class MatchPairError(ReproError):
    """Raised when match-pair generation fails or is given a bad trace."""


class CacheSchemaError(ReproError):
    """Raised when an on-disk result store uses an incompatible key layout.

    The cache refuses such a store outright (rather than silently serving
    stale or mis-keyed answers, or crashing mid-lookup): the fix is to
    point the cache at a fresh directory or delete the old one.
    """


class ServiceError(ReproError):
    """Raised for failures in the verification service layer.

    Covers both sides of the wire: a client that cannot reach or talk to a
    daemon, and a daemon whose worker pool is in an unusable state.
    """


class ServiceProtocolError(ServiceError):
    """Raised when a service peer sends a malformed or oversized frame."""
