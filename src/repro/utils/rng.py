"""Deterministic random number generation.

Every stochastic component in the library (the simulator's scheduler, the
network delay model, workload generators) draws randomness through a
:class:`DeterministicRNG` constructed from an explicit seed.  No module in
the library touches Python's global ``random`` state.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded random source with a small, convenient API.

    Parameters
    ----------
    seed:
        Any hashable seed.  Two instances constructed with equal seeds
        produce identical streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was constructed with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRNG":
        """Create an independent generator derived from this seed and ``salt``.

        Forking is used to give each simulated thread / network link its own
        stream so that adding randomness consumption in one component does
        not perturb the others.
        """
        return DeterministicRNG((hash((self._seed, salt)) & 0x7FFFFFFF))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range ``[lo, hi]``."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(seq)

    def shuffle(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list (the input is not modified)."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(list(seq), k)

    def geometric(self, p: float, cap: int = 64) -> int:
        """Number of failures before the first success, capped at ``cap``.

        Used by the network delay model: a message's delivery is deferred a
        geometrically distributed number of scheduling steps.
        """
        if not (0.0 < p <= 1.0):
            raise ValueError("p must be in (0, 1]")
        n = 0
        while n < cap and self._random.random() > p:
            n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(seed={self._seed!r})"
