"""Match-pair generation: the over-approximate and precise analyses."""

from repro.matching.matchpairs import MatchPairs
from repro.matching.overapprox import endpoint_match_pairs
from repro.matching.precise import (
    count_feasible_matchings,
    enumerate_matchings,
    matching_is_feasible,
    precise_match_pairs,
)

__all__ = [
    "MatchPairs",
    "endpoint_match_pairs",
    "count_feasible_matchings",
    "enumerate_matchings",
    "matching_is_feasible",
    "precise_match_pairs",
]
