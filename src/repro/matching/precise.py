"""Precise match-pair generation by depth-first abstract execution.

The paper (§3) obtains a *precise* set of match pairs "through a depth-first
abstract execution of the trace", and notes that while exact, the method can
be prohibitively expensive.  This module implements that analysis:

* the abstract state of an execution is captured entirely by which send each
  receive is matched to (the concrete data values are irrelevant because the
  branch outcomes are fixed by the trace);
* a complete matching is *feasible* iff the precedence relation it induces —
  program order plus one ``send -> receive-completion`` edge per matched pair
  — is acyclic, i.e. some interleaving realises it;
* the precise match-pair set maps every receive to the sends that appear in
  at least one feasible complete matching.

The exhaustive enumeration underlying this is also exposed
(:func:`enumerate_matchings`) because the coverage benchmarks and the
explicit-state baseline use it as ground truth for "how many behaviours does
the program have".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.matching.matchpairs import MatchPairs
from repro.matching.overapprox import endpoint_match_pairs
from repro.trace.trace import ExecutionTrace, ReceiveOperation
from repro.utils.errors import MatchPairError

__all__ = [
    "precise_match_pairs",
    "enumerate_matchings",
    "count_feasible_matchings",
    "matching_is_feasible",
]


# ---------------------------------------------------------------------------
# Precedence graph utilities
# ---------------------------------------------------------------------------


def _program_order_edges(trace: ExecutionTrace) -> List[Tuple[int, int]]:
    return trace.program_order_pairs()


def _has_cycle(num_events: int, edges: Sequence[Tuple[int, int]]) -> bool:
    """Detect a cycle in the event precedence graph (iterative colouring DFS)."""
    adjacency: Dict[int, List[int]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)

    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * num_events
    for root in range(num_events):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, child_index = stack[-1]
            children = adjacency.get(node, [])
            if child_index < len(children):
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                if colour[child] == GREY:
                    return True
                if colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def matching_is_feasible(
    trace: ExecutionTrace, matching: Dict[int, int]
) -> bool:
    """Check whether a (possibly partial) matching admits an interleaving.

    ``matching`` maps ``recv_id`` to ``send_id``.  Feasibility only requires
    the precedence relation (program order plus matched-pair happens-before)
    to be acyclic; injectivity and endpoint agreement are the caller's
    responsibility (the enumerators below enforce them).
    """
    receives = {op.recv_id: op for op in trace.receive_operations()}
    sends = {event.send_id: event for event in trace.sends()}
    edges = list(_program_order_edges(trace))
    for recv_id, send_id in matching.items():
        if recv_id not in receives:
            raise MatchPairError(f"unknown receive {recv_id}")
        if send_id not in sends:
            raise MatchPairError(f"unknown send {send_id}")
        edges.append((sends[send_id].event_id, receives[recv_id].completion_event_id))
    return not _has_cycle(len(trace), edges)


# ---------------------------------------------------------------------------
# Depth-first enumeration of complete matchings
# ---------------------------------------------------------------------------


def enumerate_matchings(
    trace: ExecutionTrace,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, int]]:
    """Yield every feasible complete matching of the trace.

    A complete matching assigns every receive a distinct send targeting its
    endpoint such that the induced precedence relation is acyclic.  The
    enumeration is a depth-first search over receives (in ``recv_id`` order)
    with incremental feasibility pruning — the "depth-first abstract
    execution" of the paper.

    ``limit`` bounds the number of matchings yielded (None = all).
    """
    receives: List[ReceiveOperation] = sorted(
        trace.receive_operations(), key=lambda op: op.recv_id
    )
    sends = {event.send_id: event for event in trace.sends()}
    candidates = endpoint_match_pairs(trace)
    base_edges = list(_program_order_edges(trace))
    num_events = len(trace)

    yielded = 0
    assignment: Dict[int, int] = {}
    used_sends: set = set()
    edge_stack: List[Tuple[int, int]] = list(base_edges)

    def dfs(index: int) -> Iterator[Dict[int, int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if index == len(receives):
            yielded += 1
            yield dict(assignment)
            return
        op = receives[index]
        for send_id in candidates.get_sends(op.recv_id):
            if send_id in used_sends:
                continue
            edge = (sends[send_id].event_id, op.completion_event_id)
            edge_stack.append(edge)
            if not _has_cycle(num_events, edge_stack):
                assignment[op.recv_id] = send_id
                used_sends.add(send_id)
                yield from dfs(index + 1)
                used_sends.discard(send_id)
                assignment.pop(op.recv_id, None)
            edge_stack.pop()
            if limit is not None and yielded >= limit:
                return

    yield from dfs(0)


def count_feasible_matchings(trace: ExecutionTrace, limit: Optional[int] = None) -> int:
    """Number of feasible complete matchings (optionally capped at ``limit``)."""
    return sum(1 for _ in enumerate_matchings(trace, limit=limit))


def precise_match_pairs(trace: ExecutionTrace, limit: Optional[int] = None) -> MatchPairs:
    """The precise match-pair set (union over all feasible complete matchings).

    ``limit`` caps the number of matchings explored; when hit, the result may
    be a subset of the true precise set (the benchmarks use the cap to show
    the cost curve without unbounded runtimes).
    """
    mapping: Dict[int, List[int]] = {
        op.recv_id: [] for op in trace.receive_operations()
    }
    for matching in enumerate_matchings(trace, limit=limit):
        for recv_id, send_id in matching.items():
            if send_id not in mapping[recv_id]:
                mapping[recv_id].append(send_id)
    return MatchPairs.from_mapping(trace, mapping)
