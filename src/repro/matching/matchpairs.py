"""The match-pair set: which sends each receive could pair with.

The paper's trace analysis produces a set ``MatchPairs`` containing every
receive operation of the trace, together with a function ``getSends`` mapping
each receive to all the send operations it could match with (§2).  This
module provides that data structure; the two generation strategies live in
:mod:`repro.matching.overapprox` (endpoint-based, cheap) and
:mod:`repro.matching.precise` (depth-first abstract execution, exact but
potentially exponential — the paper's §3 notes exactly this trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.trace.trace import ExecutionTrace, ReceiveOperation
from repro.trace.events import SendEvent
from repro.utils.errors import MatchPairError

__all__ = ["MatchPairs"]


@dataclass
class MatchPairs:
    """Maps every receive operation of a trace to its candidate sends.

    Attributes
    ----------
    candidates:
        ``recv_id -> ordered list of send_ids`` the receive may match.
    receives:
        The receive operations, indexed by ``recv_id``.
    sends:
        The send events, indexed by ``send_id``.
    """

    candidates: Dict[int, List[int]] = field(default_factory=dict)
    receives: Dict[int, ReceiveOperation] = field(default_factory=dict)
    sends: Dict[int, SendEvent] = field(default_factory=dict)

    # ------------------------------------------------------------------ access

    def get_sends(self, recv_id: int) -> List[int]:
        """The paper's ``getSends``: candidate send ids for one receive."""
        if recv_id not in self.candidates:
            raise MatchPairError(f"unknown receive id {recv_id}")
        return list(self.candidates[recv_id])

    def receive_ids(self) -> List[int]:
        return sorted(self.candidates)

    def receive(self, recv_id: int) -> ReceiveOperation:
        return self.receives[recv_id]

    def send(self, send_id: int) -> SendEvent:
        return self.sends[send_id]

    def pair_count(self) -> int:
        """Total number of (receive, send) candidate pairs."""
        return sum(len(sends) for sends in self.candidates.values())

    def __len__(self) -> int:
        return len(self.candidates)

    # ------------------------------------------------------------------ queries

    def is_subset_of(self, other: "MatchPairs") -> bool:
        """True if every candidate pair of ``self`` also appears in ``other``."""
        for recv_id, sends in self.candidates.items():
            if recv_id not in other.candidates:
                return False
            if not set(sends) <= set(other.candidates[recv_id]):
                return False
        return True

    def summary(self) -> Dict[str, int]:
        sizes = [len(s) for s in self.candidates.values()]
        return {
            "receives": len(self.candidates),
            "pairs": self.pair_count(),
            "max_candidates": max(sizes) if sizes else 0,
            "min_candidates": min(sizes) if sizes else 0,
        }

    def validate(self, trace: ExecutionTrace) -> None:
        """Check the match pairs are consistent with the trace."""
        recv_ops = {op.recv_id: op for op in trace.receive_operations()}
        send_events = {event.send_id: event for event in trace.sends()}
        for recv_id, send_ids in self.candidates.items():
            if recv_id not in recv_ops:
                raise MatchPairError(f"receive {recv_id} is not in the trace")
            for send_id in send_ids:
                if send_id not in send_events:
                    raise MatchPairError(f"send {send_id} is not in the trace")
                if send_events[send_id].destination != recv_ops[recv_id].endpoint:
                    raise MatchPairError(
                        f"send {send_id} targets {send_events[send_id].destination} "
                        f"but receive {recv_id} listens on {recv_ops[recv_id].endpoint}"
                    )

    # ------------------------------------------------------------------ construction

    @staticmethod
    def from_mapping(
        trace: ExecutionTrace, mapping: Mapping[int, Iterable[int]]
    ) -> "MatchPairs":
        """Build a MatchPairs object from an explicit recv->sends mapping."""
        receives = {op.recv_id: op for op in trace.receive_operations()}
        sends = {event.send_id: event for event in trace.sends()}
        pairs = MatchPairs(
            candidates={recv: sorted(set(send_ids)) for recv, send_ids in mapping.items()},
            receives=receives,
            sends=sends,
        )
        pairs.validate(trace)
        return pairs
