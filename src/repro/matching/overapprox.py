"""Endpoint-based (over-approximate) match-pair generation.

A receive on endpoint ``e`` can only ever obtain a message that was sent to
``e``; this generator therefore pairs every receive with *all* sends in the
trace that target its endpoint.  The set is an over-approximation of the
precise (reachability-aware) set — exactly the "reasonable over-approximation
of the match-pair set" the paper's future-work section proposes — but it is
*safe* for the encoding: infeasible pairs are ruled out by the ``POrder`` /
``match`` / ``PUnique`` constraints of the SMT problem itself, so the verifier
remains sound and complete while the generation cost drops from exponential
to linear.
"""

from __future__ import annotations

from typing import Dict, List

from repro.matching.matchpairs import MatchPairs
from repro.trace.trace import ExecutionTrace

__all__ = ["endpoint_match_pairs"]


def endpoint_match_pairs(trace: ExecutionTrace) -> MatchPairs:
    """Pair each receive with every send targeting the same endpoint."""
    sends_by_endpoint: Dict[object, List[int]] = {}
    for event in trace.sends():
        sends_by_endpoint.setdefault(event.destination, []).append(event.send_id)

    mapping: Dict[int, List[int]] = {}
    for op in trace.receive_operations():
        mapping[op.recv_id] = sorted(sends_by_endpoint.get(op.endpoint, []))
    return MatchPairs.from_mapping(trace, mapping)
