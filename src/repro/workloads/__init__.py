"""Workload programs: the paper's Figure 1 plus parameterised generators."""

from repro.workloads.figure1 import (
    X_VALUE,
    Y_VALUE,
    Z_VALUE,
    all_feasible_pairings,
    figure1_program,
    figure4a_pairing,
    figure4b_pairing,
)
from repro.workloads.generators import (
    branching_consumer,
    circular_wait,
    client_server,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    random_program,
    scatter_gather,
    starved_fanin,
    token_ring,
)

__all__ = [
    "X_VALUE",
    "Y_VALUE",
    "Z_VALUE",
    "all_feasible_pairings",
    "figure1_program",
    "figure4a_pairing",
    "figure4b_pairing",
    "branching_consumer",
    "circular_wait",
    "client_server",
    "nonblocking_fanin",
    "pipeline",
    "racy_fanin",
    "random_program",
    "scatter_gather",
    "starved_fanin",
    "token_ring",
]
