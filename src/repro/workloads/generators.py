"""Parameterised MCAPI workload generators.

These are the programs the benchmark harness sweeps over.  Each generator
returns a :class:`repro.program.ast.Program`; all of them are built from the
communication patterns the paper's introduction motivates (several senders
racing towards one endpoint, pipelines of dependent transfers, request /
response services) so that the scalability and coverage results exercise the
same phenomena as the Figure 1 example, just bigger.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.program.ast import C, Program, V
from repro.program.builder import ProgramBuilder
from repro.utils.errors import ProgramError

__all__ = [
    "racy_fanin",
    "pipeline",
    "token_ring",
    "scatter_gather",
    "client_server",
    "nonblocking_fanin",
    "branching_consumer",
    "circular_wait",
    "starved_fanin",
    "random_program",
]


def _payload(sender: int, index: int) -> int:
    """A distinct, recognisable payload per (sender, message index)."""
    return 100 * (sender + 1) + index


def racy_fanin(
    num_senders: int,
    messages_per_sender: int = 1,
    assert_first_from_sender0: bool = False,
) -> Program:
    """``num_senders`` threads each send messages to a single receiver.

    This is the direct generalisation of Figure 1's race: every message
    targets the same endpoint, so any interleaving of deliveries is possible
    and the number of admissible matchings grows factorially.

    With ``assert_first_from_sender0`` the receiver asserts that its *first*
    message came from sender 0 — true in some executions, false in others,
    which is the shape of property the symbolic analysis is built to expose.
    """
    if num_senders < 1:
        raise ProgramError("racy_fanin needs at least one sender")
    builder = ProgramBuilder(f"racy_fanin_{num_senders}x{messages_per_sender}")

    receiver = builder.thread("recv")
    total = num_senders * messages_per_sender
    for index in range(total):
        receiver.recv(f"m{index}")
    if assert_first_from_sender0:
        receiver.assertion(
            V("m0").eq(C(_payload(0, 0))), label="first-message-from-sender0"
        )

    for sender in range(num_senders):
        thread = builder.thread(f"send{sender}")
        for index in range(messages_per_sender):
            thread.send("recv", C(_payload(sender, index)))
    return builder.build()


def pipeline(depth: int, initial_value: int = 1) -> Program:
    """A linear pipeline: each stage receives a value, adds one, forwards it.

    The final stage asserts the value equals ``initial_value + depth - 1``,
    which must hold in *every* execution — a property the verifier should
    prove unreachable to violate.
    """
    if depth < 2:
        raise ProgramError("pipeline needs at least two stages")
    builder = ProgramBuilder(f"pipeline_{depth}")

    first = builder.thread("stage0")
    first.assign("v", C(initial_value))
    first.send("stage1", V("v"))

    for stage in range(1, depth):
        thread = builder.thread(f"stage{stage}")
        thread.recv("v")
        thread.assign("w", V("v") + 1)
        if stage < depth - 1:
            thread.send(f"stage{stage + 1}", V("w"))
        else:
            thread.assertion(
                V("w").eq(C(initial_value + depth - 1)), label="pipeline-sum"
            )
    return builder.build()


def token_ring(size: int, rounds: int = 1, token: int = 7) -> Program:
    """A token circulates ``rounds`` times around a ring of ``size`` threads.

    Thread 0 injects the token, every thread forwards it, and thread 0
    finally asserts the token value is unchanged.
    """
    if size < 2:
        raise ProgramError("token_ring needs at least two threads")
    builder = ProgramBuilder(f"token_ring_{size}x{rounds}")

    threads = [builder.thread(f"node{i}") for i in range(size)]
    threads[0].send("node1", C(token))
    for _ in range(rounds):
        for index in range(1, size):
            threads[index].recv("tok")
            threads[index].send(f"node{(index + 1) % size}", V("tok"))
        threads[0].recv("tok")
        if _ < rounds - 1:
            threads[0].send("node1", V("tok"))
    threads[0].assertion(V("tok").eq(C(token)), label="token-preserved")
    return builder.build()


def scatter_gather(num_workers: int, assert_order: bool = False) -> Program:
    """A master scatters one task per worker and gathers the doubled results.

    The master's final assertion on the *sum* of results holds in every
    execution; with ``assert_order`` an additional assertion claims the first
    gathered result came from worker 0, which is racy (violable) because the
    workers' replies target a single master endpoint.
    """
    if num_workers < 1:
        raise ProgramError("scatter_gather needs at least one worker")
    builder = ProgramBuilder(f"scatter_gather_{num_workers}")

    master = builder.thread("master")
    for worker in range(num_workers):
        master.send(f"worker{worker}", C(worker + 1))
    for index in range(num_workers):
        master.recv(f"r{index}")
    total = V("r0")
    for index in range(1, num_workers):
        total = total + V(f"r{index}")
    expected = sum(2 * (w + 1) for w in range(num_workers))
    master.assertion(total.eq(C(expected)), label="gather-sum")
    if assert_order:
        master.assertion(V("r0").eq(C(2)), label="first-reply-from-worker0")

    for worker in range(num_workers):
        thread = builder.thread(f"worker{worker}")
        thread.recv("task")
        thread.assign("result", V("task") * 2)
        thread.send("master", V("result"))
    return builder.build()


def client_server(num_clients: int) -> Program:
    """``num_clients`` clients send requests to a server that replies to each.

    Requests race towards the server's endpoint; replies are directed, so
    each client's assertion (reply == its own request + 1000) holds in every
    execution only because the server echoes the request id back — the racy
    part is *which* request the server handles first.
    """
    if num_clients < 1:
        raise ProgramError("client_server needs at least one client")
    builder = ProgramBuilder(f"client_server_{num_clients}")

    server = builder.thread("server")
    for index in range(num_clients):
        server.recv(f"req{index}")
    # Reply to clients in a fixed order with the *slot* value it received;
    # the slot may hold any client's request, so the replies carry the echo.
    for index in range(num_clients):
        server.send(f"client{index}", V(f"req{index}") + 1000)

    for client in range(num_clients):
        thread = builder.thread(f"client{client}")
        thread.send("server", C(client + 1))
        thread.recv("reply")
        thread.assertion(V("reply") > C(1000), label=f"client{client}-got-reply")
    return builder.build()


def nonblocking_fanin(num_senders: int) -> Program:
    """Like :func:`racy_fanin` but the receiver uses ``recv_i`` + ``wait``.

    This exercises the non-blocking receive path of the paper's ``match``
    predicate: the happens-before constraint must reference the *wait*
    operation, not the receive issue.
    """
    if num_senders < 1:
        raise ProgramError("nonblocking_fanin needs at least one sender")
    builder = ProgramBuilder(f"nonblocking_fanin_{num_senders}")

    receiver = builder.thread("recv")
    for index in range(num_senders):
        receiver.recv_i(f"m{index}", handle=f"h{index}")
    for index in range(num_senders):
        receiver.wait(f"h{index}")
    receiver.assertion(
        V("m0").eq(C(_payload(0, 0))), label="first-request-bound-to-sender0"
    )

    for sender in range(num_senders):
        thread = builder.thread(f"send{sender}")
        thread.send("recv", C(_payload(sender, 0)))
    return builder.build()


def branching_consumer(threshold: int = 150) -> Program:
    """A consumer whose control flow depends on the received value.

    Two producers race to a consumer; the consumer branches on the first
    value and forwards either the value itself or a marker along the same
    acknowledgement channel.  Used to test that the analysis is *path
    constrained*: the generated SMT problem follows the branch outcome of the
    recorded trace, so which producer "won" in the recorded run determines
    which constraint set is generated.
    """
    builder = ProgramBuilder("branching_consumer")

    consumer = builder.thread("consumer")
    consumer.recv("x")
    consumer.if_(
        V("x") > C(threshold),
        then=[_send_stmt("ack", V("x"))],
        orelse=[_send_stmt("ack", V("x") + 1000)],
    )
    consumer.recv("y")
    consumer.assertion(V("x").ne(V("y")), label="values-differ")

    producer_a = builder.thread("prodA")
    producer_a.send("consumer", C(100))
    producer_b = builder.thread("prodB")
    producer_b.send("consumer", C(200))

    acker = builder.thread("ack")
    acker.recv("got")
    acker.send("consumer", V("got") + 1)
    return builder.build()


def _send_stmt(destination: str, payload):
    """Helper constructing a raw Send statement for nested bodies."""
    from repro.program.ast import Send

    return Send(destination, payload)


def circular_wait(size: int = 2, kickstart: bool = False) -> Program:
    """A ring of threads that each receive before sending onwards.

    Without a kick-starter every thread blocks on its first receive forever
    — the classic circular-wait deadlock, in every schedule.  With
    ``kickstart=True`` an extra thread injects one message into node 0 and
    the ring drains deadlock-free, so the pair makes a minimal positive /
    negative example for deadlock verification.
    """
    if size < 2:
        raise ProgramError("circular_wait needs at least two threads")
    builder = ProgramBuilder(f"circular_wait_{size}{'_kick' if kickstart else ''}")
    for index in range(size):
        thread = builder.thread(f"node{index}")
        thread.recv("tok")
        if not (kickstart and index == size - 1):
            thread.send(f"node{(index + 1) % size}", V("tok") + 1)
    if kickstart:
        starter = builder.thread("starter")
        starter.send("node0", C(1))
    return builder.build()


def starved_fanin(num_senders: int, extra_receives: int = 1) -> Program:
    """A fan-in whose receiver expects more messages than are ever sent.

    The first ``num_senders`` receives complete in some order; the last
    ``extra_receives`` block forever — fan-in starvation.  With
    ``extra_receives=0`` this is exactly :func:`racy_fanin` and is
    deadlock-free.
    """
    if num_senders < 1:
        raise ProgramError("starved_fanin needs at least one sender")
    if extra_receives < 0:
        raise ProgramError("extra_receives must be >= 0")
    builder = ProgramBuilder(f"starved_fanin_{num_senders}+{extra_receives}")
    receiver = builder.thread("recv")
    for index in range(num_senders + extra_receives):
        receiver.recv(f"m{index}")
    for sender in range(num_senders):
        thread = builder.thread(f"send{sender}")
        thread.send("recv", C(_payload(sender, 0)))
    return builder.build()


def random_program(
    rng: random.Random,
    max_senders: int = 3,
    max_receivers: int = 2,
    max_messages: int = 4,
    nonblocking_probability: float = 0.25,
    forward_probability: float = 0.3,
    allow_deadlock: bool = False,
    arith_heavy: bool = False,
    name: Optional[str] = None,
) -> Program:
    """A seeded random send/recv topology, deadlock-free by construction
    unless ``allow_deadlock`` lifts the restriction.

    The generator draws a random fan-in/fan-out shape — ``1..max_senders``
    pure-sender threads firing ``1..max_messages`` messages (each with a
    globally distinct payload) at ``1..max_receivers`` receiver threads —
    and then decorates it:

    * a receiver may use non-blocking ``recv_i`` + ``wait`` instead of
      blocking receives (exercising the wait-based ``match`` constraints);
    * a receiver may *forward* a symbolic expression over its first
      received value to a strictly later receiver (exercising ``PEvents``
      propagation through sends), acyclically so no deadlock can arise;
    * a receiver with messages may end with one of three assertion shapes:
      a **sum** assertion over everything it received (holds in every
      execution), a **first-message** assertion pinning its first value to
      one particular send's payload (racy whenever several sends target the
      endpoint), or an **impossible** assertion (violated in every
      execution).  It may also assert nothing.

    With ``allow_deadlock=True`` one randomly drawn fault is injected on
    top (possibly none, so the corpus stays a mix):

    * **starvation** — one receiver expects 1–2 more messages than it can
      ever obtain (fan-in starvation: deadlock in every schedule);
    * **lost message** — one receiver performs fewer receives than the
      messages sent to it (orphaned messages, no deadlock);
    * **circular wait** — two receivers each expect one extra "ring"
      message that the other only sends after completing all of its own
      receives (a cyclic wait: deadlock in every schedule).

    Faulted receivers carry no assertions — the questions asked of this
    corpus are the deadlock/orphan verdicts, whose ground truth the
    explicit-state explorers provide.

    With ``arith_heavy=True`` two additional assertion shapes join the
    draw, emitting *chained integer comparisons* so the theory solvers see
    long difference chains and genuinely linear (non-unit-coefficient)
    constraints instead of the match-dominated equality shapes above:

    * **chain** — ``m0 < m1``, ``m1 <= m2 + c``, ... between consecutive
      received slots (pure difference logic, racy: the truth depends on
      which payloads land in which slot);
    * **weighted** — ``2*m0 <= m1 + ... + c`` (a non-difference constraint,
      forcing the general LIA lane).

    The default draw sequence is unchanged when the knob is off, so
    existing seeded corpora reproduce byte-identically.

    Programs stay branch-free on purpose: the symbolic analysis is
    path-constrained, so branch-free inputs are exactly the class on which
    one recorded trace covers *all* executions and the verdict must agree
    with exhaustive explicit-state exploration — the contract the
    randomized differential harnesses check.  Every draw comes from
    ``rng``, so a seeded :class:`random.Random` reproduces the program
    exactly.
    """
    if max_senders < 1 or max_receivers < 1 or max_messages < 1:
        raise ProgramError("random_program needs positive size bounds")
    builder = ProgramBuilder(name or "random_program")

    num_receivers = rng.randint(1, max_receivers)
    num_senders = rng.randint(1, max_senders)
    num_messages = rng.randint(1, max_messages)

    # Message plan: (sender, receiver, payload); payloads globally distinct
    # and positive so the "impossible" assertion below is genuinely
    # unsatisfiable and "first" assertions identify one send unambiguously.
    plan = [
        (rng.randrange(num_senders), rng.randrange(num_receivers), 101 + 7 * index)
        for index in range(num_messages)
    ]

    # Acyclic forwarding: receiver j may relay a derived value to a strictly
    # later receiver k > j, which simply expects one extra message.
    inbound_payloads: List[List[int]] = [
        [payload for _, receiver, payload in plan if receiver == index]
        for index in range(num_receivers)
    ]
    forwards: List[Optional[int]] = [None] * num_receivers
    extra_inbound = [0] * num_receivers
    for index in range(num_receivers - 1):
        if inbound_payloads[index] and rng.random() < forward_probability:
            target = rng.randrange(index + 1, num_receivers)
            forwards[index] = target
            extra_inbound[target] += 1

    # Fault injection (allow_deadlock only).  All bookkeeping is in terms
    # of how many receives each receiver performs versus how many messages
    # can ever reach its endpoint.
    starve_extra = [0] * num_receivers
    dropped = [0] * num_receivers
    ring_pair: Optional[tuple] = None
    faulted: set = set()
    fault = rng.choice(["none", "starve", "orphan", "circular"]) if allow_deadlock else "none"
    if fault == "starve":
        victim = rng.randrange(num_receivers)
        starve_extra[victim] = rng.randint(1, 2)
        faulted.add(victim)
    elif fault == "orphan":
        candidates = [i for i in range(num_receivers) if inbound_payloads[i]]
        if candidates:
            victim = rng.choice(candidates)
            drop = rng.randint(1, len(inbound_payloads[victim]))
            dropped[victim] = drop
            faulted.add(victim)
            remaining = (
                len(inbound_payloads[victim]) + extra_inbound[victim] - drop
            )
            if remaining <= 0 and forwards[victim] is not None:
                # Nothing received, nothing to forward: cancel the relay and
                # the extra receive its target budgeted for.
                extra_inbound[forwards[victim]] -= 1
                faulted.add(forwards[victim])
                forwards[victim] = None
    elif fault == "circular":
        if num_receivers >= 2:
            first, second = rng.sample(range(num_receivers), 2)
            ring_pair = (min(first, second), max(first, second))
            faulted.update(ring_pair)
        else:
            starve_extra[0] = 1  # degenerate ring: starve instead
            faulted.add(0)

    for index in range(num_receivers):
        thread = builder.thread(f"recv{index}")
        expected = (
            len(inbound_payloads[index])
            + extra_inbound[index]
            + starve_extra[index]
            - dropped[index]
        )
        if ring_pair is not None and index in ring_pair:
            expected += 1  # the ring message the partner (never) sends
        if expected <= 0:
            thread.skip("no inbound messages")
            continue
        variables = [f"m{index}_{slot}" for slot in range(expected)]
        if rng.random() < nonblocking_probability:
            for slot, variable in enumerate(variables):
                thread.recv_i(variable, handle=f"h{index}_{slot}")
            for slot in range(expected):
                thread.wait(f"h{index}_{slot}")
        else:
            for variable in variables:
                thread.recv(variable)
        if forwards[index] is not None:
            thread.send(f"recv{forwards[index]}", V(variables[0]) + 1)
        if ring_pair is not None and index in ring_pair:
            partner = ring_pair[1] if index == ring_pair[0] else ring_pair[0]
            thread.send(f"recv{partner}", V(variables[0]) + 2)

        # Assertions only range over the directly sent payloads when the
        # receiver also collects forwarded (symbolic) values: the sum of a
        # forwarded value is execution-dependent, so "sum" and "impossible"
        # claims are restricted to receivers with purely constant inbound
        # traffic to keep their truth value analysable by construction.
        # Faulted receivers never assert: their receives may not complete.
        if index in faulted:
            continue
        kinds = ["none", "first", "sum", "impossible"]
        if arith_heavy:
            kinds = kinds + ["chain", "weighted", "chain"]
        kind = rng.choice(kinds)
        if kind == "chain" and len(variables) >= 2:
            # Chained comparisons between consecutive slots: a difference
            # chain whose truth depends on the delivery order.
            for slot, (left, right) in enumerate(zip(variables, variables[1:])):
                if rng.random() < 0.5:
                    expr = V(left) < V(right)
                else:
                    expr = V(left) <= V(right) + C(rng.randint(0, 5))
                thread.assertion(expr, label=f"recv{index}-chain{slot}")
        elif kind == "weighted" and len(variables) >= 2:
            # 2*m0 <= m1 + ... + c: a non-difference constraint exercising
            # the general LIA lane (and its incremental migration).
            total = V(variables[1])
            for variable in variables[2:]:
                total = total + V(variable)
            thread.assertion(
                V(variables[0]) * 2 <= total + C(rng.randint(0, 300)),
                label=f"recv{index}-weighted",
            )
        if kind == "first":
            anchor = rng.choice(
                inbound_payloads[index]
            ) if inbound_payloads[index] else None
            if anchor is not None and extra_inbound[index] == 0:
                thread.assertion(
                    V(variables[0]).eq(C(anchor)), label=f"recv{index}-first"
                )
        elif kind == "sum" and extra_inbound[index] == 0:
            total = V(variables[0])
            for variable in variables[1:]:
                total = total + V(variable)
            thread.assertion(
                total.eq(C(sum(inbound_payloads[index]))),
                label=f"recv{index}-sum",
            )
        elif kind == "impossible" and extra_inbound[index] == 0:
            thread.assertion(
                V(variables[0]).eq(C(-1)), label=f"recv{index}-impossible"
            )

    for index in range(num_senders):
        thread = builder.thread(f"send{index}")
        sent = False
        for sender, receiver, payload in plan:
            if sender == index:
                thread.send(f"recv{receiver}", C(payload))
                sent = True
        if not sent:
            thread.skip("drew no messages")
    return builder.build()
