"""The paper's Figure 1 program and its two behaviours (Figure 4a / 4b).

::

    Thread t0        Thread t1        Thread t2
    1: recv(A)       recv(C)          send(Y):t0
    2: recv(B)       send(X):t0       send(Z):t1

Both ``send(Y)`` (from t2) and ``send(X)`` (from t1) target thread t0, and
nothing forces their delivery order: if the message carrying ``Y`` is delayed
long enough, ``recv(A)`` obtains ``X`` instead (the paper's Figure 4b), a
behaviour MCC and the Elwakil/Yang encoding ignore.

The module also provides the two concrete pairings of Figure 4 as data, so
tests and benchmarks can compare what each analysis admits against the
paper's ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.program.ast import C, Program, V
from repro.program.builder import ProgramBuilder

__all__ = [
    "X_VALUE",
    "Y_VALUE",
    "Z_VALUE",
    "figure1_program",
    "figure4a_pairing",
    "figure4b_pairing",
    "all_feasible_pairings",
]

#: Concrete payloads used for the symbolic messages X, Y, Z of the paper.
X_VALUE = 10
Y_VALUE = 20
Z_VALUE = 30


def figure1_program(
    assert_a_is_y: bool = False,
    assert_a_is_x: bool = False,
) -> Program:
    """Build the Figure 1 program.

    Parameters
    ----------
    assert_a_is_y:
        Add ``assert A == Y`` at the end of thread t0.  This assertion holds
        in the Figure 4a behaviour (the only one MCC explores) but is
        violated by the Figure 4b behaviour, so a *complete* analysis must
        report it as violable.
    assert_a_is_x:
        Add ``assert A == X`` instead — violated by Figure 4a, witnessing
        that behaviour.
    """
    builder = ProgramBuilder("figure1")

    t0 = builder.thread("t0")
    t0.recv("A")
    t0.recv("B")
    if assert_a_is_y:
        t0.assertion(V("A").eq(C(Y_VALUE)), label="A-received-Y")
    if assert_a_is_x:
        t0.assertion(V("A").eq(C(X_VALUE)), label="A-received-X")

    t1 = builder.thread("t1")
    t1.recv("C")
    t1.send("t0", C(X_VALUE))

    t2 = builder.thread("t2")
    t2.send("t0", C(Y_VALUE))
    t2.send("t1", C(Z_VALUE))

    return builder.build()


def figure4a_pairing() -> Dict[str, str]:
    """The pairing of Figure 4a: Y->recv(A), Z->recv(C), X->recv(B).

    Sends are written with their concrete payloads (X=10, Y=20, Z=30) so the
    dictionaries compare directly against
    :meth:`repro.encoding.witness.Witness.pairing_description`.
    """
    return {
        "recv(A)": f"send({Y_VALUE})@t2",
        "recv(C)": f"send({Z_VALUE})@t2",
        "recv(B)": f"send({X_VALUE})@t1",
    }


def figure4b_pairing() -> Dict[str, str]:
    """The pairing of Figure 4b: Z->recv(C), X->recv(A), Y->recv(B)."""
    return {
        "recv(A)": f"send({X_VALUE})@t1",
        "recv(C)": f"send({Z_VALUE})@t2",
        "recv(B)": f"send({Y_VALUE})@t2",
    }


def all_feasible_pairings() -> List[Dict[str, str]]:
    """All pairings an analysis that models delays must admit.

    recv(C) can only obtain Z (it is the only message sent to t1), while
    recv(A)/recv(B) can obtain X and Y in either order — exactly the two
    behaviours of the paper's Figure 4.
    """
    return [figure4a_pairing(), figure4b_pairing()]
