"""``PMatchPartial``: the partial-match extension of the paper's encoding.

The base encoding (Figure 2) asserts that *every* receive finds a matching
send, which is exactly why it cannot express the one bug class the
explicit-state explorers detect and the symbolic verifier historically could
not: deadlocks and orphaned messages.  This module relaxes that assumption
the way the paper's future-work section gestures at: every receive ``r``
gets a Boolean *unmatched* indicator ``u_r`` and the models of the problem
become the **partial** executions of the trace — per-thread prefixes cut at
blocked communication operations — in addition to the complete ones.

Three constraint families replace/extend ``PMatchPairs``:

1. **Partial match disjunction** (one per receive): either ``u_r`` holds and
   the match variable is pinned to a per-receive negative sentinel (so
   ``PUnique`` keeps working verbatim), or ``¬u_r`` and one of the usual
   ``match(r, s)`` disjuncts holds — now strengthened with *executed*
   guards on both sides (a message can only flow between operations that
   were actually reached).

2. **Executed guards**: an event is executed iff every receive operation
   whose *completion* precedes it in program order was matched.  (Sends in
   this model never block; receives and waits are the only blocking points,
   so the executed prefix of a thread is exactly "everything before its
   first unmatched blocking point".)

3. **Blocking semantics** (one per receive — the heart of the extension): a
   *reached* receive may be unmatched only if it is genuinely blocked, i.e.
   every candidate send that was executed has been consumed by some *other*
   receive.  Without this family, models could declare arbitrary receives
   "unmatched" and every trace would trivially "deadlock".

A deadlock is then simply a satisfying assignment with some ``u_r`` true
(:class:`repro.encoding.properties.DeadlockProperty`), and an orphaned
message is an executed send no receive consumed
(:class:`repro.encoding.properties.OrphanMessageProperty`).

Scope note: for branch-free traces (the class on which one recorded trace
covers all executions) the extension is exact — validated against the
exhaustive and DPOR explorers by the deadlock differential harness.  For
traces with branches the answer is relative to the recorded branch
outcomes, and branch conditions over values of never-completed receives may
over-constrain partial executions; see ``docs/paper-map.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.encoding.matchenc import match_predicate
from repro.encoding.variables import (
    match_var,
    unmatched_sentinel,
    unmatched_var,
)
from repro.matching.matchpairs import MatchPairs
from repro.smt.terms import And, Eq, FALSE, Implies, IntVal, Not, Or, TRUE, Term
from repro.trace.events import SendEvent, TraceEvent
from repro.trace.trace import ExecutionTrace, ReceiveOperation

__all__ = [
    "blocking_predecessors",
    "executed_guard",
    "consumed_term",
    "partial_match_constraints",
    "blocking_constraints",
]


class _GuardIndex:
    """Precomputed per-thread blocking structure of one trace.

    The constraint builders query ``executed(event)`` once per candidate
    pair; recomputing the receive-operation projection for every query is
    quadratic in practice (the encoding-overhead benchmark gates this), so
    the completion positions are indexed once per trace.
    """

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace
        self.operations = trace.receive_operations()
        #: thread -> [(completion thread_index, recv_id)], in program order.
        self._completions: Dict[str, List[tuple]] = {}
        for op in self.operations:
            position = trace[op.completion_event_id].thread_index
            self._completions.setdefault(op.thread, []).append((position, op.recv_id))
        for positions in self._completions.values():
            positions.sort()
        self._memo: Dict[tuple, Term] = {}

    def predecessors(self, event: TraceEvent) -> List[int]:
        """recv_ids whose completion precedes ``event`` in its thread."""
        return [
            recv_id
            for position, recv_id in self._completions.get(event.thread, [])
            if position < event.thread_index
        ]

    def guard(self, event: TraceEvent | int) -> Term:
        """``executed(event)``: no blocking predecessor is unmatched."""
        if isinstance(event, int):
            event = self.trace[event]
        key = (event.thread, event.thread_index)
        cached = self._memo.get(key)
        if cached is None:
            predecessors = self.predecessors(event)
            cached = (
                And([Not(unmatched_var(recv_id)) for recv_id in predecessors])
                if predecessors
                else TRUE
            )
            self._memo[key] = cached
        return cached


def blocking_predecessors(
    trace: ExecutionTrace, event: TraceEvent | int
) -> List[ReceiveOperation]:
    """Receive operations whose completion precedes ``event`` in its thread.

    These are the operations that can cut the thread's executed prefix
    before ``event``: a blocking receive blocks at its (single) event, a
    non-blocking receive blocks at its ``wait``.  Sends never block in the
    modelled MCAPI semantics, so receives/waits are the only cut points.
    """
    if isinstance(event, int):
        event = trace[event]
    return [
        op
        for op in trace.receive_operations()
        if op.thread == event.thread
        and trace[op.completion_event_id].thread_index < event.thread_index
    ]


def executed_guard(trace: ExecutionTrace, event: TraceEvent | int) -> Term:
    """``executed(event)``: no blocking predecessor of the event is unmatched."""
    predecessors = blocking_predecessors(trace, event)
    if not predecessors:
        return TRUE
    return And([Not(unmatched_var(op.recv_id)) for op in predecessors])


def consumed_term(
    trace: ExecutionTrace,
    send: SendEvent,
    exclude_recv: Optional[int] = None,
) -> Term:
    """``consumed(send)``: some receive's match variable names this send.

    Only receives listening on the send's destination endpoint can consume
    it, so the disjunction ranges over exactly those; ``exclude_recv``
    drops one receive (used by the blocking constraints, which ask whether
    a send was consumed by some *other* receive).
    """
    disjuncts = [
        Eq(match_var(op.recv_id), IntVal(send.send_id))
        for op in trace.receive_operations()
        if op.endpoint == send.destination and op.recv_id != exclude_recv
    ]
    return Or(disjuncts) if disjuncts else FALSE


def partial_match_constraints(
    trace: ExecutionTrace,
    match_pairs: MatchPairs,
    index: Optional[_GuardIndex] = None,
) -> List[Term]:
    """The partial-match generalisation of Figure 2's per-receive disjunction.

    For each receive ``r``::

        (u_r ∧ match_r = sentinel(r))
        ∨ (¬u_r ∧ ⋁_{s ∈ getSends(r)} match(r, s) ∧ executed(s) ∧ executed(issue_r))

    With every ``u_r`` false this collapses to the base ``PMatchPairs``
    (the executed guards become vacuous), so the partial problem's complete
    executions are exactly the base problem's models.  Unlike the base
    encoding, a receive with no candidate sends is *satisfiable* here — as
    permanently unmatched, which is precisely the lost-message scenario.
    """
    index = index if index is not None else _GuardIndex(trace)
    constraints: List[Term] = []
    for recv_id in match_pairs.receive_ids():
        recv = match_pairs.receive(recv_id)
        issue_executed = index.guard(recv.issue_event_id)
        disjuncts: List[Term] = []
        for send_id in match_pairs.get_sends(recv_id):
            send = match_pairs.send(send_id)
            disjuncts.append(
                And(
                    Not(unmatched_var(recv_id)),
                    match_predicate(recv, send),
                    index.guard(send),
                    issue_executed,
                )
            )
        unmatched_case = And(
            unmatched_var(recv_id),
            Eq(match_var(recv_id), IntVal(unmatched_sentinel(recv_id))),
        )
        constraints.append(Or([unmatched_case] + disjuncts))
    return constraints


def blocking_constraints(
    trace: ExecutionTrace,
    match_pairs: MatchPairs,
    index: Optional[_GuardIndex] = None,
) -> List[Term]:
    """A reached receive may be unmatched only if it is genuinely blocked.

    For each receive ``r``::

        (u_r ∧ executed(issue_r)) → ⋀_{s ∈ getSends(r)} (¬executed(s) ∨ consumed_by_other(s, r))

    i.e. every candidate send that was actually executed must have been
    consumed by a *different* receive — otherwise a message is sitting at
    (or in flight towards) ``r``'s endpoint and the runtime would complete
    ``r``.  Receives whose issue was never reached (their thread blocked
    earlier) are exempt: they were never posted, so they consume nothing
    and block nothing.
    """
    index = index if index is not None else _GuardIndex(trace)
    by_endpoint: Dict[object, List[ReceiveOperation]] = {}
    for op in index.operations:
        by_endpoint.setdefault(op.endpoint, []).append(op)
    constraints: List[Term] = []
    for recv_id in match_pairs.receive_ids():
        recv = match_pairs.receive(recv_id)
        reached_unmatched = And(
            unmatched_var(recv_id), index.guard(recv.issue_event_id)
        )
        blocked: List[Term] = []
        for send_id in match_pairs.get_sends(recv_id):
            send = match_pairs.send(send_id)
            consumers = [
                Eq(match_var(op.recv_id), IntVal(send.send_id))
                for op in by_endpoint.get(send.destination, [])
                if op.recv_id != recv_id
            ]
            blocked.append(
                Or(
                    [Not(index.guard(send))]
                    + consumers
                )
            )
        if blocked:
            constraints.append(Implies(reached_unmatched, And(blocked)))
    return constraints
