"""The top-level trace encoder: builds  P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧ PEvents.

This is the paper's primary contribution: given one execution trace, a set of
match pairs and a set of correctness properties, produce an SMT problem whose
models are exactly the property-violating executions that follow the trace's
branch outcomes — including executions in which messages from different
threads to a common endpoint are reordered by transmission delays.

With ``EncoderOptions(partial_matches=True)`` the ``PMatchPairs`` conjunct
is replaced by the partial-match extension (``PMatchPartial ∧ PBlocking``,
:mod:`repro.encoding.partial`), whose models additionally include the
blocked-prefix executions needed to express deadlocks and orphaned
messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.encoding.events import branch_constraints, event_constraints
from repro.encoding.matchenc import match_pair_constraints
from repro.encoding.order import (
    clock_bounds,
    pair_fifo_constraints,
    program_order_constraints,
)
from repro.encoding.partial import (
    _GuardIndex,
    blocking_constraints,
    partial_match_constraints,
)
from repro.encoding.properties import Property, TraceAssertionsProperty, negated_properties
from repro.encoding.unique import uniqueness_constraints, uniqueness_constraints_pruned
from repro.encoding.variables import clock_name, match_name, unmatched_name
from repro.matching.matchpairs import MatchPairs
from repro.matching.overapprox import endpoint_match_pairs
from repro.matching.precise import precise_match_pairs
from repro.smt.smtlib import to_smtlib
from repro.smt.terms import And, Term
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import EncodingError

__all__ = ["MatchPairStrategy", "EncoderOptions", "EncodedProblem", "TraceEncoder"]


class MatchPairStrategy(Enum):
    """How the candidate match pairs are generated."""

    #: All sends targeting the receive's endpoint (cheap, over-approximate,
    #: safe — the paper's proposed future-work strategy; the default).
    ENDPOINT = "endpoint"
    #: Depth-first abstract execution (exact but potentially exponential).
    PRECISE = "precise"


@dataclass
class EncoderOptions:
    """Configuration of the encoding.

    Attributes
    ----------
    match_strategy:
        Candidate match-pair generation strategy.
    prune_uniqueness:
        Use the pruned variant of ``PUnique`` (equivalent, smaller formula).
    include_clock_bounds:
        Add 0 < clk < 2·|trace| range constraints (smaller models, measured
        by the encoding benchmarks; never changes satisfiability).
    enforce_pair_fifo:
        Add MCAPI's per-pair FIFO guarantee (extension beyond the paper).
    include_assignment_definitions:
        Emit defining equations for assignment events that carry symbols.
    partial_matches:
        Use the partial-match extension (:mod:`repro.encoding.partial`):
        every receive gets an ``unmatched`` indicator, the models include
        partial (blocked-prefix) executions, and deadlock / orphan-message
        properties become expressible.  Off by default — the base encoding
        is the paper's, and is what safety verdicts use.
    """

    match_strategy: MatchPairStrategy = MatchPairStrategy.ENDPOINT
    prune_uniqueness: bool = True
    include_clock_bounds: bool = True
    enforce_pair_fifo: bool = False
    include_assignment_definitions: bool = True
    partial_matches: bool = False


@dataclass
class EncodedProblem:
    """The generated SMT problem, split into the paper's named conjuncts."""

    trace: ExecutionTrace
    match_pairs: MatchPairs
    order: List[Term] = field(default_factory=list)
    match: List[Term] = field(default_factory=list)
    unique: List[Term] = field(default_factory=list)
    events: List[Term] = field(default_factory=list)
    negated_property: Optional[Term] = None
    extras: List[Term] = field(default_factory=list)
    #: Blocking-semantics constraints (partial-match mode only).
    blocking: List[Term] = field(default_factory=list)
    #: True when the problem was built with the partial-match extension;
    #: the witness decoder needs this to interpret sentinel match values.
    partial_matches: bool = False

    # -- assembly ----------------------------------------------------------------

    def assertions(self, include_property: bool = True) -> List[Term]:
        """All assertions of the problem in a stable order."""
        out: List[Term] = []
        out.extend(self.order)
        out.extend(self.match)
        out.extend(self.unique)
        out.extend(self.events)
        out.extend(self.blocking)
        out.extend(self.extras)
        if include_property and self.negated_property is not None:
            out.append(self.negated_property)
        return out

    def formula(self, include_property: bool = True) -> Term:
        """The whole problem as a single conjunction."""
        return And(self.assertions(include_property=include_property))

    # -- reporting ---------------------------------------------------------------

    def size_summary(self) -> Dict[str, int]:
        return {
            "order_constraints": len(self.order),
            "match_constraints": len(self.match),
            "unique_constraints": len(self.unique),
            "event_constraints": len(self.events),
            "blocking_constraints": len(self.blocking),
            "extra_constraints": len(self.extras),
            "candidate_pairs": self.match_pairs.pair_count(),
            "events": len(self.trace),
            "receives": len(self.match_pairs),
            "sends": len(self.trace.sends()),
        }

    def variable_names(self) -> Dict[str, List[str]]:
        """The problem's variables grouped by role."""
        clocks = [clock_name(e.event_id) for e in self.trace.events]
        matches = [match_name(r) for r in self.match_pairs.receive_ids()]
        values = [
            self.match_pairs.receive(r).value_symbol
            for r in self.match_pairs.receive_ids()
        ]
        names = {"clocks": clocks, "matches": matches, "values": values}
        if self.partial_matches:
            names["unmatched"] = [
                unmatched_name(r) for r in self.match_pairs.receive_ids()
            ]
        return names

    def to_smtlib(self, include_property: bool = True) -> str:
        """Render the problem as an SMT-LIB v2 script (the paper used Yices)."""
        formula = (
            "P = POrder & PMatchPartial & PUnique & PBlocking & ~PProp & PEvents"
            if self.partial_matches
            else "P = POrder & PMatchPairs & PUnique & ~PProp & PEvents"
        )
        comments = [
            f"trace: {self.trace.name}",
            f"receives: {len(self.match_pairs)}  sends: {len(self.trace.sends())}",
            formula,
        ]
        return to_smtlib(self.assertions(include_property=include_property), comments=comments)


class TraceEncoder:
    """Builds :class:`EncodedProblem` objects from execution traces."""

    def __init__(self, options: Optional[EncoderOptions] = None) -> None:
        self.options = options or EncoderOptions()

    # ------------------------------------------------------------------ pieces

    def generate_match_pairs(self, trace: ExecutionTrace) -> MatchPairs:
        """Generate candidate match pairs according to the configured strategy."""
        if self.options.match_strategy is MatchPairStrategy.PRECISE:
            return precise_match_pairs(trace)
        return endpoint_match_pairs(trace)

    # ------------------------------------------------------------------ encoding

    def encode(
        self,
        trace: ExecutionTrace,
        properties: Optional[Sequence[Property]] = None,
        match_pairs: Optional[MatchPairs] = None,
    ) -> EncodedProblem:
        """Encode ``trace`` against ``properties``.

        When ``properties`` is omitted the assertions recorded in the trace
        are used (the program's own notion of correctness).  ``match_pairs``
        may be supplied explicitly — the paper's tool takes them as an input —
        otherwise they are generated with the configured strategy.
        """
        trace.validate()
        if match_pairs is None:
            match_pairs = self.generate_match_pairs(trace)
        else:
            match_pairs.validate(trace)
        if properties is None:
            properties = [TraceAssertionsProperty()]
        partial = self.options.partial_matches
        for prop in properties:
            if getattr(prop, "needs_partial_encoding", False) and not partial:
                raise EncodingError(
                    f"property {prop.name!r} needs the partial-match encoding; "
                    "set EncoderOptions(partial_matches=True)"
                )

        problem = EncodedProblem(
            trace=trace, match_pairs=match_pairs, partial_matches=partial
        )
        problem.order = program_order_constraints(trace)
        if self.options.include_clock_bounds:
            problem.order.extend(clock_bounds(trace))
        if partial:
            index = _GuardIndex(trace)
            problem.match = partial_match_constraints(trace, match_pairs, index=index)
            problem.blocking = blocking_constraints(trace, match_pairs, index=index)
        else:
            problem.match = match_pair_constraints(trace, match_pairs)
        if self.options.prune_uniqueness:
            problem.unique = uniqueness_constraints_pruned(match_pairs)
        else:
            problem.unique = uniqueness_constraints(match_pairs)
        if self.options.include_assignment_definitions:
            problem.events = event_constraints(trace)
        else:
            problem.events = branch_constraints(trace)
        if self.options.enforce_pair_fifo:
            problem.extras = pair_fifo_constraints(trace)
        problem.negated_property = negated_properties(trace, properties, partial=partial)
        return problem
