"""``PMatchPairs`` and the ``match`` predicate (paper Figures 2 and the §2 text).

For a receive ``r`` and a candidate send ``s`` the predicate ``match(r, s)``
asserts:

1. the send happens before the receive — for a blocking receive this is the
   receive event itself; for a non-blocking receive it is the associated
   ``wait`` (paper §2: "the match function asserts that the call to send
   occurs before the call to the wait operation that is associated with the
   receive");
2. the message received is the message sent — the receive's value symbol
   equals the send's (symbolic) payload expression;
3. the identifiers of the two operations are equal — the receive's unbound
   match variable equals the send's unique identifier.

``PMatchPairs`` (Figure 2) is then the conjunction over all receives of the
disjunction of ``match(r, s)`` over the candidate sends of ``r``.
"""

from __future__ import annotations

from typing import List

from repro.encoding.variables import clock_var, match_var, recv_value_var
from repro.matching.matchpairs import MatchPairs
from repro.smt.terms import And, Eq, FALSE, IntVal, Lt, Or, Term
from repro.trace.events import SendEvent
from repro.trace.trace import ExecutionTrace, ReceiveOperation
from repro.utils.errors import EncodingError

__all__ = ["match_predicate", "match_pair_constraints"]


def match_predicate(recv: ReceiveOperation, send: SendEvent) -> Term:
    """The paper's ``match(recv, send)`` predicate as an SMT term."""
    if send.destination != recv.endpoint:
        raise EncodingError(
            f"send {send.send_id} targets {send.destination}, but receive "
            f"{recv.recv_id} listens on {recv.endpoint}"
        )
    if send.payload_expr is None:
        raise EncodingError(f"send {send.send_id} has no symbolic payload expression")
    happens_before = Lt(
        clock_var(send.event_id), clock_var(recv.completion_event_id)
    )
    value_transferred = Eq(recv_value_var(recv), send.payload_expr)
    identifiers_equal = Eq(match_var(recv), IntVal(send.send_id))
    return And(happens_before, value_transferred, identifiers_equal)


def match_pair_constraints(
    trace: ExecutionTrace, match_pairs: MatchPairs
) -> List[Term]:
    """The Figure 2 algorithm: one disjunction of matches per receive.

    A receive with *no* candidate sends makes the problem unsatisfiable (it
    can never complete in the modelled semantics); the constant ``false`` is
    emitted for it so the outcome is explicit rather than silently dropped.
    """
    constraints: List[Term] = []
    for recv_id in match_pairs.receive_ids():
        recv = match_pairs.receive(recv_id)
        disjuncts: List[Term] = []
        for send_id in match_pairs.get_sends(recv_id):
            send = match_pairs.send(send_id)
            disjuncts.append(match_predicate(recv, send))
        constraints.append(Or(disjuncts) if disjuncts else FALSE)
    return constraints
