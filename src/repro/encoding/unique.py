"""``PUnique``: every receive matches a different send (paper Figure 3).

The Figure 3 algorithm conjoins ``isDiffSend(recv_i, recv_j)`` over all pairs
of distinct receives; with the identifier variables of the match encoding
this is simply a pairwise disequality over the match variables.

Two variants are provided:

* :func:`uniqueness_constraints` — the literal all-pairs loop of Figure 3;
* :func:`uniqueness_constraints_pruned` — only pairs whose candidate send
  sets intersect (pairs that cannot collide are skipped).  The pruned variant
  is logically equivalent given ``PMatchPairs`` and is used by default; the
  benchmark ``bench_encoding`` measures the difference in problem size.
"""

from __future__ import annotations

from typing import List

from repro.encoding.variables import match_var
from repro.matching.matchpairs import MatchPairs
from repro.smt.terms import Ne, Term

__all__ = ["uniqueness_constraints", "uniqueness_constraints_pruned"]


def uniqueness_constraints(match_pairs: MatchPairs) -> List[Term]:
    """All-pairs ``match_i != match_j`` constraints (Figure 3 verbatim)."""
    constraints: List[Term] = []
    recv_ids = match_pairs.receive_ids()
    for i, recv_i in enumerate(recv_ids):
        for recv_j in recv_ids[i + 1 :]:
            constraints.append(Ne(match_var(recv_i), match_var(recv_j)))
    return constraints


def uniqueness_constraints_pruned(match_pairs: MatchPairs) -> List[Term]:
    """Pairwise disequalities only where the candidate send sets overlap."""
    constraints: List[Term] = []
    recv_ids = match_pairs.receive_ids()
    candidate_sets = {rid: set(match_pairs.get_sends(rid)) for rid in recv_ids}
    for i, recv_i in enumerate(recv_ids):
        for recv_j in recv_ids[i + 1 :]:
            if candidate_sets[recv_i] & candidate_sets[recv_j]:
                constraints.append(Ne(match_var(recv_i), match_var(recv_j)))
    return constraints
