"""``POrder``: program-order constraints over event clocks.

Each trace event ``e`` is given an integer clock variable ``clk_e``; two
events of the same thread that are adjacent in program order must satisfy
``clk_before < clk_after``.  Any total order of the clocks that satisfies all
constraints of the final problem corresponds to one interleaving of the
program, which is how a single SMT model stands for a concrete schedule.

The module also provides the optional per-pair FIFO constraints (an
*extension* beyond the paper, off by default) that assert MCAPI's ordering
guarantee between a fixed source/destination endpoint pair.
"""

from __future__ import annotations

from typing import List

from repro.encoding.variables import clock_var, match_var
from repro.smt.terms import And, Eq, FALSE, Implies, IntVal, Lt, Or, Term
from repro.trace.trace import ExecutionTrace

__all__ = ["program_order_constraints", "pair_fifo_constraints", "clock_bounds"]


def program_order_constraints(trace: ExecutionTrace) -> List[Term]:
    """One ``clk_a < clk_b`` constraint per adjacent program-order pair."""
    constraints: List[Term] = []
    for before, after in trace.program_order_pairs():
        constraints.append(Lt(clock_var(before), clock_var(after)))
    return constraints


def clock_bounds(trace: ExecutionTrace) -> List[Term]:
    """Anchor every clock into ``[0, |trace|)``.

    Not required for correctness (only the relative order matters) but it
    keeps models small and readable and gives the difference-logic solver a
    bounded polytope, which the solver-scaling benchmarks measure.
    """
    bounds: List[Term] = []
    horizon = IntVal(len(trace.events) * 2)
    zero = IntVal(0)
    for event in trace.events:
        clock = clock_var(event)
        bounds.append(Lt(zero, clock))
        bounds.append(Lt(clock, horizon))
    return bounds


def pair_fifo_constraints(trace: ExecutionTrace) -> List[Term]:
    """Optional MCAPI per-pair FIFO ordering (extension, not in the paper).

    If two sends ``s1 -> s2`` go from the same source endpoint to the same
    destination endpoint in that program order, then a receive may match
    ``s2`` only if some *other* receive matched ``s1`` and completed
    earlier: the runtime queues same-pair messages in order, so the older
    message is always taken first.

    (This per-receive form subsumes the weaker "if ``r1`` matches ``s1``
    and ``r2`` matches ``s2`` then ``r1`` completes first" pairing rule —
    by ``PUnique`` the consumer of ``s1`` is unique — and unlike it stays
    faithful when ``s1`` can go *unconsumed*: with fewer receives than
    sends, or under the partial-match extension, matching the younger
    same-pair send while the older one is still queued must be ruled out.)
    """
    constraints: List[Term] = []
    sends = trace.sends()
    receives = trace.receive_operations()

    for s1 in sends:
        for s2 in sends:
            if s1.send_id == s2.send_id:
                continue
            same_pair = s1.source == s2.source and s1.destination == s2.destination
            if not same_pair:
                continue
            if s1.thread != s2.thread or s1.thread_index >= s2.thread_index:
                continue
            for r2 in receives:
                if r2.endpoint != s2.destination:
                    continue
                earlier_consumers = [
                    And(
                        Eq(match_var(r1), IntVal(s1.send_id)),
                        Lt(
                            clock_var(r1.completion_event_id),
                            clock_var(r2.completion_event_id),
                        ),
                    )
                    for r1 in receives
                    if r1.recv_id != r2.recv_id and r1.endpoint == s1.destination
                ]
                constraints.append(
                    Implies(
                        Eq(match_var(r2), IntVal(s2.send_id)),
                        Or(earlier_consumers) if earlier_consumers else FALSE,
                    )
                )
    return constraints
