"""``POrder``: program-order constraints over event clocks.

Each trace event ``e`` is given an integer clock variable ``clk_e``; two
events of the same thread that are adjacent in program order must satisfy
``clk_before < clk_after``.  Any total order of the clocks that satisfies all
constraints of the final problem corresponds to one interleaving of the
program, which is how a single SMT model stands for a concrete schedule.

The module also provides the optional per-pair FIFO constraints (an
*extension* beyond the paper, off by default) that assert MCAPI's ordering
guarantee between a fixed source/destination endpoint pair.
"""

from __future__ import annotations

from typing import List

from repro.encoding.variables import clock_var, match_var
from repro.smt.terms import And, Eq, Implies, IntVal, Lt, Term
from repro.trace.trace import ExecutionTrace

__all__ = ["program_order_constraints", "pair_fifo_constraints", "clock_bounds"]


def program_order_constraints(trace: ExecutionTrace) -> List[Term]:
    """One ``clk_a < clk_b`` constraint per adjacent program-order pair."""
    constraints: List[Term] = []
    for before, after in trace.program_order_pairs():
        constraints.append(Lt(clock_var(before), clock_var(after)))
    return constraints


def clock_bounds(trace: ExecutionTrace) -> List[Term]:
    """Anchor every clock into ``[0, |trace|)``.

    Not required for correctness (only the relative order matters) but it
    keeps models small and readable and gives the difference-logic solver a
    bounded polytope, which the solver-scaling benchmarks measure.
    """
    bounds: List[Term] = []
    horizon = IntVal(len(trace.events) * 2)
    zero = IntVal(0)
    for event in trace.events:
        clock = clock_var(event)
        bounds.append(Lt(zero, clock))
        bounds.append(Lt(clock, horizon))
    return bounds


def pair_fifo_constraints(trace: ExecutionTrace) -> List[Term]:
    """Optional MCAPI per-pair FIFO ordering (extension, not in the paper).

    If two sends ``s1 -> s2`` go from the same source endpoint to the same
    destination endpoint in that program order, and two receives ``r1``,
    ``r2`` match them respectively, then ``r1`` must complete before ``r2``.
    """
    constraints: List[Term] = []
    sends = trace.sends()
    receives = trace.receive_operations()
    order_index = {event.event_id: i for i, event in enumerate(trace.events)}

    for s1 in sends:
        for s2 in sends:
            if s1.send_id == s2.send_id:
                continue
            same_pair = s1.source == s2.source and s1.destination == s2.destination
            if not same_pair:
                continue
            if s1.thread != s2.thread or s1.thread_index >= s2.thread_index:
                continue
            for r1 in receives:
                for r2 in receives:
                    if r1.recv_id == r2.recv_id:
                        continue
                    if r1.endpoint != s1.destination or r2.endpoint != s2.destination:
                        continue
                    matched = And(
                        Eq(match_var(r1), IntVal(s1.send_id)),
                        Eq(match_var(r2), IntVal(s2.send_id)),
                    )
                    ordered = Lt(
                        clock_var(r1.completion_event_id),
                        clock_var(r2.completion_event_id),
                    )
                    constraints.append(Implies(matched, ordered))
    return constraints
