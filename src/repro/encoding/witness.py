"""Decoding SMT models into human-readable witnesses.

When the generated problem is satisfiable, the model is a description of one
property-violating execution: the clock values give an interleaving, the
match variables give the send each receive obtained its message from, and
the receive value symbols give the data values involved.  "A simple analysis
of the set of satisfying assignments provides a description of the path to
the error state" (paper §2) — this module is that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.encoding.encoder import EncodedProblem
from repro.encoding.partial import blocking_predecessors
from repro.encoding.variables import clock_name, match_name, unmatched_name
from repro.smt.models import Model
from repro.trace.events import SendEvent, TraceEvent
from repro.trace.trace import ReceiveOperation
from repro.utils.errors import EncodingError

__all__ = ["Witness", "decode_witness"]


@dataclass
class Witness:
    """A decoded counterexample execution.

    Attributes
    ----------
    matching:
        ``recv_id -> send_id``: which send every receive obtained its message
        from in the violating execution.  Unmatched receives (partial-match
        mode only) do not appear here.
    receive_values:
        ``recv_id -> int``: the value each receive obtained.
    event_order:
        All trace event ids sorted by their clock value — one interleaving
        that realises the violation.
    clocks:
        The raw clock assignment.
    unmatched_receives:
        Partial-match mode: the receives that never complete in the
        witnessed execution (stuck or downstream of a stuck operation).
    orphan_sends:
        Partial-match mode: the executed sends no receive ever consumes.
        (In base mode this is simply every send absent from ``matching``.)
    """

    matching: Dict[int, int] = field(default_factory=dict)
    receive_values: Dict[int, int] = field(default_factory=dict)
    event_order: List[int] = field(default_factory=list)
    clocks: Dict[int, int] = field(default_factory=dict)
    unmatched_receives: List[int] = field(default_factory=list)
    orphan_sends: List[int] = field(default_factory=list)

    def pairing_description(self, problem: EncodedProblem) -> Dict[str, str]:
        """A human-readable recv -> send description of the matching.

        Keys and values use the ``recv(<variable>)`` / ``send(<value>)@thread``
        naming of the paper's Figure 4 so that tests can compare directly.
        """
        description: Dict[str, str] = {}
        receives = {op.recv_id: op for op in problem.trace.receive_operations()}
        sends = {event.send_id: event for event in problem.trace.sends()}
        for recv_id, send_id in self.matching.items():
            recv = receives[recv_id]
            send = sends[send_id]
            recv_event = problem.trace[recv.issue_event_id]
            variable = getattr(recv_event, "target_variable", None) or f"r{recv_id}"
            description[f"recv({variable})"] = (
                f"send({send.payload_value})@{send.thread}"
            )
        return description

    def ordered_events(self, problem: EncodedProblem) -> List[TraceEvent]:
        """The trace's events re-ordered according to the witness clocks."""
        return [problem.trace[event_id] for event_id in self.event_order]

    def describe(self, problem: EncodedProblem) -> str:
        """Multi-line human-readable description of the counterexample."""
        lines = ["counterexample execution:"]
        receives = {op.recv_id: op for op in problem.trace.receive_operations()}
        for event in self.ordered_events(problem):
            line = f"  clk={self.clocks.get(event.event_id, '?'):>3}  {event.describe()}"
            lines.append(line)
        lines.append("matching:")
        for recv_id in sorted(self.matching):
            recv = receives[recv_id]
            lines.append(
                f"  recv#{recv_id} (thread {recv.thread}) <- send#{self.matching[recv_id]}"
                f"  value={self.receive_values.get(recv_id)}"
            )
        if problem.partial_matches:
            lines.append(self.deadlock_description(problem))
        elif self.orphan_sends:
            # Base-mode slack, not a deadlock: just state the plain fact.
            pairs = ", ".join(f"send#{send_id}" for send_id in sorted(self.orphan_sends))
            lines.append(f"sends never received in this execution: {pairs}")
        return "\n".join(lines)

    def deadlock_description(self, problem: EncodedProblem) -> str:
        """Name the stuck endpoints and unmatched sends of a partial witness."""
        trace = problem.trace
        receives = {op.recv_id: op for op in trace.receive_operations()}
        sends = {event.send_id: event for event in trace.sends()}
        lines = ["stuck endpoints:"]
        if not self.unmatched_receives:
            lines.append("  (none — every receive completes)")
        for recv_id in sorted(self.unmatched_receives):
            recv = receives[recv_id]
            lines.append(
                f"  recv#{recv_id} on {recv.endpoint} (thread {recv.thread}) "
                "never completes"
            )
        lines.append("unmatched sends:")
        if not self.orphan_sends:
            lines.append("  (none — every executed send is consumed)")
        for send_id in sorted(self.orphan_sends):
            send = sends[send_id]
            lines.append(
                f"  send#{send_id} (thread {send.thread}, "
                f"value {send.payload_value}) -> {send.destination} "
                "is never received"
            )
        return "\n".join(lines)


def decode_witness(problem: EncodedProblem, model: Model) -> Witness:
    """Extract matching, values and interleaving from a satisfying model.

    For partial-match problems the unmatched indicators are read alongside
    the match variables: an unmatched receive contributes to
    ``unmatched_receives`` instead of ``matching``, and the executed sends
    nobody consumed are collected into ``orphan_sends``.
    """
    witness = Witness()

    for event in problem.trace.events:
        value = model.value_of(clock_name(event.event_id))
        if value is None:
            # Events not mentioned in any constraint default to clock 0.
            value = 0
        witness.clocks[event.event_id] = int(value)

    for recv_id in problem.match_pairs.receive_ids():
        recv: ReceiveOperation = problem.match_pairs.receive(recv_id)
        if problem.partial_matches and bool(model.value_of(unmatched_name(recv_id))):
            witness.unmatched_receives.append(recv_id)
            continue
        match_value = model.value_of(match_name(recv_id))
        if match_value is None:
            raise EncodingError(
                f"model does not assign a match for receive {recv_id}"
            )
        send_ids = set(problem.match_pairs.get_sends(recv_id))
        if int(match_value) not in send_ids:
            raise EncodingError(
                f"model assigns receive {recv_id} to send {match_value}, which is "
                f"not a candidate ({sorted(send_ids)})"
            )
        witness.matching[recv_id] = int(match_value)
        value = model.value_of(recv.value_symbol)
        witness.receive_values[recv_id] = int(value) if value is not None else 0

    # Orphaned messages: executed sends no receive consumed.  In base mode
    # every send is executed; in partial mode a send is executed iff no
    # blocking predecessor in its thread is unmatched.
    unmatched = set(witness.unmatched_receives)
    consumed = set(witness.matching.values())
    for send in problem.trace.sends():
        executed = not problem.partial_matches or all(
            op.recv_id not in unmatched
            for op in blocking_predecessors(problem.trace, send)
        )
        if executed and send.send_id not in consumed:
            witness.orphan_sends.append(send.send_id)

    # Stable interleaving: sort by clock, break ties by original event id so
    # the order is deterministic.  In partial-match mode the interleaving
    # contains only the *executed* prefix — events downstream of a blocked
    # operation (and the completion points of unmatched receives themselves)
    # never happen in the witnessed execution and must not be displayed or
    # replayed as if they did.
    unmatched_completions = {
        op.completion_event_id
        for op in problem.trace.receive_operations()
        if op.recv_id in unmatched
    }

    def _executed(event) -> bool:
        if not problem.partial_matches:
            return True
        if event.event_id in unmatched_completions:
            return False
        return all(
            op.recv_id not in unmatched
            for op in blocking_predecessors(problem.trace, event)
        )

    witness.event_order = sorted(
        (e.event_id for e in problem.trace.events if _executed(e)),
        key=lambda eid: (witness.clocks[eid], eid),
    )
    return witness
