"""``PEvents``: the remaining events of the execution.

The trace is recorded *concolically*: assignments and send payloads are
already expressed over the receive value symbols, so the only constraints the
event section has to contribute are the **branch outcomes** — the generated
problem must model exactly those executions that "follow the same sequence of
conditional branch outcomes as the provided execution trace" (paper §1/§2).

Assignment events are also translatable (as defining equations over fresh
symbols) when the caller asks for them; this is useful when exporting the
problem to SMT-LIB for inspection, but redundant for solving because the
interpreter substituted assignments eagerly.
"""

from __future__ import annotations

from typing import List

from repro.smt.terms import Eq, IntVar, Not, Term
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import EncodingError

__all__ = ["branch_constraints", "assignment_constraints", "event_constraints"]


def branch_constraints(trace: ExecutionTrace) -> List[Term]:
    """Assert each branch condition with the polarity observed in the trace."""
    constraints: List[Term] = []
    for event in trace.branches():
        if event.condition is None:
            raise EncodingError(f"branch event {event.event_id} has no condition")
        constraints.append(event.condition if event.outcome else Not(event.condition))
    return constraints


def assignment_constraints(trace: ExecutionTrace) -> List[Term]:
    """Optional defining equations ``assign_symbol = expression``.

    Only produced for assignment events that carry a value symbol; the
    default interpreter does not allocate them (it substitutes eagerly), so
    for normal traces this returns an empty list.
    """
    constraints: List[Term] = []
    for event in trace.assignments():
        if event.value_symbol is None or event.expression is None:
            continue
        constraints.append(Eq(IntVar(event.value_symbol), event.expression))
    return constraints


def event_constraints(trace: ExecutionTrace) -> List[Term]:
    """All event constraints: branch outcomes plus any assignment definitions."""
    return branch_constraints(trace) + assignment_constraints(trace)
