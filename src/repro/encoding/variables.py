"""Naming conventions for the SMT variables of the trace encoding.

Every trace event gets an integer *clock* variable; every receive operation
gets an integer *match identifier* variable and (from the trace itself) a
*value symbol*.  The partial-match extension additionally gives every
receive a Boolean *unmatched* indicator.  Keeping the naming in one place
lets the witness decoder, the properties DSL and the tests all agree on how
to find things in a model.
"""

from __future__ import annotations

from repro.smt.terms import BoolVar, IntVar, Term
from repro.trace.events import TraceEvent
from repro.trace.trace import ReceiveOperation

__all__ = [
    "clock_name",
    "clock_var",
    "match_name",
    "match_var",
    "recv_value_name",
    "recv_value_var",
    "unmatched_name",
    "unmatched_var",
    "unmatched_sentinel",
]


def clock_name(event_id: int) -> str:
    """Name of the clock variable of trace event ``event_id``."""
    return f"clk_{event_id}"


def clock_var(event: TraceEvent | int) -> Term:
    """The clock variable of an event (or raw event id)."""
    event_id = event if isinstance(event, int) else event.event_id
    return IntVar(clock_name(event_id))


def match_name(recv_id: int) -> str:
    """Name of the match-identifier variable of receive ``recv_id``."""
    return f"match_{recv_id}"


def match_var(recv: ReceiveOperation | int) -> Term:
    """The match-identifier variable of a receive operation (or raw id)."""
    recv_id = recv if isinstance(recv, int) else recv.recv_id
    return IntVar(match_name(recv_id))


def recv_value_name(recv_id: int) -> str:
    """Name of the value symbol of receive ``recv_id`` (matches TraceBuilder)."""
    return f"recv_val_{recv_id}"


def recv_value_var(recv: ReceiveOperation | int) -> Term:
    """The value symbol of a receive operation (or raw id)."""
    if isinstance(recv, int):
        return IntVar(recv_value_name(recv))
    return IntVar(recv.value_symbol)


def unmatched_name(recv_id: int) -> str:
    """Name of the Boolean unmatched indicator of receive ``recv_id``.

    Only allocated by the partial-match encoding
    (``EncoderOptions.partial_matches=True``); the base encoding has no such
    variable because it assumes every receive completes.
    """
    return f"unmatched_{recv_id}"


def unmatched_var(recv: ReceiveOperation | int) -> Term:
    """The unmatched indicator of a receive operation (or raw id)."""
    recv_id = recv if isinstance(recv, int) else recv.recv_id
    return BoolVar(unmatched_name(recv_id))


def unmatched_sentinel(recv_id: int) -> int:
    """The match-variable value an unmatched receive is pinned to.

    Sentinels are negative (send ids are non-negative) and distinct per
    receive, so the ``PUnique`` pairwise disequalities remain valid verbatim
    when several receives are unmatched in the same partial execution.
    """
    return -1 - recv_id
