"""The SMT encoding of MCAPI execution traces (the paper's contribution)."""

from repro.encoding.encoder import (
    EncodedProblem,
    EncoderOptions,
    MatchPairStrategy,
    TraceEncoder,
)
from repro.encoding.matchenc import match_pair_constraints, match_predicate
from repro.encoding.order import (
    clock_bounds,
    pair_fifo_constraints,
    program_order_constraints,
)
from repro.encoding.events import assignment_constraints, branch_constraints, event_constraints
from repro.encoding.partial import (
    blocking_constraints,
    consumed_term,
    executed_guard,
    partial_match_constraints,
)
from repro.encoding.properties import (
    DeadlockProperty,
    MatchProperty,
    OrphanMessageProperty,
    Property,
    ReceiveValueProperty,
    TermProperty,
    TraceAssertionsProperty,
    negated_properties,
)
from repro.encoding.unique import uniqueness_constraints, uniqueness_constraints_pruned
from repro.encoding.variables import (
    clock_name,
    clock_var,
    match_name,
    match_var,
    recv_value_name,
    recv_value_var,
    unmatched_name,
    unmatched_var,
)
from repro.encoding.witness import Witness, decode_witness

__all__ = [
    "EncodedProblem",
    "EncoderOptions",
    "MatchPairStrategy",
    "TraceEncoder",
    "match_pair_constraints",
    "match_predicate",
    "clock_bounds",
    "pair_fifo_constraints",
    "program_order_constraints",
    "assignment_constraints",
    "branch_constraints",
    "event_constraints",
    "DeadlockProperty",
    "MatchProperty",
    "OrphanMessageProperty",
    "Property",
    "ReceiveValueProperty",
    "TermProperty",
    "TraceAssertionsProperty",
    "negated_properties",
    "blocking_constraints",
    "consumed_term",
    "executed_guard",
    "partial_match_constraints",
    "uniqueness_constraints",
    "uniqueness_constraints_pruned",
    "clock_name",
    "clock_var",
    "match_name",
    "match_var",
    "recv_value_name",
    "recv_value_var",
    "unmatched_name",
    "unmatched_var",
    "Witness",
    "decode_witness",
]
