"""Correctness properties and ``PProp``.

A property is a predicate that must hold in *every* execution modelled by the
problem.  Following the paper, the encoder conjoins the negation of all
properties (``¬PProp``) so that a satisfiable problem is a witness of a
property violation.

Five kinds of properties cover the paper's usage and the benchmarks:

* :class:`TraceAssertionsProperty` — the assertions the program itself
  executed (the default definition of "a correct system");
* :class:`ReceiveValueProperty` — a predicate over the value obtained by a
  specific receive operation (e.g. *recv(A) obtained Y*), which is how the
  Figure 4 behaviours are phrased as properties;
* :class:`DeadlockProperty` / :class:`OrphanMessageProperty` — liveness-ish
  properties over the partial-match extension: "every receive completes"
  and "every executed send is consumed";
* :class:`TermProperty` — an arbitrary SMT term over the encoding's
  variables, for advanced users.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.encoding.partial import consumed_term, executed_guard
from repro.encoding.variables import match_var, recv_value_var, unmatched_var
from repro.smt.terms import And, Eq, Implies, IntVal, Not, Or, Term, TRUE
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import EncodingError

__all__ = [
    "Property",
    "TraceAssertionsProperty",
    "ReceiveValueProperty",
    "MatchProperty",
    "DeadlockProperty",
    "OrphanMessageProperty",
    "TermProperty",
    "negated_properties",
]


class Property(ABC):
    """A safety property over the symbolic executions of a trace."""

    name: str = "property"

    #: Properties over the unmatched indicators are only meaningful when the
    #: encoder was configured with ``partial_matches=True``; the encoder
    #: rejects the combination eagerly instead of producing a vacuous answer.
    needs_partial_encoding: bool = False

    #: Trace-global properties — fully determined by the trace's semantic
    #: core, referencing no trace-local identifiers — set this to a fixed
    #: tag so :mod:`repro.verification.cache` can share entries between
    #: fingerprint-equal traces.  ``None`` (default) means the property is
    #: rendered against the concrete trace and entries only ever hit on the
    #: identical numbering.
    cache_signature = None

    @abstractmethod
    def term(self, trace: ExecutionTrace) -> Term:
        """The property as an SMT term (must hold in every execution)."""

    def partial_term(self, trace: ExecutionTrace) -> Term:
        """The property under the partial-match encoding.

        Defaults to :meth:`term`; properties whose meaning changes when
        executions may be partial (e.g. orphan detection, which must not
        flag never-executed sends) override this.
        """
        return self.term(trace)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class TraceAssertionsProperty(Property):
    """The conjunction of every assertion statement recorded in the trace."""

    name: str = "trace-assertions"

    def term(self, trace: ExecutionTrace) -> Term:
        conditions: List[Term] = []
        for event in trace.assertions():
            if event.condition is None:
                raise EncodingError(f"assertion event {event.event_id} has no condition")
            conditions.append(event.condition)
        return And(conditions) if conditions else TRUE

    def partial_term(self, trace: ExecutionTrace) -> Term:
        """Under partial executions only *executed* assertions are claimed.

        An assertion downstream of a blocked receive never runs, and its
        condition ranges over value symbols the model leaves unconstrained
        — asserting it unguarded would manufacture spurious violations.
        """
        conditions: List[Term] = []
        for event in trace.assertions():
            if event.condition is None:
                raise EncodingError(f"assertion event {event.event_id} has no condition")
            conditions.append(Implies(executed_guard(trace, event), event.condition))
        return And(conditions) if conditions else TRUE


@dataclass
class ReceiveValueProperty(Property):
    """``predicate`` must hold of the value obtained by receive ``recv_id``.

    The predicate is supplied as a function from the receive's value variable
    (an SMT term) to a Boolean term, e.g.::

        ReceiveValueProperty(0, lambda v: Eq(v, IntVal(20)), name="A-got-Y")
    """

    recv_id: int
    predicate: Callable[[Term], Term]
    name: str = "receive-value"

    def term(self, trace: ExecutionTrace) -> Term:
        operations = {op.recv_id: op for op in trace.receive_operations()}
        if self.recv_id not in operations:
            raise EncodingError(f"trace has no receive with id {self.recv_id}")
        return self.predicate(recv_value_var(operations[self.recv_id]))

    def partial_term(self, trace: ExecutionTrace) -> Term:
        # Only claimed when the receive actually completes: an unmatched
        # receive's value symbol is unconstrained noise.
        return Implies(Not(unmatched_var(self.recv_id)), self.term(trace))


@dataclass
class MatchProperty(Property):
    """Receive ``recv_id`` always matches one of ``allowed_send_ids``."""

    recv_id: int
    allowed_send_ids: Sequence[int]
    name: str = "match-restriction"

    def term(self, trace: ExecutionTrace) -> Term:
        operations = {op.recv_id: op for op in trace.receive_operations()}
        if self.recv_id not in operations:
            raise EncodingError(f"trace has no receive with id {self.recv_id}")
        variable = match_var(operations[self.recv_id])
        options = [Eq(variable, IntVal(send_id)) for send_id in self.allowed_send_ids]
        if not options:
            raise EncodingError("MatchProperty needs at least one allowed send")
        return Or(options)

    def partial_term(self, trace: ExecutionTrace) -> Term:
        # The restriction applies only when the receive matches at all.
        return Implies(Not(unmatched_var(self.recv_id)), self.term(trace))


@dataclass
class DeadlockProperty(Property):
    """Deadlock freedom: every receive operation of the trace completes.

    The property is the conjunction ``⋀_r ¬u_r`` over the partial-match
    encoding's unmatched indicators, so its negation — what the encoder
    asserts — is *some receive never completes*.  Together with the
    blocking-semantics constraints of :mod:`repro.encoding.partial` a
    satisfying model is a genuine partial execution in which at least one
    thread is stuck forever: a deadlock (fan-in starvation, circular wait,
    or a receive whose message is never sent).

    Requires ``EncoderOptions(partial_matches=True)``; the encoder raises
    :class:`~repro.utils.errors.EncodingError` otherwise, because under the
    base encoding every receive is matched by construction and the property
    would be vacuously true.
    """

    name: str = "deadlock-free"
    needs_partial_encoding: bool = True
    cache_signature = "deadlock-free"

    def term(self, trace: ExecutionTrace) -> Term:
        indicators = [
            Not(unmatched_var(op.recv_id)) for op in trace.receive_operations()
        ]
        return And(indicators) if indicators else TRUE


@dataclass
class OrphanMessageProperty(Property):
    """No orphaned messages: every (executed) send is consumed by a receive.

    Under the base encoding — where every execution is complete — the
    property is ``⋀_s consumed(s)``: some receive's match variable names
    each send.  A send towards an endpoint nobody ever receives on yields
    the constant ``false``: it is orphaned in every execution.

    Under the partial-match encoding the property weakens per send to
    ``executed(s) → consumed(s)``: a send that was never reached (its
    thread blocked earlier) is not a lost message, merely an unexecuted
    one.
    """

    name: str = "no-orphan-messages"
    cache_signature = "no-orphan-messages"

    def term(self, trace: ExecutionTrace) -> Term:
        clauses = [consumed_term(trace, send) for send in trace.sends()]
        return And(clauses) if clauses else TRUE

    def partial_term(self, trace: ExecutionTrace) -> Term:
        clauses = [
            Implies(executed_guard(trace, send), consumed_term(trace, send))
            for send in trace.sends()
        ]
        return And(clauses) if clauses else TRUE


@dataclass
class TermProperty(Property):
    """An arbitrary property term over the encoding's variables."""

    formula: Term
    name: str = "term-property"

    def term(self, trace: ExecutionTrace) -> Term:
        return self.formula


def negated_properties(
    trace: ExecutionTrace, properties: Sequence[Property], partial: bool = False
) -> Optional[Term]:
    """``¬PProp``: the negated conjunction of all properties.

    With ``partial=True`` each property contributes its
    :meth:`Property.partial_term` rendering (the partial-match encoding is
    in effect).  Returns ``None`` when there are no properties *with
    content* (an empty property set would make the problem trivially
    unsatisfiable, which is not what a caller asking "is this trace
    feasible at all?" wants).
    """
    terms = [
        prop.partial_term(trace) if partial else prop.term(trace)
        for prop in properties
    ]
    terms = [t for t in terms if not t.is_true]
    if not terms:
        return None
    return Not(And(terms))
