"""Correctness properties and ``PProp``.

A property is a predicate that must hold in *every* execution modelled by the
problem.  Following the paper, the encoder conjoins the negation of all
properties (``¬PProp``) so that a satisfiable problem is a witness of a
property violation.

Three kinds of properties cover the paper's usage and the benchmarks:

* :class:`TraceAssertionsProperty` — the assertions the program itself
  executed (the default definition of "a correct system");
* :class:`ReceiveValueProperty` — a predicate over the value obtained by a
  specific receive operation (e.g. *recv(A) obtained Y*), which is how the
  Figure 4 behaviours are phrased as properties;
* :class:`TermProperty` — an arbitrary SMT term over the encoding's
  variables, for advanced users.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.encoding.variables import match_var, recv_value_var
from repro.smt.terms import And, Eq, IntVal, Not, Or, Term, TRUE
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import EncodingError

__all__ = [
    "Property",
    "TraceAssertionsProperty",
    "ReceiveValueProperty",
    "MatchProperty",
    "TermProperty",
    "negated_properties",
]


class Property(ABC):
    """A safety property over the symbolic executions of a trace."""

    name: str = "property"

    @abstractmethod
    def term(self, trace: ExecutionTrace) -> Term:
        """The property as an SMT term (must hold in every execution)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class TraceAssertionsProperty(Property):
    """The conjunction of every assertion statement recorded in the trace."""

    name: str = "trace-assertions"

    def term(self, trace: ExecutionTrace) -> Term:
        conditions: List[Term] = []
        for event in trace.assertions():
            if event.condition is None:
                raise EncodingError(f"assertion event {event.event_id} has no condition")
            conditions.append(event.condition)
        return And(conditions) if conditions else TRUE


@dataclass
class ReceiveValueProperty(Property):
    """``predicate`` must hold of the value obtained by receive ``recv_id``.

    The predicate is supplied as a function from the receive's value variable
    (an SMT term) to a Boolean term, e.g.::

        ReceiveValueProperty(0, lambda v: Eq(v, IntVal(20)), name="A-got-Y")
    """

    recv_id: int
    predicate: Callable[[Term], Term]
    name: str = "receive-value"

    def term(self, trace: ExecutionTrace) -> Term:
        operations = {op.recv_id: op for op in trace.receive_operations()}
        if self.recv_id not in operations:
            raise EncodingError(f"trace has no receive with id {self.recv_id}")
        return self.predicate(recv_value_var(operations[self.recv_id]))


@dataclass
class MatchProperty(Property):
    """Receive ``recv_id`` always matches one of ``allowed_send_ids``."""

    recv_id: int
    allowed_send_ids: Sequence[int]
    name: str = "match-restriction"

    def term(self, trace: ExecutionTrace) -> Term:
        operations = {op.recv_id: op for op in trace.receive_operations()}
        if self.recv_id not in operations:
            raise EncodingError(f"trace has no receive with id {self.recv_id}")
        variable = match_var(operations[self.recv_id])
        options = [Eq(variable, IntVal(send_id)) for send_id in self.allowed_send_ids]
        if not options:
            raise EncodingError("MatchProperty needs at least one allowed send")
        return Or(options)


@dataclass
class TermProperty(Property):
    """An arbitrary property term over the encoding's variables."""

    formula: Term
    name: str = "term-property"

    def term(self, trace: ExecutionTrace) -> Term:
        return self.formula


def negated_properties(
    trace: ExecutionTrace, properties: Sequence[Property]
) -> Optional[Term]:
    """``¬PProp``: the negated conjunction of all properties.

    Returns ``None`` when there are no properties *with content* (an empty
    property set would make the problem trivially unsatisfiable, which is not
    what a caller asking "is this trace feasible at all?" wants).
    """
    terms = [prop.term(trace) for prop in properties]
    terms = [t for t in terms if not t.is_true]
    if not terms:
        return None
    return Not(And(terms))
