"""The MCAPI runtime simulator (connectionless-message subset).

This class provides the API surface the paper's subject programs use:

==============================  =============================================
MCAPI C call                    Simulator method
==============================  =============================================
``mcapi_initialize``            :meth:`McapiRuntime.initialize`
``mcapi_finalize``              :meth:`McapiRuntime.finalize`
``mcapi_endpoint_create``       :meth:`McapiRuntime.endpoint_create`
``mcapi_endpoint_get``          :meth:`McapiRuntime.endpoint_get`
``mcapi_endpoint_delete``       :meth:`McapiRuntime.endpoint_delete`
``mcapi_msg_send``              :meth:`McapiRuntime.msg_send`
``mcapi_msg_send_i``            :meth:`McapiRuntime.msg_send_i`
``mcapi_msg_recv``              :meth:`McapiRuntime.msg_recv_try` (the
                                blocking behaviour is provided by the
                                scheduler, which re-tries until a message is
                                available)
``mcapi_msg_recv_i``            :meth:`McapiRuntime.msg_recv_i`
``mcapi_msg_available``         :meth:`McapiRuntime.msg_available`
``mcapi_test``                  :meth:`McapiRuntime.test`
``mcapi_wait``                  :meth:`McapiRuntime.wait_ready` (again, the
                                scheduler blocks the thread until ready)
``mcapi_cancel``                :meth:`McapiRuntime.cancel`
==============================  =============================================

The runtime itself is *passive*: it never blocks and never chooses an
interleaving.  All non-determinism (which thread runs, which in-flight
message is delivered) is decided by :class:`repro.mcapi.scheduler.Scheduler`,
which is what makes schedules reproducible and traceable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mcapi.endpoint import Endpoint, EndpointId, Node
from repro.mcapi.messages import InTransitMessage, Message
from repro.mcapi.network import DeliveryPolicy, Network, UnorderedDelivery
from repro.mcapi.requests import Request, RequestKind, RequestState
from repro.mcapi.status import (
    MCAPI_MAX_MSG_SIZE,
    MCAPI_MAX_PRIORITY,
    MCAPI_PORT_ANY,
    McapiStatus,
)
from repro.utils.errors import McapiError

__all__ = ["McapiRuntime"]


class McapiRuntime:
    """State of one simulated MCAPI domain."""

    def __init__(self, policy: Optional[DeliveryPolicy] = None) -> None:
        self.network = Network(policy=policy or UnorderedDelivery())
        self.nodes: Dict[int, Node] = {}
        self.endpoints: Dict[EndpointId, Endpoint] = {}
        self.requests: Dict[int, Request] = {}
        self.current_step = 0
        self._next_any_port: Dict[int, int] = {}

    # ------------------------------------------------------------------ lifecycle

    def initialize(self, node_id: int) -> Node:
        """Create (initialise) a node; mirrors ``mcapi_initialize``."""
        if node_id in self.nodes and self.nodes[node_id].initialized:
            raise McapiError(f"node {node_id} initialised twice")
        node = Node(node_id=node_id)
        self.nodes[node_id] = node
        return node

    def finalize(self, node_id: int) -> McapiStatus:
        """Tear down a node; mirrors ``mcapi_finalize``."""
        node = self.nodes.get(node_id)
        if node is None or not node.initialized:
            return McapiStatus.ERR_NODE_NOTINIT
        node.initialized = False
        for endpoint in node.endpoints:
            endpoint.open = False
        return McapiStatus.SUCCESS

    def is_initialized(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.initialized

    # ------------------------------------------------------------------ endpoints

    def endpoint_create(
        self, node_id: int, port: int = MCAPI_PORT_ANY, max_queue_length: int = 64
    ) -> EndpointId:
        """Create an endpoint owned by ``node_id``; mirrors ``mcapi_endpoint_create``."""
        node = self.nodes.get(node_id)
        if node is None or not node.initialized:
            raise McapiError(f"node {node_id} is not initialised")
        if port == MCAPI_PORT_ANY:
            port = self._next_any_port.get(node_id, 0)
            while node.find_endpoint(port) is not None:
                port += 1
            self._next_any_port[node_id] = port + 1
        if node.find_endpoint(port) is not None:
            raise McapiError(f"endpoint ({node_id}, {port}) already exists")
        endpoint_id = EndpointId(node_id, port)
        endpoint = Endpoint(endpoint_id=endpoint_id, max_queue_length=max_queue_length)
        node.endpoints.append(endpoint)
        self.endpoints[endpoint_id] = endpoint
        return endpoint_id

    def endpoint_get(self, node_id: int, port: int) -> EndpointId:
        """Look up a remote endpoint; mirrors ``mcapi_endpoint_get``.

        The C call blocks until the endpoint exists; in the simulator the
        subject programs create all endpoints during setup, so a missing
        endpoint is an error.
        """
        endpoint_id = EndpointId(node_id, port)
        if endpoint_id not in self.endpoints or not self.endpoints[endpoint_id].open:
            raise McapiError(f"endpoint ({node_id}, {port}) does not exist")
        return endpoint_id

    def endpoint_delete(self, endpoint_id: EndpointId) -> McapiStatus:
        endpoint = self.endpoints.get(endpoint_id)
        if endpoint is None or not endpoint.open:
            return McapiStatus.ERR_ENDP_INVALID
        endpoint.open = False
        return McapiStatus.SUCCESS

    def _endpoint(self, endpoint_id: EndpointId) -> Endpoint:
        endpoint = self.endpoints.get(endpoint_id)
        if endpoint is None or not endpoint.open:
            raise McapiError(f"invalid endpoint {endpoint_id}")
        return endpoint

    # ------------------------------------------------------------------ sending

    def msg_send(
        self,
        source: EndpointId,
        destination: EndpointId,
        payload: object,
        priority: int = 0,
        sender_thread: Optional[str] = None,
    ) -> Message:
        """Buffered blocking send; mirrors ``mcapi_msg_send``.

        The reference implementation's blocking send returns once the message
        is accepted by the transport, which in this simulator is immediate;
        the actual *delivery* is a later scheduler action.
        """
        self._validate_send(source, destination, payload, priority)
        return self.network.submit(
            source=source,
            destination=destination,
            payload=payload,
            priority=priority,
            sender_thread=sender_thread,
            current_step=self.current_step,
        )

    def msg_send_i(
        self,
        source: EndpointId,
        destination: EndpointId,
        payload: object,
        priority: int = 0,
        sender_thread: Optional[str] = None,
    ) -> Tuple[Request, Message]:
        """Non-blocking send; mirrors ``mcapi_msg_send_i``.

        The returned request completes immediately (the message fits in the
        simulated buffers), matching the semantics the paper assumes for
        sends — only *receives* have interesting completion behaviour.
        """
        message = self.msg_send(source, destination, payload, priority, sender_thread)
        request = Request(kind=RequestKind.SEND, endpoint=source, issuing_thread=sender_thread)
        request.complete_with(message)
        self.requests[request.request_id] = request
        return request, message

    def _validate_send(
        self,
        source: EndpointId,
        destination: EndpointId,
        payload: object,
        priority: int,
    ) -> None:
        self._endpoint(source)
        self._endpoint(destination)
        if not (0 <= priority <= MCAPI_MAX_PRIORITY):
            raise McapiError(f"priority {priority} out of range 0..{MCAPI_MAX_PRIORITY}")
        if isinstance(payload, (bytes, bytearray, str)) and len(payload) > MCAPI_MAX_MSG_SIZE:
            raise McapiError("message payload exceeds MCAPI_MAX_MSG_SIZE")

    # ------------------------------------------------------------------ receiving

    def msg_available(self, endpoint_id: EndpointId) -> int:
        """Number of delivered messages waiting; mirrors ``mcapi_msg_available``."""
        return self._endpoint(endpoint_id).available()

    def msg_recv_try(
        self, endpoint_id: EndpointId, receiver_thread: Optional[str] = None
    ) -> Optional[Message]:
        """One attempt of a blocking receive.

        Returns the oldest delivered message or ``None`` when the queue is
        empty (in which case the calling thread should be treated as blocked
        by the scheduler and retried later).
        """
        endpoint = self._endpoint(endpoint_id)
        return endpoint.pop_message()

    def msg_recv_i(
        self, endpoint_id: EndpointId, receiver_thread: Optional[str] = None
    ) -> Request:
        """Post a non-blocking receive; mirrors ``mcapi_msg_recv_i``.

        The request is bound to the next message delivered to the endpoint
        that is not claimed by an earlier outstanding request.  If a message
        is already waiting it is bound immediately.
        """
        endpoint = self._endpoint(endpoint_id)
        request = Request(
            kind=RequestKind.RECEIVE, endpoint=endpoint_id, issuing_thread=receiver_thread
        )
        self.requests[request.request_id] = request
        message = endpoint.pop_message()
        if message is not None:
            request.complete_with(message)
        else:
            endpoint.pending_receives.append(request)
        return request

    # ------------------------------------------------------------------ request queries

    def test(self, request: Request) -> bool:
        """Poll a request for completion; mirrors ``mcapi_test``."""
        self._validate_request(request)
        return request.completed

    def wait_ready(self, request: Request) -> bool:
        """One attempt of ``mcapi_wait``.

        Returns True when the request has completed.  A False return means
        the calling thread must stay blocked; the scheduler re-polls after
        it performs other actions (e.g. network deliveries).
        """
        self._validate_request(request)
        if request.cancelled:
            raise McapiError(f"wait on cancelled request {request.request_id}")
        return request.completed

    def cancel(self, request: Request) -> McapiStatus:
        """Cancel an outstanding request; mirrors ``mcapi_cancel``."""
        self._validate_request(request)
        if request.completed:
            return McapiStatus.ERR_REQUEST_INVALID
        request.cancel()
        endpoint = self.endpoints.get(request.endpoint)
        if endpoint and request in endpoint.pending_receives:
            endpoint.pending_receives.remove(request)
        return McapiStatus.SUCCESS

    def _validate_request(self, request: Request) -> None:
        if request.request_id not in self.requests:
            raise McapiError(f"unknown request handle {request.request_id}")

    # ------------------------------------------------------------------ network actions

    def deliverable_messages(self) -> List[InTransitMessage]:
        """In-flight messages the delivery policy allows to arrive now."""
        return self.network.deliverable(self.current_step)

    def deliver(self, record: InTransitMessage) -> Optional[Request]:
        """Deliver one in-flight message to its destination endpoint.

        If the endpoint has outstanding non-blocking receive requests the
        message is bound to the oldest one (and the bound request is
        returned); otherwise the message joins the endpoint's queue.
        """
        endpoint = self._endpoint(record.message.destination)
        if endpoint.queue_full:
            raise McapiError(f"receive queue full at {endpoint.endpoint_id}")
        self.network.mark_delivered(record, self.current_step)
        if endpoint.pending_receives:
            request = endpoint.pending_receives.popleft()
            request.complete_with(record.message)
            return request
        endpoint.deliver(record.message)
        return None

    def advance_step(self) -> None:
        """Advance the simulation clock by one scheduler step."""
        self.current_step += 1

    # ------------------------------------------------------------------ introspection

    def quiescent(self) -> bool:
        """True when no messages are in flight."""
        return self.network.is_quiescent()

    def snapshot(self) -> Dict[str, object]:
        """A compact, hashable-ish description of runtime state (for DPOR/
        explicit-state baselines and debugging)."""
        return {
            "step": self.current_step,
            "queues": {
                str(eid): [m.message_id for m in ep.queue]
                for eid, ep in self.endpoints.items()
            },
            "in_flight": [
                r.message_id for r in self.network.in_transit if not r.delivered
            ],
        }
