"""Nodes, ports and endpoints.

MCAPI addresses are triples ``(domain, node, port)``; this simulator models a
single domain, so an :class:`EndpointId` is the pair ``(node, port)``.  An
:class:`Endpoint` owns a receive queue of delivered messages plus the queue
of outstanding non-blocking receive requests posted against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional, TYPE_CHECKING
from collections import deque

from repro.utils.errors import McapiError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mcapi.messages import Message
    from repro.mcapi.requests import Request


@dataclass(frozen=True, order=True)
class EndpointId:
    """A fully qualified endpoint address ``(node, port)``."""

    node: int
    port: int

    def __str__(self) -> str:
        return f"ep({self.node}:{self.port})"


@dataclass
class Endpoint:
    """Runtime state of one endpoint.

    Attributes
    ----------
    endpoint_id:
        The endpoint's address.
    queue:
        Messages that have been *delivered* by the network and are ready to
        be returned by a receive call, in delivery order.
    pending_receives:
        Non-blocking receive requests posted with ``msg_recv_i`` that have
        not yet been bound to a message, in posting order.
    max_queue_length:
        Capacity of the delivered-message queue; delivery is deferred while
        the queue is full (the reference implementation returns
        ``MCAPI_ERR_QUEUE_FULL`` / retries).
    """

    endpoint_id: EndpointId
    queue: Deque["Message"] = field(default_factory=deque)
    pending_receives: Deque["Request"] = field(default_factory=deque)
    max_queue_length: int = 64
    open: bool = True

    @property
    def node(self) -> int:
        return self.endpoint_id.node

    @property
    def port(self) -> int:
        return self.endpoint_id.port

    @property
    def queue_full(self) -> bool:
        return len(self.queue) >= self.max_queue_length

    def deliver(self, message: "Message") -> None:
        """Place a message at the tail of the delivered queue."""
        if not self.open:
            raise McapiError(f"delivery to deleted endpoint {self.endpoint_id}")
        if self.queue_full:
            raise McapiError(f"receive queue overflow at {self.endpoint_id}")
        self.queue.append(message)

    def pop_message(self) -> Optional["Message"]:
        """Remove and return the oldest delivered message, if any."""
        if self.queue:
            return self.queue.popleft()
        return None

    def available(self) -> int:
        """Number of delivered messages waiting to be received."""
        return len(self.queue)

    def __str__(self) -> str:
        return str(self.endpoint_id)


@dataclass
class Node:
    """A node (processing element) that owns endpoints and runs threads."""

    node_id: int
    endpoints: List[Endpoint] = field(default_factory=list)
    initialized: bool = True

    def find_endpoint(self, port: int) -> Optional[Endpoint]:
        for endpoint in self.endpoints:
            if endpoint.port == port and endpoint.open:
                return endpoint
        return None

    def used_ports(self) -> List[int]:
        return [e.port for e in self.endpoints if e.open]
