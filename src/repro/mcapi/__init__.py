"""A simulator for the MCAPI connectionless-message API.

The paper analyses applications written against the Multicore Association's
MCAPI message-passing API.  This package is the runtime those applications
execute on inside the reproduction: endpoints, connectionless messages,
blocking and non-blocking send/receive, request handles with ``test`` /
``wait``, and — crucially — a network model in which transmission delays are
a source of non-determinism controlled by the scheduler, which is exactly
the behaviour the paper's symbolic encoding captures and prior tools missed.
"""

from repro.mcapi.status import (
    MCAPI_MAX_MSG_SIZE,
    MCAPI_MAX_PRIORITY,
    MCAPI_PORT_ANY,
    MCAPI_TIMEOUT_INFINITE,
    McapiStatus,
)
from repro.mcapi.endpoint import Endpoint, EndpointId, Node
from repro.mcapi.messages import InTransitMessage, Message
from repro.mcapi.requests import Request, RequestKind, RequestState
from repro.mcapi.network import (
    DeliveryPolicy,
    ImmediateDelivery,
    Network,
    RandomDelayDelivery,
    UnorderedDelivery,
)
from repro.mcapi.runtime import McapiRuntime
from repro.mcapi.scheduler import (
    Action,
    DeliveryEagerStrategy,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    RunResult,
    Scheduler,
    SchedulingStrategy,
    Task,
    TaskStatus,
)

__all__ = [
    "MCAPI_MAX_MSG_SIZE",
    "MCAPI_MAX_PRIORITY",
    "MCAPI_PORT_ANY",
    "MCAPI_TIMEOUT_INFINITE",
    "McapiStatus",
    "Endpoint",
    "EndpointId",
    "Node",
    "InTransitMessage",
    "Message",
    "Request",
    "RequestKind",
    "RequestState",
    "DeliveryPolicy",
    "ImmediateDelivery",
    "Network",
    "RandomDelayDelivery",
    "UnorderedDelivery",
    "McapiRuntime",
    "Action",
    "DeliveryEagerStrategy",
    "RandomStrategy",
    "ReplayStrategy",
    "RoundRobinStrategy",
    "RunResult",
    "Scheduler",
    "SchedulingStrategy",
    "Task",
    "TaskStatus",
]
