"""The simulated MCAPI interconnect with non-deterministic delivery delays.

Messages sent with ``msg_send`` / ``msg_send_i`` are first placed *in
transit*.  Moving a message from the network into the destination endpoint's
receive queue ("delivery") is a separate step chosen by the scheduler.  The
policy objects in this module control which in-transit messages are
*eligible* for delivery at a given moment, which is how the three network
models discussed in the paper are realised:

* :class:`ImmediateDelivery` — a message becomes deliverable as soon as it is
  sent, and the network keeps messages to a common destination in global
  send order.  This mirrors the behaviour MCC assumes (no transmission
  delays) and is used by the MCC baseline.
* :class:`UnorderedDelivery` — messages from *different* senders to a common
  endpoint may be delivered in either order (MCAPI only guarantees ordering
  between a fixed source/destination endpoint pair).  This is the model the
  paper argues a sound analysis must consider.
* :class:`RandomDelayDelivery` — like :class:`UnorderedDelivery` but each
  message additionally draws a random minimum in-transit time, which is how
  the simulator produces concrete traces that exhibit reorderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.mcapi.endpoint import EndpointId
from repro.mcapi.messages import InTransitMessage, Message
from repro.utils.errors import McapiError
from repro.utils.rng import DeterministicRNG

__all__ = [
    "DeliveryPolicy",
    "ImmediateDelivery",
    "UnorderedDelivery",
    "RandomDelayDelivery",
    "Network",
]


class DeliveryPolicy:
    """Strategy deciding which in-transit messages may be delivered."""

    #: Whether the policy preserves global send order per destination
    #: endpoint (True only for the MCC-style immediate model).
    globally_ordered: bool = False

    def min_delay(self, message: Message) -> int:
        """Minimum number of steps the message must remain in transit."""
        return 0

    def eligible(
        self, in_transit: List[InTransitMessage], current_step: int
    ) -> List[InTransitMessage]:
        """The subset of in-transit messages that may be delivered now.

        Regardless of policy, MCAPI's per-pair FIFO guarantee is enforced:
        a message is only eligible if no *earlier* undelivered message exists
        for the same (source, destination) endpoint pair.
        """
        eligible: List[InTransitMessage] = []
        for candidate in in_transit:
            if candidate.delivered:
                continue
            if not candidate.ready(current_step):
                continue
            if self._blocked_by_pair_order(candidate, in_transit):
                continue
            eligible.append(candidate)
        if self.globally_ordered:
            eligible = self._restrict_to_global_order(eligible, in_transit)
        return eligible

    @staticmethod
    def _blocked_by_pair_order(
        candidate: InTransitMessage, in_transit: List[InTransitMessage]
    ) -> bool:
        for other in in_transit:
            if other.delivered or other is candidate:
                continue
            same_pair = (
                other.message.source == candidate.message.source
                and other.message.destination == candidate.message.destination
            )
            if same_pair and other.message.send_index < candidate.message.send_index:
                return True
        return False

    @staticmethod
    def _restrict_to_global_order(
        eligible: List[InTransitMessage], in_transit: List[InTransitMessage]
    ) -> List[InTransitMessage]:
        """Keep only the globally-oldest undelivered message per destination."""
        restricted: List[InTransitMessage] = []
        for candidate in eligible:
            blocked = False
            for other in in_transit:
                if other.delivered or other is candidate:
                    continue
                if (
                    other.message.destination == candidate.message.destination
                    and other.message.message_id < candidate.message.message_id
                ):
                    blocked = True
                    break
            if not blocked:
                restricted.append(candidate)
        return restricted


class ImmediateDelivery(DeliveryPolicy):
    """No transmission delays; per-destination global FIFO (MCC's model)."""

    globally_ordered = True


class UnorderedDelivery(DeliveryPolicy):
    """Arbitrary cross-sender reordering, per-pair FIFO (the paper's model)."""

    globally_ordered = False


class RandomDelayDelivery(DeliveryPolicy):
    """Cross-sender reordering plus random minimum in-transit delays."""

    def __init__(self, rng: DeterministicRNG, mean_delay: float = 0.5, cap: int = 8):
        self._rng = rng
        self._cap = cap
        # Convert a mean delay into the geometric success probability.
        self._p = 1.0 / (1.0 + max(mean_delay, 0.0))

    def min_delay(self, message: Message) -> int:
        return self._rng.geometric(self._p, cap=self._cap)


@dataclass
class Network:
    """The in-transit message store.

    The network assigns message identifiers, tracks per-pair sequence
    numbers, and answers the scheduler's two questions: *which messages can
    be delivered right now?* and *deliver this one*.
    """

    policy: DeliveryPolicy = field(default_factory=UnorderedDelivery)
    in_transit: List[InTransitMessage] = field(default_factory=list)
    delivered_log: List[InTransitMessage] = field(default_factory=list)
    _next_message_id: int = 0
    _pair_counters: Dict[Tuple[EndpointId, EndpointId], int] = field(
        default_factory=dict
    )

    # -- sending -----------------------------------------------------------------

    def submit(
        self,
        source: EndpointId,
        destination: EndpointId,
        payload: object,
        priority: int = 0,
        sender_thread: Optional[str] = None,
        current_step: int = 0,
    ) -> Message:
        """Accept a message for transmission; returns the Message record."""
        pair = (source, destination)
        send_index = self._pair_counters.get(pair, 0)
        self._pair_counters[pair] = send_index + 1
        message = Message(
            message_id=self._next_message_id,
            source=source,
            destination=destination,
            payload=payload,
            priority=priority,
            send_index=send_index,
            sender_thread=sender_thread,
        )
        self._next_message_id += 1
        record = InTransitMessage(
            message=message,
            sent_at_step=current_step,
            min_delay=self.policy.min_delay(message),
        )
        self.in_transit.append(record)
        return message

    # -- delivery ----------------------------------------------------------------

    def deliverable(self, current_step: int) -> List[InTransitMessage]:
        """Messages that the policy allows to be delivered at this step."""
        return self.policy.eligible(self.in_transit, current_step)

    def mark_delivered(self, record: InTransitMessage, current_step: int) -> None:
        if record.delivered:
            raise McapiError(f"message {record.message_id} delivered twice")
        record.delivered = True
        record.delivered_at_step = current_step
        self.delivered_log.append(record)

    def find(self, message_id: int) -> InTransitMessage:
        for record in self.in_transit:
            if record.message_id == message_id:
                return record
        raise McapiError(f"unknown message id {message_id}")

    # -- introspection -----------------------------------------------------------

    @property
    def undelivered_count(self) -> int:
        return sum(1 for r in self.in_transit if not r.delivered)

    def all_messages(self) -> List[Message]:
        return [r.message for r in self.in_transit]

    def is_quiescent(self) -> bool:
        """True when nothing remains in flight."""
        return self.undelivered_count == 0
