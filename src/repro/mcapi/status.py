"""MCAPI status codes and API constants.

The Multicore Association's MCAPI specification reports the outcome of every
call through a status code.  The simulator mirrors the subset of codes that
the connectionless-message API can produce; library code raises
:class:`repro.utils.errors.McapiError` for outright API misuse (which in the
C API would be undefined behaviour or an assertion).
"""

from __future__ import annotations

from enum import Enum, auto


class McapiStatus(Enum):
    """Status codes returned by MCAPI calls (subset relevant to messages)."""

    SUCCESS = auto()
    PENDING = auto()
    TIMEOUT = auto()
    ERR_NODE_INITFAILED = auto()
    ERR_NODE_INITIALIZED = auto()
    ERR_NODE_NOTINIT = auto()
    ERR_ENDP_INVALID = auto()
    ERR_ENDP_EXISTS = auto()
    ERR_ENDP_NOTOWNER = auto()
    ERR_PORT_INVALID = auto()
    ERR_MSG_TRUNCATED = auto()
    ERR_MSG_LIMIT = auto()
    ERR_TRANSMISSION = auto()
    ERR_REQUEST_INVALID = auto()
    ERR_REQUEST_CANCELLED = auto()
    ERR_PARAMETER = auto()
    ERR_QUEUE_EMPTY = auto()
    ERR_QUEUE_FULL = auto()

    @property
    def is_success(self) -> bool:
        return self is McapiStatus.SUCCESS

    @property
    def is_error(self) -> bool:
        return self not in (McapiStatus.SUCCESS, McapiStatus.PENDING)


#: Highest (most urgent) message priority.  MCAPI priorities run from 0
#: (highest) to ``MCAPI_MAX_PRIORITY`` (lowest).
MCAPI_MAX_PRIORITY = 7

#: Maximum connectionless message size accepted by the simulator, in bytes.
#: (The real implementation advertises this through mcapi_msg_available /
#: attributes; we pick the reference implementation's default.)
MCAPI_MAX_MSG_SIZE = 4096

#: Value used for infinite timeouts in ``wait`` calls.
MCAPI_TIMEOUT_INFINITE = 0xFFFFFFFF

#: The "any port" wildcard used by ``endpoint_create``.
MCAPI_PORT_ANY = 0xFFFFFFFF
