"""Cooperative scheduling of simulated threads and network deliveries.

The scheduler owns all non-determinism of a simulated MCAPI run.  At every
step it gathers the set of *enabled actions*:

* ``run <task>``      — a thread that is neither finished nor blocked takes
  one atomic step (one MCAPI call or one local statement), and
* ``deliver <msg>``   — an in-flight message the delivery policy allows to
  arrive is moved into its destination endpoint (possibly completing an
  outstanding non-blocking receive).

A :class:`SchedulingStrategy` picks one enabled action; different strategies
reproduce different system behaviours (random OS scheduling and transmission
delays, round-robin, or the exact replay of a previously recorded schedule —
used to replay SMT counterexample witnesses).  If no action is enabled while
some task is still unfinished, the run ends in a deadlock, which the caller
receives as part of the :class:`RunResult` rather than as an exception so
that verification workloads can treat deadlocks as first-class outcomes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.mcapi.messages import InTransitMessage
from repro.mcapi.runtime import McapiRuntime
from repro.utils.errors import McapiError
from repro.utils.rng import DeterministicRNG

__all__ = [
    "TaskStatus",
    "Task",
    "Action",
    "RunResult",
    "SchedulingStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "ReplayStrategy",
    "DeliveryEagerStrategy",
    "Scheduler",
]


class TaskStatus(Enum):
    """Observable state of a simulated thread."""

    READY = auto()     #: can take a step right now
    BLOCKED = auto()   #: waiting for a message / request completion
    DONE = auto()      #: finished executing


class Task(ABC):
    """A simulated thread.

    Concrete tasks are provided by the program interpreter
    (:class:`repro.program.interpreter.ThreadTask`) and, in tests, by small
    hand-written tasks.  A task must be *passive*: ``step`` performs exactly
    one atomic action against the runtime and returns.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def status(self, runtime: McapiRuntime) -> TaskStatus:
        """Report whether the task can currently take a step."""

    @abstractmethod
    def step(self, runtime: McapiRuntime) -> None:
        """Perform one atomic step (only called when status() is READY)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name}>"


@dataclass(frozen=True)
class Action:
    """One scheduler choice: either run a task or deliver a message."""

    kind: str                      # "run" | "deliver"
    task_name: Optional[str] = None
    message_id: Optional[int] = None

    @staticmethod
    def run(task: Task) -> "Action":
        return Action(kind="run", task_name=task.name)

    @staticmethod
    def deliver(record: InTransitMessage) -> "Action":
        return Action(kind="deliver", message_id=record.message_id)

    def key(self) -> Tuple[str, object]:
        return (self.kind, self.task_name if self.kind == "run" else self.message_id)

    def __str__(self) -> str:
        if self.kind == "run":
            return f"run({self.task_name})"
        return f"deliver(msg#{self.message_id})"


@dataclass
class RunResult:
    """Outcome of driving a set of tasks to completion (or deadlock)."""

    schedule: List[Action] = field(default_factory=list)
    steps: int = 0
    deadlocked: bool = False
    blocked_tasks: List[str] = field(default_factory=list)
    completed: bool = False

    @property
    def ok(self) -> bool:
        return self.completed and not self.deadlocked


class SchedulingStrategy(ABC):
    """Picks one of the currently enabled actions."""

    @abstractmethod
    def choose(self, actions: Sequence[Action], step: int) -> Action:
        """Return one element of ``actions`` (which is never empty)."""


class RandomStrategy(SchedulingStrategy):
    """Uniformly random choice — models arbitrary OS scheduling and delays."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = DeterministicRNG(seed)

    def choose(self, actions: Sequence[Action], step: int) -> Action:
        return self._rng.choice(list(actions))


class RoundRobinStrategy(SchedulingStrategy):
    """Cycle through tasks; deliver messages when no task can run."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, actions: Sequence[Action], step: int) -> Action:
        runs = [a for a in actions if a.kind == "run"]
        if runs:
            names = sorted({a.task_name for a in runs})
            chosen_name = names[self._cursor % len(names)]
            self._cursor += 1
            for action in runs:
                if action.task_name == chosen_name:
                    return action
            return runs[0]
        return actions[0]


class DeliveryEagerStrategy(SchedulingStrategy):
    """Always deliver in-flight messages before running any thread.

    Under the :class:`repro.mcapi.network.ImmediateDelivery` policy this
    reproduces the delay-free behaviour assumed by MCC.
    """

    def __init__(self, inner: Optional[SchedulingStrategy] = None) -> None:
        self._inner = inner or RoundRobinStrategy()

    def choose(self, actions: Sequence[Action], step: int) -> Action:
        deliveries = [a for a in actions if a.kind == "deliver"]
        if deliveries:
            return min(deliveries, key=lambda a: a.message_id)
        return self._inner.choose(actions, step)


class ReplayStrategy(SchedulingStrategy):
    """Replay a fixed schedule (used to replay SMT witnesses and DPOR paths).

    Actions are matched by their :meth:`Action.key`.  If the recorded action
    is not currently enabled a :class:`repro.utils.errors.McapiError` is
    raised — the schedule being replayed is not feasible.
    """

    def __init__(self, schedule: Sequence[Action]) -> None:
        self._schedule = list(schedule)
        self._cursor = 0

    def choose(self, actions: Sequence[Action], step: int) -> Action:
        if self._cursor >= len(self._schedule):
            raise McapiError("replay schedule exhausted but actions remain")
        wanted = self._schedule[self._cursor]
        self._cursor += 1
        for action in actions:
            if action.key() == wanted.key():
                return action
        raise McapiError(f"replayed action {wanted} is not enabled at step {step}")


class Scheduler:
    """Drives tasks and network deliveries to completion."""

    def __init__(
        self,
        runtime: McapiRuntime,
        tasks: Sequence[Task],
        strategy: Optional[SchedulingStrategy] = None,
        max_steps: int = 100_000,
        observer: Optional[Callable[[Action], None]] = None,
    ) -> None:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise McapiError(f"duplicate task names: {names}")
        self.runtime = runtime
        self.tasks: Dict[str, Task] = {t.name: t for t in tasks}
        self.strategy = strategy or RandomStrategy()
        self.max_steps = max_steps
        self.observer = observer

    # ------------------------------------------------------------------ main loop

    def enabled_actions(self) -> List[Action]:
        """All actions that could be performed right now."""
        actions: List[Action] = []
        for task in self.tasks.values():
            if task.status(self.runtime) is TaskStatus.READY:
                actions.append(Action.run(task))
        for record in self.runtime.deliverable_messages():
            actions.append(Action.deliver(record))
        return actions

    def perform(self, action: Action) -> None:
        """Execute one action against the runtime."""
        if action.kind == "run":
            task = self.tasks[action.task_name]
            task.step(self.runtime)
        elif action.kind == "deliver":
            record = self.runtime.network.find(action.message_id)
            self.runtime.deliver(record)
        else:  # pragma: no cover - defensive
            raise McapiError(f"unknown action kind {action.kind}")
        self.runtime.advance_step()
        if self.observer is not None:
            self.observer(action)

    def run(self) -> RunResult:
        """Run until every task is done, a deadlock occurs, or steps run out."""
        result = RunResult()
        while result.steps < self.max_steps:
            statuses = {
                name: task.status(self.runtime) for name, task in self.tasks.items()
            }
            if all(status is TaskStatus.DONE for status in statuses.values()):
                result.completed = True
                return result
            actions = self.enabled_actions()
            if not actions and not self.runtime.quiescent():
                # Messages are in flight but still held back by the delay
                # model: let simulated time pass (an "idle tick") so they
                # become deliverable, rather than declaring a deadlock.
                self.runtime.advance_step()
                result.steps += 1
                continue
            if not actions:
                result.deadlocked = True
                result.blocked_tasks = sorted(
                    name
                    for name, status in statuses.items()
                    if status is TaskStatus.BLOCKED
                )
                return result
            action = self.strategy.choose(actions, result.steps)
            self.perform(action)
            result.schedule.append(action)
            result.steps += 1
        raise McapiError(
            f"scheduler exceeded max_steps={self.max_steps}; "
            "the program may contain an unbounded loop"
        )
