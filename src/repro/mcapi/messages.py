"""Message representation and the in-transit network record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mcapi.endpoint import EndpointId


@dataclass(frozen=True)
class Message:
    """A connectionless MCAPI message.

    Payloads are arbitrary Python values; the trace encoder only requires
    them to be comparable (the paper's examples use integers / opaque tags).

    Attributes
    ----------
    message_id:
        A globally unique identifier assigned at send time.  The paper's
        trace analysis gives "each send operation a unique identifier for use
        in the SMT problem" — this is that identifier's runtime counterpart.
    source / destination:
        Endpoint addresses.
    payload:
        The value carried by the message.
    priority:
        MCAPI priority, 0 (highest) .. 7 (lowest).
    send_index:
        Per-(source, destination) sequence number, used to enforce the MCAPI
        guarantee that messages between the *same* pair of endpoints are
        delivered in send order.
    """

    message_id: int
    source: EndpointId
    destination: EndpointId
    payload: object
    priority: int = 0
    send_index: int = 0
    sender_thread: Optional[str] = None

    def __str__(self) -> str:
        return (
            f"msg#{self.message_id} {self.source}->{self.destination} "
            f"payload={self.payload!r}"
        )


@dataclass
class InTransitMessage:
    """A sent-but-not-yet-delivered message inside the simulated network.

    The delivery of these records is a *scheduler action*: by choosing when
    to perform it relative to other events, the simulator exhibits exactly
    the non-deterministic transmission delays whose omission the paper
    criticises in MCC and the Elwakil/Yang encoding.
    """

    message: Message
    #: Simulation step at which the message entered the network.
    sent_at_step: int
    #: Minimum number of scheduler steps the message must stay in transit
    #: (produced by the delay model; 0 means deliverable immediately).
    min_delay: int = 0
    #: Set once the message has been handed to the destination endpoint.
    delivered: bool = False
    #: Step at which delivery happened (for reporting).
    delivered_at_step: Optional[int] = None

    @property
    def message_id(self) -> int:
        return self.message.message_id

    def ready(self, current_step: int) -> bool:
        """True when the delay model allows this message to be delivered."""
        return not self.delivered and current_step - self.sent_at_step >= self.min_delay
