"""Request handles for non-blocking MCAPI operations.

``mcapi_msg_send_i`` and ``mcapi_msg_recv_i`` return a request handle whose
completion is observed with ``mcapi_test`` (poll) or ``mcapi_wait`` (block).
In this simulator send requests complete as soon as the message is buffered
into the network (the reference implementation behaves the same way for
messages that fit in its buffers), while receive requests complete when a
delivered message is *bound* to them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.mcapi.endpoint import EndpointId
from repro.mcapi.messages import Message
from repro.utils.errors import McapiError


class RequestKind(Enum):
    SEND = auto()
    RECEIVE = auto()


class RequestState(Enum):
    PENDING = auto()
    COMPLETED = auto()
    CANCELLED = auto()


_request_counter = itertools.count(1)


@dataclass
class Request:
    """A non-blocking operation handle.

    Attributes
    ----------
    request_id:
        Unique handle value.
    kind:
        Whether this is a send or receive request.
    endpoint:
        The local endpoint the operation was issued on (the receiving
        endpoint for ``recv_i``, the sending endpoint for ``send_i``).
    issuing_thread:
        Name of the thread that issued the operation (used by the trace).
    """

    kind: RequestKind
    endpoint: EndpointId
    issuing_thread: Optional[str] = None
    request_id: int = field(default_factory=lambda: next(_request_counter))
    state: RequestState = RequestState.PENDING
    message: Optional[Message] = None

    @property
    def completed(self) -> bool:
        return self.state is RequestState.COMPLETED

    @property
    def pending(self) -> bool:
        return self.state is RequestState.PENDING

    @property
    def cancelled(self) -> bool:
        return self.state is RequestState.CANCELLED

    def complete_with(self, message: Optional[Message]) -> None:
        """Mark the request complete (binding ``message`` for receives)."""
        if self.state is RequestState.CANCELLED:
            raise McapiError(f"request {self.request_id} was already cancelled")
        if self.state is RequestState.COMPLETED:
            raise McapiError(f"request {self.request_id} completed twice")
        if self.kind is RequestKind.RECEIVE and message is None:
            raise McapiError("receive requests must complete with a message")
        self.state = RequestState.COMPLETED
        self.message = message

    def cancel(self) -> None:
        if self.state is RequestState.COMPLETED:
            raise McapiError(f"cannot cancel completed request {self.request_id}")
        self.state = RequestState.CANCELLED

    def take_message(self) -> Message:
        """Return the bound message (receive requests only)."""
        if self.kind is not RequestKind.RECEIVE:
            raise McapiError("take_message on a send request")
        if not self.completed or self.message is None:
            raise McapiError(f"request {self.request_id} has no message bound yet")
        return self.message

    def __str__(self) -> str:
        return f"req#{self.request_id}({self.kind.name.lower()}@{self.endpoint})"
