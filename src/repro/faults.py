"""Deterministic fault injection for end-to-end resilience testing.

The service stack is built from pure, idempotent verification queries, so
every infrastructure failure — a crashed worker, a killed solver process, a
torn cache write, a garbled protocol frame — is safely retryable.  This
module makes those failures *first-class and injectable* so the retry,
respawn and degradation machinery can be exercised deterministically:

* A :class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s, each
  naming an **injection site** (``pool.worker.request``,
  ``protocol.decode``, ``cache.write.index``, ``pipe.check``,
  ``kernel.propagate``, ...), a **fault kind** and a firing schedule.
* Call sites consult the plan through :func:`draw` / :func:`fire`.  The
  hot-path contract is *zero overhead when disabled*: every hook guards on
  the module global ``faults.ACTIVE is not None`` (one attribute read)
  before doing anything else.
* Plans propagate to forked workers automatically (module state survives
  ``fork``) and to daemon subprocesses through the ``REPRO_FAULT_PLAN``
  environment variable, parsed once at import time.

Fault kinds:

``crash``
    Raise an exception at the site (the call site picks the class so the
    injected failure is indistinguishable from the natural one).
``exit``
    Hard process death (``os._exit``) — simulates a segfaulting worker.
    Sites inside long-lived worker processes treat ``crash`` the same way.
``hang``
    Sleep ``delay`` seconds (default 30) — long enough to blow a deadline
    and trigger the hard-kill path.
``slow``
    Sleep ``delay`` seconds (default 0.05) — latency without failure.
``garble``
    Deterministically corrupt the bytes passing through the site (frame
    terminators are preserved, so corruption is *detectable*, never a
    silent hang or a silently wrong verdict).

Plan syntax (compact form, also accepted as JSON)::

    REPRO_FAULT_PLAN='seed=7;pool.worker.request:exit:after=2,max=2;protocol.decode:garble:p=0.25'

Each rule is ``site:kind[:key=value,...]`` with options ``p`` (firing
probability per eligible hit), ``after`` (skip the first N hits), ``max``
(total fires, 0 = unlimited), ``delay`` (seconds, hang/slow) and ``match``
(substring the call site's context tag must contain, e.g. a workload
name — this is what makes a *specific* query a poison query).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from random import Random
from typing import Dict, List, Optional, Sequence, Union

from repro.utils.errors import ReproError

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "EXIT_CODE",
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "ACTIVE",
    "install",
    "install_from_env",
    "clear",
    "draw",
    "fire",
    "garble",
]

#: Environment variable carrying an encoded plan to subprocesses.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit status used by ``exit`` faults, distinct enough to spot in logs.
EXIT_CODE = 29

FAULT_KINDS = ("crash", "exit", "hang", "garble", "slow")

_HANG_DELAY = 30.0
_SLOW_DELAY = 0.05


class FaultInjected(ReproError):
    """Default exception for ``crash`` faults (call sites usually override)."""


@dataclass
class FaultRule:
    """One injection: where, what, and on which hits it fires."""

    site: str
    kind: str
    p: float = 1.0
    after: int = 0
    max_fires: int = 1  # 0 means unlimited
    delay: Optional[float] = None
    match: Optional[str] = None
    hits: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )
        if not self.site:
            raise ReproError("fault rule needs a site pattern")

    @property
    def sleep_s(self) -> float:
        if self.delay is not None:
            return self.delay
        return _HANG_DELAY if self.kind == "hang" else _SLOW_DELAY

    def encode(self) -> str:
        opts = []
        if self.p != 1.0:
            opts.append(f"p={self.p}")
        if self.after:
            opts.append(f"after={self.after}")
        if self.max_fires != 1:
            opts.append(f"max={self.max_fires}")
        if self.delay is not None:
            opts.append(f"delay={self.delay}")
        if self.match is not None:
            opts.append(f"match={self.match}")
        text = f"{self.site}:{self.kind}"
        return text + (":" + ",".join(opts) if opts else "")


def _parse_rule(text: str) -> FaultRule:
    parts = text.split(":", 2)
    if len(parts) < 2:
        raise ReproError(
            f"bad fault rule {text!r}; expected site:kind[:key=value,...]"
        )
    site, kind = parts[0].strip(), parts[1].strip()
    kwargs: Dict[str, object] = {}
    if len(parts) == 3 and parts[2].strip():
        for option in parts[2].split(","):
            key, sep, value = option.partition("=")
            key = key.strip()
            if not sep:
                raise ReproError(f"bad fault rule option {option!r} in {text!r}")
            if key == "p":
                kwargs["p"] = float(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == "max":
                kwargs["max_fires"] = int(value)
            elif key == "delay":
                kwargs["delay"] = float(value)
            elif key == "match":
                kwargs["match"] = value
            else:
                raise ReproError(f"unknown fault rule option {key!r} in {text!r}")
    return FaultRule(site=site, kind=kind, **kwargs)


class FaultPlan:
    """A seeded, deterministic schedule of fault injections.

    Rules are consulted in order; the first rule that matches the site (and
    the optional context tag) *and* is due on this hit fires.  Hit and fire
    counters are per-process: a respawned worker starts from the counters
    its parent held at fork time, which is exactly what makes "this worker
    crashes on its Nth request" reproducible across respawns.
    """

    def __init__(self, rules: Sequence[Union[FaultRule, str]], seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: List[FaultRule] = [
            rule if isinstance(rule, FaultRule) else _parse_rule(rule)
            for rule in rules
        ]
        # One RNG per rule, seeded stably (hash() is salted across
        # processes; crc32 is not) so p<1 schedules replay identically.
        self._rngs = [
            Random(zlib.crc32(f"{self.seed}:{i}:{rule.site}".encode("utf-8")))
            for i, rule in enumerate(self.rules)
        ]
        self.fired: Dict[str, int] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the compact string form (or a JSON object)."""
        text = text.strip()
        if not text:
            return cls([])
        if text.startswith("{"):
            payload = json.loads(text)
            return cls(
                [FaultRule(**rule) for rule in payload.get("rules", [])],
                seed=int(payload.get("seed", 0)),
            )
        seed = 0
        rules: List[FaultRule] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.startswith("seed="):
                seed = int(chunk[len("seed="):])
                continue
            rules.append(_parse_rule(chunk))
        return cls(rules, seed=seed)

    def encode(self) -> str:
        """Round-trippable compact form, suitable for :data:`ENV_VAR`."""
        chunks = [f"seed={self.seed}"] if self.seed else []
        chunks.extend(rule.encode() for rule in self.rules)
        return ";".join(chunks)

    # -- consultation ------------------------------------------------------------

    def draw(self, site: str, tag: Optional[str] = None) -> Optional[FaultRule]:
        """Count a hit at ``site``; return the rule that fires, if any."""
        chosen: Optional[FaultRule] = None
        for index, rule in enumerate(self.rules):
            if not fnmatchcase(site, rule.site):
                continue
            if rule.match is not None and rule.match not in (tag or ""):
                continue
            rule.hits += 1
            if chosen is not None:
                continue  # keep counting hits on later rules
            if rule.hits <= rule.after:
                continue
            if rule.max_fires and rule.fires >= rule.max_fires:
                continue
            if rule.p < 1.0 and self._rngs[index].random() >= rule.p:
                continue
            rule.fires += 1
            key = f"{site}:{rule.kind}"
            self.fired[key] = self.fired.get(key, 0) + 1
            chosen = rule
        return chosen

    def counters(self) -> Dict[str, int]:
        """``site:kind`` → fire count, for assertions and ``stats`` output."""
        return dict(self.fired)

    def total_fires(self) -> int:
        return sum(self.fired.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.encode()!r}, fired={self.total_fires()})"


#: The installed plan, or None.  Hot paths guard on this attribute directly
#: (``if faults.ACTIVE is not None``) so a disabled harness costs one
#: module-global read per site.
ACTIVE: Optional[FaultPlan] = None


def install(
    plan: Union[FaultPlan, str, None], export: bool = False
) -> Optional[FaultPlan]:
    """Install ``plan`` (a :class:`FaultPlan` or its string form) process-wide.

    ``export=True`` additionally writes the encoded plan to
    :data:`ENV_VAR` so *subprocesses that re-import the package* (daemon
    smoke tests, spawned solvers) inherit it; forked workers share module
    state and need no export.  Returns the installed plan.
    """
    global ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    ACTIVE = plan
    if export:
        if plan is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = plan.encode()
    return plan


def install_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """(Re-)install the plan named by :data:`ENV_VAR`, or clear if unset."""
    text = environ.get(ENV_VAR)
    return install(FaultPlan.parse(text) if text else None)


def clear() -> None:
    """Remove the installed plan (and the env var, so children run clean)."""
    install(None, export=True)


def draw(site: str, tag: Optional[str] = None) -> Optional[FaultRule]:
    """The rule firing at ``site`` on this hit, or None.

    For call sites that materialise the fault themselves (kill a
    subprocess, ``os._exit`` a worker).  Returns immediately when no plan
    is installed.
    """
    plan = ACTIVE
    if plan is None:
        return None
    return plan.draw(site, tag)


def garble(data: bytes) -> bytes:
    """Deterministically corrupt ``data``, preserving a trailing newline.

    The corruption XORs every payload byte, so a JSON frame becomes
    undecodable junk (detected and rejected) rather than different valid
    JSON — injected garbling can surface as an error or a retry, never as
    a silently wrong answer.
    """
    if not data:
        return data
    terminator = b"\n" if data.endswith(b"\n") else b""
    payload = data[: len(data) - len(terminator)]
    return bytes(byte ^ 0xA5 for byte in payload) + terminator


def fire(
    site: str,
    data: Optional[bytes] = None,
    crash: type = FaultInjected,
    tag: Optional[str] = None,
) -> Optional[bytes]:
    """Consult the plan at ``site`` and act on the drawn fault, generically.

    ``crash`` (and ``exit`` outside a worker loop) raises ``crash(...)``;
    ``hang``/``slow`` sleep; ``garble`` corrupts and returns ``data``.
    Returns ``data`` unchanged when nothing fires.
    """
    plan = ACTIVE
    if plan is None:
        return data
    rule = plan.draw(site, tag)
    if rule is None:
        return data
    if rule.kind in ("hang", "slow"):
        time.sleep(rule.sleep_s)
        return data
    if rule.kind == "garble":
        if data is not None:
            return garble(data)
        raise crash(f"injected garble at {site} (no payload to corrupt)")
    raise crash(f"injected {rule.kind} at {site}")


# A daemon launched with REPRO_FAULT_PLAN set (the CI chaos smoke test)
# activates its plan here, before any worker forks.
install_from_env()
