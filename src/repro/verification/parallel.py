"""Sharded parallel batch verification with fingerprint dedup and caching.

:func:`repro.verification.session.verify_many` answers a batch one item at a
time in one process.  This module is the scale-out layer on top of the same
session machinery:

* **Sharding** — :class:`ParallelVerifier` distributes the batch over a
  ``multiprocessing`` pool of worker processes.  Workers never receive live
  solver objects; they receive picklable
  :class:`~repro.smt.backend.BackendSpec` descriptions and each builds its
  own :class:`~repro.verification.session.VerificationSession` per trace,
  so no solver state ever crosses a process boundary.
* **Dedup** — before anything is scheduled, every trace is fingerprinted
  (:func:`repro.trace.fingerprint.trace_fingerprint`) and the batch is
  collapsed onto distinct ``(fingerprint, properties, options, backend)``
  keys.  Each distinct question is solved exactly once; duplicates get the
  representative's verdict with the witness translated onto their own
  trace's identifiers.
* **Caching** — an optional :class:`~repro.verification.cache.ResultCache`
  (in-memory LRU, optionally disk-backed) answers repeats *across* batches
  without solving at all.
* **Portfolio** — with ``portfolio=True`` each trace is raced on several
  backends at once (by default the in-tree ``dpllt`` engine against the
  external ``smtlib`` process solver) and the first conclusive verdict
  wins.  Backends that are unavailable on the host are skipped silently,
  so a portfolio degrades gracefully to whatever is installed.

**Invariants.**

* Results come back in **input order**, one per item, whatever mix of
  solving, dedup and cache hits produced them; every duplicate- or
  cache-answered item is marked ``from_cache=True``.
* **No solver state crosses a process boundary** — workers receive only
  picklable specs and traces, so a parallel run can never observe another
  item's learned clauses, scopes or assumptions.
* Two items share an answer **only if their full question key matches**:
  fingerprint × properties × encoder options × backend × verification
  mode.  Witnesses shared that way are re-expressed in each item's own
  trace identifiers via the canonical ``(thread, thread_index)`` naming —
  never copied verbatim.
* ``UNKNOWN`` never propagates: it is not cached, not deduplicated across
  batches, and in portfolio mode only wins when *every* contender is
  inconclusive — so a budget artefact on one path cannot mask a
  conclusive answer from another.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.encoding.encoder import EncoderOptions
from repro.encoding.properties import Property
from repro.program.ast import Program
from repro.program.interpreter import ProgramRun, run_program
from repro.program.statictrace import static_trace
from repro.smt.backend import BackendSpec
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import (
    BackendUnavailableError,
    EncodingError,
    SolverError,
)
from repro.verification.cache import (
    CacheKey,
    ResultCache,
    _decode_witness,
    _encode_witness,
    make_cache_key,
)
from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import (
    VerificationSession,
    _recording_run,
    resolve_mode,
)

__all__ = [
    "ParallelVerifier",
    "verify_many_parallel",
    "default_portfolio",
    "theory_portfolio",
]


def default_portfolio(max_solver_iterations: int = 200_000) -> List[BackendSpec]:
    """The backends a portfolio races by default: dpllt vs smtlib."""
    return [
        BackendSpec.of("dpllt", max_iterations=max_solver_iterations),
        BackendSpec.of("smtlib"),
    ]


def theory_portfolio(max_solver_iterations: int = 200_000) -> List[BackendSpec]:
    """The ``portfolio="theory"`` lineup: dpllt online vs dpllt offline.

    Racing the two theory integrations of the same engine hedges the rare
    pathological online case (e.g. propagation-heavy instances where the
    offline lazy loop's coarse blocking clauses happen to converge faster)
    at the cost of one redundant solve per trace.
    """
    return [
        BackendSpec.of(
            "dpllt", max_iterations=max_solver_iterations, theory_mode="online"
        ),
        BackendSpec.of(
            "dpllt", max_iterations=max_solver_iterations, theory_mode="offline"
        ),
    ]


def _spec_label(spec: BackendSpec) -> str:
    """Human-readable spec name: the backend plus its theory mode, if any."""
    mode = dict(spec.kwargs).get("theory_mode")
    return f"{spec.name}[{mode}]" if mode else spec.name


@dataclass
class _SolveTask:
    """One distinct verification question, shipped to a worker process."""

    position: int
    trace: ExecutionTrace
    options: Optional[EncoderOptions]
    properties: Optional[Sequence[Property]]
    specs: Tuple[BackendSpec, ...]
    portfolio: bool
    max_solver_iterations: int
    timeout_s: Optional[float] = None


def _session_for(
    task: _SolveTask, spec: BackendSpec, problem=None
) -> VerificationSession:
    return VerificationSession(
        task.trace,
        options=task.options,
        properties=task.properties,
        backend=spec.create(),
        max_solver_iterations=task.max_solver_iterations,
        problem=problem,
    )


def _race_portfolio(task: _SolveTask) -> VerificationResult:
    """Race every available backend; first conclusive verdict wins.

    The in-tree engine is pure Python (GIL-bound) while the external
    process backend releases the GIL in ``subprocess.run``, so a thread
    race genuinely overlaps them.  The trace is encoded once and the
    problem shared by every contender.  UNKNOWN answers only win when
    every contender is inconclusive.

    Contenders run on daemon threads: the race returns (and the process
    may exit) as soon as one backend is conclusive, without joining the
    losers.  A losing in-tree solve burns CPU until its iteration budget;
    a losing external solve is abandoned to its subprocess timeout.
    """
    sessions: List[Tuple[VerificationSession, str]] = []
    problem = None
    for spec in task.specs:
        try:
            session = _session_for(task, spec, problem=problem)
        except BackendUnavailableError:
            continue
        sessions.append((session, _spec_label(spec)))
        problem = session.problem  # encode once, share with later contenders
    if not sessions:
        raise BackendUnavailableError(
            "no portfolio backend is available on this host: "
            + ", ".join(_spec_label(spec) for spec in task.specs)
        )
    if len(sessions) == 1:
        session, label = sessions[0]
        result = session.verdict(timeout_s=task.timeout_s)
        result.backend = label
        return result

    outcomes: "queue.Queue[Tuple[Optional[VerificationResult], Optional[Exception]]]" = (
        queue.Queue()
    )

    def contend(session: VerificationSession, label: str) -> None:
        try:
            result = session.verdict(timeout_s=task.timeout_s)
            # Label the result with the contender that produced it — for a
            # theory portfolio both contenders share the backend name, and
            # the winner's mode is part of the answer.
            result.backend = label
            outcomes.put((result, None))
        except Exception as exc:  # surfaced only if every contender fails
            outcomes.put((None, exc))

    for session, label in sessions:
        threading.Thread(
            target=contend,
            args=(session, label),
            daemon=True,
            name="portfolio-contender",
        ).start()

    inconclusive: Optional[VerificationResult] = None
    failure: Optional[Exception] = None
    for _ in sessions:
        result, error = outcomes.get()
        if error is not None:
            failure = error
        elif result.verdict is not Verdict.UNKNOWN:
            return result  # losers keep running unjoined; results discarded
        else:
            inconclusive = result
    if inconclusive is not None:
        return inconclusive
    raise failure if failure is not None else SolverError(
        "portfolio produced no result"
    )


def _solve_task(task: _SolveTask) -> Tuple[int, VerificationResult]:
    """Worker entry point: solve one distinct question, return its result."""
    if faults.ACTIVE is not None:
        rule = faults.draw("parallel.task", tag=str(task.position))
        if rule is not None:
            if rule.kind in ("crash", "exit"):
                if multiprocessing.current_process().name == "MainProcess":
                    # Inline/serial execution: a hard exit would take the
                    # caller down, so the crash surfaces as an exception
                    # the serial lane converts to UNKNOWN(worker_crash).
                    raise faults.FaultInjected(
                        "injected worker crash at parallel.task"
                    )
                os._exit(faults.EXIT_CODE)
            time.sleep(rule.sleep_s)
    if task.portfolio:
        return task.position, _race_portfolio(task)
    session = _session_for(task, task.specs[0])
    return task.position, session.verdict(timeout_s=task.timeout_s)


def _duplicate_result(
    source: VerificationResult, trace: ExecutionTrace
) -> VerificationResult:
    """Re-express a representative's result on a fingerprint-equal trace."""
    witness = None
    if source.witness is not None and source.trace is not None:
        witness = _decode_witness(trace, _encode_witness(source.trace, source.witness))
    return VerificationResult(
        verdict=source.verdict,
        witness=witness,
        solve_seconds=0.0,
        trace=trace,
        backend=source.backend,
        from_cache=True,
        unknown_reason=source.unknown_reason,
    )


class ParallelVerifier:
    """Verify batches by sharding distinct questions over worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  ``1``
        solves in-process (still with dedup and caching).
    backend:
        Registry name or :class:`BackendSpec` — **not** a live backend;
        workers must construct their own solver state.
    portfolio:
        ``True`` (or ``"backends"``) races ``backends`` (default: dpllt vs
        smtlib) per trace and keeps the first conclusive verdict;
        ``"theory"`` races the dpllt engine's ``online`` and ``offline``
        theory modes instead (:func:`theory_portfolio`).  The winning
        contender is named on ``VerificationResult.backend`` (e.g.
        ``dpllt[online]``) and its mode on the result's solver statistics.
    backends:
        The portfolio contenders when ``portfolio`` is set (overrides both
        default lineups).
    cache:
        ``None`` (no cross-batch cache), a :class:`ResultCache`, or
        ``"memory"`` for a fresh in-memory LRU owned by this verifier.
        In-batch fingerprint dedup happens regardless.
    cache_dir:
        Convenience: a directory for a disk-backed :class:`ResultCache`
        (ignored when ``cache`` is an explicit instance).
    mode:
        The question asked of every trace: ``"safety"`` (default),
        ``"deadlock"`` or ``"orphan"`` — resolved into encoder options and
        a property set up front (see
        :func:`repro.verification.session.resolve_mode`), and embedded in
        the cache key so answers from different modes never collide.  In
        deadlock mode, programs whose recording run blocks are normalised
        via their static symbolic trace.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        backend: Union[str, BackendSpec, None] = None,
        options: Optional[EncoderOptions] = None,
        properties: Optional[Sequence[Property]] = None,
        portfolio: Union[bool, str] = False,
        backends: Optional[Sequence[BackendSpec]] = None,
        cache: Union[ResultCache, str, None] = None,
        cache_dir: Optional[str] = None,
        seed: int = 0,
        max_solver_iterations: int = 200_000,
        mode: str = "safety",
        timeout_s: Optional[float] = None,
    ) -> None:
        self.jobs = os.cpu_count() or 1 if jobs is None else jobs
        if self.jobs < 1:
            raise SolverError(f"jobs must be >= 1, got {self.jobs}")
        self.mode = mode
        options, properties = resolve_mode(mode, options, properties)
        self.options = options
        self.properties = properties
        if portfolio not in (False, True, "backends", "theory"):
            raise SolverError(
                f"unknown portfolio {portfolio!r}; use True/'backends' or 'theory'"
            )
        self.portfolio = portfolio
        self.seed = seed
        self.max_solver_iterations = max_solver_iterations
        #: Per-item wall-clock budget; past it a solve answers
        #: ``UNKNOWN(reason="timeout")`` (never cached) instead of hanging.
        self.timeout_s = timeout_s
        if portfolio:
            if backends is not None:
                lineup = backends
            elif portfolio == "theory":
                lineup = theory_portfolio(max_solver_iterations)
            else:
                lineup = default_portfolio(max_solver_iterations)
            self.specs: Tuple[BackendSpec, ...] = tuple(lineup)
            if not self.specs:
                raise SolverError("portfolio mode needs at least one backend")
        else:
            self.specs = (
                BackendSpec.of(backend, max_iterations=max_solver_iterations),
            )
        if isinstance(cache, str):
            if cache != "memory":
                raise SolverError(f"unknown cache spec {cache!r}; use 'memory'")
            cache = ResultCache()
        if cache is None and cache_dir is not None:
            cache = ResultCache(directory=cache_dir)
        self.cache = cache
        #: Cumulative crash-recovery counters across this verifier's
        #: batches: ``worker_crashes`` (waves that lost a worker),
        #: ``retried_tasks`` (tasks re-sharded into isolation),
        #: ``crash_unknowns`` (tasks answered UNKNOWN after crashing
        #: twice) and ``degraded_serial`` (pools that could not start).
        self.resilience: Dict[str, int] = {
            "worker_crashes": 0,
            "retried_tasks": 0,
            "crash_unknowns": 0,
            "degraded_serial": 0,
        }

    # ------------------------------------------------------------------ keys

    @property
    def backend_key(self) -> str:
        """The backend component of this verifier's cache keys."""
        if self.portfolio:
            return "portfolio(" + "|".join(_spec_label(s) for s in self.specs) + ")"
        return self.specs[0].name

    def _key_for(self, trace: ExecutionTrace) -> CacheKey:
        return make_cache_key(
            trace,
            properties=self.properties,
            options=self.options,
            backend=self.backend_key,
            mode=self.mode,
        )

    # ------------------------------------------------------------------ batch

    def _normalise(
        self, items: Iterable[Union[Program, ExecutionTrace]]
    ) -> List[Tuple[ExecutionTrace, Optional[ProgramRun]]]:
        normalised: List[Tuple[ExecutionTrace, Optional[ProgramRun]]] = []
        for item in items:
            if isinstance(item, Program):
                if self.mode == "deadlock":
                    run = run_program(item, seed=self.seed)
                    if run.deadlocked:
                        # No complete recording exists; the static symbolic
                        # trace covers branch-free programs exactly.
                        normalised.append((static_trace(item), None))
                    else:
                        normalised.append((run.trace, run))
                    continue
                run = _recording_run(item, self.seed, None, None)
                normalised.append((run.trace, run))
            elif isinstance(item, ExecutionTrace):
                normalised.append((item, None))
            else:
                raise EncodingError(
                    "verify_many_parallel accepts Programs or ExecutionTraces, "
                    f"got {item!r}"
                )
        return normalised

    def verify_many(
        self, items: Iterable[Union[Program, ExecutionTrace]]
    ) -> List[VerificationResult]:
        """Verify the batch; results come back in input order."""
        entries = self._normalise(items)
        results: List[Optional[VerificationResult]] = [None] * len(entries)
        pending: Dict[CacheKey, List[int]] = {}
        keys: List[Optional[CacheKey]] = []
        for index, (trace, run) in enumerate(entries):
            key = self._key_for(trace)
            keys.append(key)
            cached = self.cache.lookup(key, trace) if self.cache is not None else None
            if cached is not None:
                cached.program_run = run
                results[index] = cached
            else:
                pending.setdefault(key, []).append(index)

        tasks = [
            _SolveTask(
                position=indices[0],
                trace=entries[indices[0]][0],
                options=self.options,
                properties=self.properties,
                specs=self.specs,
                portfolio=self.portfolio,
                max_solver_iterations=self.max_solver_iterations,
                timeout_s=self.timeout_s,
            )
            for indices in pending.values()
        ]
        solved = self._run_tasks(tasks)

        for key, indices in pending.items():
            representative = solved[indices[0]]
            if self.cache is not None:
                self.cache.store(key, representative)
            for position, index in enumerate(indices):
                trace, run = entries[index]
                if position == 0:
                    result = representative
                    # Results solved in a worker come back pickled; point
                    # them at the caller's trace object, not the copy.
                    result.trace = trace
                else:
                    result = _duplicate_result(representative, trace)
                result.program_run = run
                results[index] = result
        return [result for result in results if result is not None]

    def _run_tasks(
        self, tasks: List[_SolveTask]
    ) -> Dict[int, VerificationResult]:
        if not tasks:
            return {}
        if self.jobs == 1 or len(tasks) == 1:
            return dict(self._solve_inline(task) for task in tasks)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        workers = min(self.jobs, len(tasks))
        solved: Dict[int, VerificationResult] = {}
        crashed = self._run_wave(tasks, workers, context, solved)
        if crashed:
            # A hard-dead worker fails *every* unfinished future in the
            # wave (BrokenProcessPool cannot say which task killed it), so
            # the affected tasks are re-sharded one at a time into
            # isolated single-worker pools: the innocent majority
            # completes, and only a genuinely poisonous task crashes
            # again — answered with an honest UNKNOWN, never retried
            # further and never a wrong verdict.
            self.resilience["worker_crashes"] += 1
            for task in crashed:
                self.resilience["retried_tasks"] += 1
                try:
                    with ProcessPoolExecutor(
                        max_workers=1, mp_context=context
                    ) as isolated:
                        position, result = isolated.submit(
                            _solve_task, task
                        ).result()
                    solved[position] = result
                except (BrokenProcessPool, OSError):
                    self.resilience["crash_unknowns"] += 1
                    solved[task.position] = VerificationResult(
                        verdict=Verdict.UNKNOWN,
                        unknown_reason="worker_crash",
                        trace=task.trace,
                    )
        return solved

    def _run_wave(
        self,
        tasks: List[_SolveTask],
        workers: int,
        context,
        solved: Dict[int, VerificationResult],
    ) -> List[_SolveTask]:
        """One shared-pool pass over ``tasks``; returns the crashed ones.

        If the pool cannot even start (fork failure, resource limits) the
        whole batch degrades to serial in-process execution instead.
        """
        try:
            executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except OSError:  # pragma: no cover - resource exhaustion
            self.resilience["degraded_serial"] += 1
            for task in tasks:
                position, result = self._solve_inline(task)
                solved[position] = result
            return []
        crashed: List[_SolveTask] = []
        try:
            futures = [(executor.submit(_solve_task, task), task) for task in tasks]
            for future, task in futures:
                try:
                    position, result = future.result()
                    solved[position] = result
                except (BrokenProcessPool, OSError):
                    crashed.append(task)
        finally:
            executor.shutdown(wait=True)
        return crashed

    def _solve_inline(self, task: _SolveTask) -> Tuple[int, VerificationResult]:
        """Solve in this process; injected crashes become honest UNKNOWNs."""
        try:
            return _solve_task(task)
        except faults.FaultInjected:
            self.resilience["crash_unknowns"] += 1
            return task.position, VerificationResult(
                verdict=Verdict.UNKNOWN,
                unknown_reason="worker_crash",
                trace=task.trace,
            )


def verify_many_parallel(
    items: Iterable[Union[Program, ExecutionTrace]],
    jobs: Optional[int] = None,
    **kwargs,
) -> List[VerificationResult]:
    """One-shot front door over :class:`ParallelVerifier`.

    ``verify_many_parallel(batch, jobs=4)`` shards the batch's distinct
    questions over four worker processes; every other keyword is forwarded
    to :class:`ParallelVerifier`.
    """
    return ParallelVerifier(jobs=jobs, **kwargs).verify_many(items)
