"""Verification front-end: sessions, the symbolic verifier shim, replay, CLI.

The primary entry point is :class:`VerificationSession` (encode once, query
many times against one incremental solver backend) together with the batch
helper :func:`verify_many`; :class:`SymbolicVerifier` remains as a
backwards-compatible call-per-query facade.
"""

from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import VerificationSession, verify_many
from repro.verification.verifier import SymbolicVerifier
from repro.verification.replay import ReplayOutcome, replay_witness, witness_schedule

__all__ = [
    "VerificationSession",
    "verify_many",
    "SymbolicVerifier",
    "Verdict",
    "VerificationResult",
    "ReplayOutcome",
    "replay_witness",
    "witness_schedule",
]
