"""Verification front-end: sessions, the symbolic verifier shim, replay, CLI.

The primary entry point is :class:`VerificationSession` (encode once, query
many times against one incremental solver backend) together with the batch
helper :func:`verify_many`; :class:`SymbolicVerifier` remains as a
backwards-compatible call-per-query facade.  Batch traffic scales out
through :class:`ParallelVerifier` / :func:`verify_many_parallel` (process
sharding, fingerprint dedup, portfolio racing) with answers memoised in a
:class:`ResultCache`.
"""

from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import (
    VERIFICATION_MODES,
    VerificationSession,
    resolve_mode,
    verify_many,
)
from repro.verification.verifier import SymbolicVerifier
from repro.verification.replay import (
    ReplayOutcome,
    deadlock_witness_schedule,
    replay_deadlock_witness,
    replay_witness,
    witness_schedule,
)
from repro.verification.cache import (
    CACHE_SCHEMA_VERSION,
    CacheKey,
    ResultCache,
    make_cache_key,
)
from repro.verification.parallel import (
    ParallelVerifier,
    default_portfolio,
    verify_many_parallel,
)

__all__ = [
    "VERIFICATION_MODES",
    "VerificationSession",
    "resolve_mode",
    "verify_many",
    "verify_many_parallel",
    "ParallelVerifier",
    "default_portfolio",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "CacheKey",
    "make_cache_key",
    "SymbolicVerifier",
    "Verdict",
    "VerificationResult",
    "ReplayOutcome",
    "deadlock_witness_schedule",
    "replay_deadlock_witness",
    "replay_witness",
    "witness_schedule",
]
