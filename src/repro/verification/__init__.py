"""Verification front-end: the symbolic verifier, witness replay and the CLI."""

from repro.verification.verifier import SymbolicVerifier, Verdict, VerificationResult
from repro.verification.replay import ReplayOutcome, replay_witness, witness_schedule

__all__ = [
    "SymbolicVerifier",
    "Verdict",
    "VerificationResult",
    "ReplayOutcome",
    "replay_witness",
    "witness_schedule",
]
