"""Verification result caching keyed on trace fingerprints.

Batch traffic is full of repeats: the same workload recorded under different
seeds, the same trace verified twice, a nightly batch re-running yesterday's
corpus.  Because :func:`repro.trace.fingerprint.trace_fingerprint` is
invariant under global interleaving, all of those collapse onto one cache
key — ``(fingerprint, property-set, encoder options, backend, mode)`` — and
a :class:`ResultCache` answers them without touching a solver.

Two storage layers compose:

* an in-memory LRU (always on), bounded by ``maxsize`` entries;
* an optional on-disk JSON store (one file per key under ``directory``),
  which survives processes and is shared by concurrent workers — safe
  because entries are immutable once written, writes are atomic
  (``os.replace`` of a temp file), and every store-level mutation
  (entry write, index update, eviction, quarantine) happens under an
  advisory ``flock`` on ``<directory>/_lock``, so a daemon and any number
  of concurrent one-shot CLIs can share one store.

The disk layer can be size-bounded: ``max_entries`` / ``max_bytes`` cap the
store, with least-recently-used entries evicted first.  Recency lives in a
``_index.json`` sidecar (schema-stamped like the store itself); a missing
or torn index is rebuilt from a directory scan, never trusted blindly.
Unreadable entry files are moved into ``<directory>/_quarantine/`` and
counted, instead of raising mid-batch or being re-parsed forever.

**Semantics.** Only conclusive verdicts (``SAFE`` / ``VIOLATION``) are
cached; ``UNKNOWN`` is a resource exhaustion artefact and must stay
retryable with a bigger budget.  Cached hits reconstruct a
:class:`~repro.verification.result.VerificationResult` with
``from_cache=True``, ``problem=None`` (the encoding was never built) and a
witness whose matching has been translated into the *query* trace's
send/recv identifiers via the canonical ``(thread, thread_index)`` naming.

**Invalidation.** Keys embed everything that can change an answer: the
trace's semantic content (fingerprint), the property set, the encoder
options, the backend family and the verification mode (safety answers must
never collide with deadlock or orphan answers for the same trace).  There
is nothing to invalidate manually — a different question is a different
key.  Deleting the cache directory (or :meth:`ResultCache.clear`) simply
forces re-solving.

**Schema.** The key layout is versioned (:data:`CACHE_SCHEMA_VERSION`).  A
disk-backed cache stamps its directory with a ``_schema.json`` marker on
first use and *refuses* — with :class:`~repro.utils.errors.CacheSchemaError`
at construction, never a crash mid-lookup — to open a store written under a
different layout; individual entry files also carry the version and
mismatches load as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

try:  # POSIX advisory locking; the cache degrades to lockless elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import faults
from repro.encoding.encoder import EncoderOptions
from repro.encoding.properties import Property
from repro.encoding.witness import Witness
from repro.trace.fingerprint import trace_fingerprint
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import CacheSchemaError
from repro.verification.result import Verdict, VerificationResult

__all__ = ["CACHE_SCHEMA_VERSION", "CacheKey", "ResultCache", "make_cache_key"]

#: Version of the cache key layout + entry format.  Bump whenever the key
#: composition changes (as the deadlock mode did when it joined the key):
#: stores written under another version are refused, not misread.
CACHE_SCHEMA_VERSION = 2

#: Canonical (thread, thread_index) naming of one operation.
_OpKey = Tuple[str, int]


@dataclass(frozen=True)
class CacheKey:
    """Everything that determines a verification answer."""

    fingerprint: str
    properties: str
    options: str
    backend: str
    mode: str = "safety"

    def digest(self) -> str:
        """A filesystem-safe digest naming this key on disk."""
        joined = "\x1f".join(
            (self.fingerprint, self.properties, self.options, self.backend, self.mode)
        )
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _options_signature(options: Optional[EncoderOptions]) -> str:
    options = options if options is not None else EncoderOptions()
    parts = []
    for field in fields(options):
        value = getattr(options, field.name)
        value = value.value if hasattr(value, "value") else value
        parts.append(f"{field.name}={value}")
    return ";".join(parts)


def _properties_signature(
    trace: ExecutionTrace, properties: Optional[Sequence[Property]]
) -> str:
    """Identify the property set.

    The default (``None`` — the trace's own assertions) is fully captured
    by the fingerprint itself, so it gets a fixed tag, and *trace-global*
    properties (``Property.cache_signature`` set — deadlock freedom, orphan
    freedom) likewise contribute fixed tags so fingerprint-equal traces
    recorded under different interleavings share their entries.  All other
    explicit properties are rendered against *this* trace's identifiers:
    that is deliberately conservative — properties referencing trace-local
    recv/send ids are not portable between traces, even fingerprint-equal
    ones, so such entries only ever hit on the identical numbering.
    """
    if properties is None:
        return "trace-assertions"
    tagged: List[str] = []
    rendered: List[str] = []
    for prop in properties:
        tag = getattr(prop, "cache_signature", None)
        if tag is not None:
            tagged.append(f"{type(prop).__name__}:{tag}")
        else:
            rendered.append(f"{type(prop).__name__}:{prop.term(trace)}")
    if not rendered:
        return "|".join(sorted(tagged))
    # Two fingerprint-equal traces can bind the same recv/send id to
    # *different* logical operations (ids are assigned in interleaving
    # order), so a term like "recv_val_1 == 1" renders identically while
    # meaning different things.  Fold the id -> (thread, thread_index)
    # binding into the signature so such traces never share an entry.
    bindings = sorted(
        f"r{op.recv_id}@{trace[op.issue_event_id].thread}:"
        f"{trace[op.issue_event_id].thread_index}"
        for op in trace.receive_operations()
    ) + sorted(
        f"s{event.send_id}@{event.thread}:{event.thread_index}"
        for event in trace.sends()
    )
    payload = (
        "\n".join(sorted(tagged) + sorted(rendered)) + "\x1f" + ";".join(bindings)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_cache_key(
    trace: ExecutionTrace,
    properties: Optional[Sequence[Property]] = None,
    options: Optional[EncoderOptions] = None,
    backend: str = "dpllt",
    mode: str = "safety",
) -> CacheKey:
    """Build the cache key for one verification question.

    ``mode`` is carried explicitly even though a mode also reshapes
    ``properties``/``options`` (see
    :func:`repro.verification.session.resolve_mode`): belt-and-braces
    against any future property whose rendering coincides across modes —
    safety-mode and deadlock-mode answers must never share an entry.
    """
    return CacheKey(
        fingerprint=trace_fingerprint(trace),
        properties=_properties_signature(trace, properties),
        options=_options_signature(options),
        backend=backend,
        mode=mode,
    )


# ---------------------------------------------------------------------------
# Canonical matching translation
# ---------------------------------------------------------------------------


def _operation_keys(
    trace: ExecutionTrace,
) -> Tuple[Dict[int, _OpKey], Dict[int, _OpKey]]:
    """Map this trace's recv/send ids to canonical (thread, index) keys."""
    recv_keys: Dict[int, _OpKey] = {}
    for op in trace.receive_operations():
        issue = trace[op.issue_event_id]
        recv_keys[op.recv_id] = (issue.thread, issue.thread_index)
    send_keys: Dict[int, _OpKey] = {
        event.send_id: (event.thread, event.thread_index) for event in trace.sends()
    }
    return recv_keys, send_keys


def _encode_witness(trace: ExecutionTrace, witness: Witness) -> Dict[str, object]:
    recv_keys, send_keys = _operation_keys(trace)
    matching = [
        [list(recv_keys[recv_id]), list(send_keys[send_id])]
        for recv_id, send_id in sorted(witness.matching.items())
    ]
    values = [
        [list(recv_keys[recv_id]), value]
        for recv_id, value in sorted(witness.receive_values.items())
        if recv_id in recv_keys
    ]
    unmatched = [
        list(recv_keys[recv_id]) for recv_id in sorted(witness.unmatched_receives)
    ]
    orphans = [list(send_keys[send_id]) for send_id in sorted(witness.orphan_sends)]
    return {
        "matching": matching,
        "receive_values": values,
        "unmatched_receives": unmatched,
        "orphan_sends": orphans,
    }


def _decode_witness(trace: ExecutionTrace, payload: Dict[str, object]) -> Witness:
    recv_keys, send_keys = _operation_keys(trace)
    recv_by_key = {key: recv_id for recv_id, key in recv_keys.items()}
    send_by_key = {key: send_id for send_id, key in send_keys.items()}
    matching = {
        recv_by_key[tuple(recv)]: send_by_key[tuple(send)]
        for recv, send in payload.get("matching", [])
    }
    values = {
        recv_by_key[tuple(recv)]: value
        for recv, value in payload.get("receive_values", [])
    }
    unmatched = [
        recv_by_key[tuple(recv)] for recv in payload.get("unmatched_receives", [])
    ]
    orphans = [send_by_key[tuple(send)] for send in payload.get("orphan_sends", [])]
    return Witness(
        matching=matching,
        receive_values=values,
        unmatched_receives=unmatched,
        orphan_sends=orphans,
    )


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------


class _StoreLock:
    """Advisory inter-process lock over one on-disk store.

    Backed by ``flock`` on ``<directory>/_lock``; reentrant use is not
    needed (lock scopes never nest).  On platforms without ``fcntl`` the
    lock degrades to a no-op — single-process behaviour is unchanged.
    """

    def __init__(self, directory: str) -> None:
        self._path = os.path.join(directory, "_lock")
        self._handle = None

    def __enter__(self) -> "_StoreLock":
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return self
        self._handle = open(self._path, "a+b")
        fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._handle.close()
                self._handle = None


class ResultCache:
    """In-memory LRU of verification answers, optionally backed by disk.

    ``max_entries`` / ``max_bytes`` bound the *disk* layer (``None`` means
    unbounded, the historical behaviour); least-recently-used entries are
    evicted first, with recency tracked in ``_index.json``.  All disk
    mutations take the store's advisory file lock, so one directory can be
    shared by a daemon and concurrent one-shot processes.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        directory: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("ResultCache needs maxsize >= 1")
        if max_entries is not None and max_entries < 1:
            raise ValueError("ResultCache needs max_entries >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("ResultCache needs max_bytes >= 1")
        self.maxsize = maxsize
        self.directory = directory
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[CacheKey, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0
        self.store_failures = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._check_store_schema()

    # -- locking -----------------------------------------------------------------

    def _store_lock(self):
        """The store's advisory file lock (a no-op for memory-only caches)."""
        if self.directory is None:
            return nullcontext()
        return _StoreLock(self.directory)

    # -- schema ------------------------------------------------------------------

    def _schema_marker_path(self) -> str:
        return os.path.join(self.directory, "_schema.json")

    def _check_store_schema(self) -> None:
        """Stamp a fresh store / refuse one written under another layout."""
        with self._store_lock():
            self._check_store_schema_locked()

    def _check_store_schema_locked(self) -> None:
        path = self._schema_marker_path()
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    recorded = json.load(handle).get("schema")
            except (OSError, ValueError):
                recorded = None
            if recorded != CACHE_SCHEMA_VERSION:
                raise CacheSchemaError(
                    f"result store {self.directory!r} was written with cache "
                    f"schema {recorded!r}, but this build uses schema "
                    f"{CACHE_SCHEMA_VERSION} (the key layout changed); point "
                    "the cache at a fresh directory or delete the old store"
                )
            return
        marker = {
            "schema": CACHE_SCHEMA_VERSION,
            "key_fields": [f.name for f in fields(CacheKey)],
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(marker, handle)
            os.replace(handle.name, path)
        except OSError:  # pragma: no cover - marker write is best effort
            try:
                os.unlink(handle.name)
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._entries)

    def statistics(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._entries),
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "store_failures": self.store_failures,
        }

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left in place)."""
        self._entries.clear()

    # -- storage -----------------------------------------------------------------

    def _disk_path(self, key: CacheKey) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key.digest() + ".json")

    def _load_from_disk(self, key: CacheKey) -> Optional[Dict[str, object]]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            return None  # racing writer/evictor: a miss, never an error
        except ValueError:
            # A torn or corrupt file would be re-parsed (and re-fail) on
            # every lookup: move it aside once and count it.
            self._quarantine(key, path)
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            # An entry copied in from an older store (pre-marker caches had
            # no version stamp at all): never misread it, treat as a miss.
            return None
        if self._bounded():
            with self._store_lock():
                self._touch_index_locked(key.digest())
        return entry

    def _write_to_disk(self, key: CacheKey, entry: Dict[str, object]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        if faults.ACTIVE is not None:
            faults.fire("cache.write.entry", crash=OSError)
        data = json.dumps(entry)
        with self._store_lock():
            handle = tempfile.NamedTemporaryFile(
                "w", dir=self.directory, suffix=".tmp", delete=False, encoding="utf-8"
            )
            try:
                with handle:
                    handle.write(data)
                os.replace(handle.name, path)
            except OSError:  # pragma: no cover - disk store is best effort
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                return
            if faults.ACTIVE is not None and faults.draw("cache.write.index"):
                # Simulated crash *between* the entry write and the index
                # update — the exact torn state the scan-rebuild path exists
                # to recover from.
                return
            if self._bounded():
                self._touch_index_locked(key.digest(), size=len(data))

    # -- disk bounds & hygiene ---------------------------------------------------

    def _bounded(self) -> bool:
        return self.directory is not None and (
            self.max_entries is not None or self.max_bytes is not None
        )

    def _index_path(self) -> str:
        return os.path.join(self.directory, "_index.json")

    def _load_index_locked(self) -> Dict[str, object]:
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                index = json.load(handle)
            if (
                isinstance(index, dict)
                and index.get("schema") == CACHE_SCHEMA_VERSION
                and isinstance(index.get("entries"), dict)
            ):
                return index
        except (OSError, ValueError):
            pass
        return self._rebuild_index_locked()

    def _rebuild_index_locked(self) -> Dict[str, object]:
        """Reconstruct recency from a directory scan (mtime order)."""
        rows: List[Tuple[float, str, int]] = []
        for name in os.listdir(self.directory):
            if name.startswith("_") or not name.endswith(".json"):
                continue
            try:
                stat = os.stat(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - racing deletion
                continue
            rows.append((stat.st_mtime, name[:-5], stat.st_size))
        entries: Dict[str, List[int]] = {}
        clock = 0
        for _, digest, size in sorted(rows):
            clock += 1
            entries[digest] = [int(size), clock]
        return {"schema": CACHE_SCHEMA_VERSION, "clock": clock, "entries": entries}

    def _save_index_locked(self, index: Dict[str, object]) -> None:
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(index, handle)
            os.replace(handle.name, self._index_path())
        except OSError:  # pragma: no cover - index write is best effort
            try:
                os.unlink(handle.name)
            except OSError:
                pass

    def _touch_index_locked(self, digest: str, size: Optional[int] = None) -> None:
        """Stamp ``digest`` most-recently-used, then evict past the bounds."""
        index = self._load_index_locked()
        entries: Dict[str, List[int]] = index["entries"]  # type: ignore[assignment]
        if size is None:
            known = entries.get(digest)
            if known is not None:
                size = known[0]
            else:
                try:
                    size = os.path.getsize(
                        os.path.join(self.directory, digest + ".json")
                    )
                except OSError:  # entry vanished: nothing to track
                    entries.pop(digest, None)
                    self._save_index_locked(index)
                    return
        index["clock"] = int(index.get("clock", 0)) + 1
        entries[digest] = [int(size), index["clock"]]
        self._evict_locked(entries)
        self._save_index_locked(index)

    def _evict_locked(self, entries: Dict[str, List[int]]) -> None:
        total = sum(size for size, _ in entries.values())
        while entries:
            over_entries = (
                self.max_entries is not None and len(entries) > self.max_entries
            )
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            victim = min(entries, key=lambda d: entries[d][1])
            total -= entries.pop(victim)[0]
            try:
                os.unlink(os.path.join(self.directory, victim + ".json"))
            except OSError:  # pragma: no cover - already gone
                pass
            self.evictions += 1

    def _quarantine(self, key: CacheKey, path: str) -> None:
        quarantine_dir = os.path.join(self.directory, "_quarantine")
        with self._store_lock():
            try:
                os.makedirs(quarantine_dir, exist_ok=True)
                os.replace(
                    path, os.path.join(quarantine_dir, os.path.basename(path))
                )
            except OSError:  # pragma: no cover - last resort: drop it
                try:
                    os.unlink(path)
                except OSError:
                    pass
            if self._bounded():
                index = self._load_index_locked()
                if index["entries"].pop(key.digest(), None) is not None:
                    self._save_index_locked(index)
        self.quarantined += 1

    def _remember(self, key: CacheKey, entry: Dict[str, object]) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # -- public API --------------------------------------------------------------

    def lookup(
        self, key: CacheKey, trace: ExecutionTrace
    ) -> Optional[VerificationResult]:
        """Return a cached answer translated onto ``trace``, or ``None``.

        ``trace`` must be a trace whose key equals ``key`` — the witness
        matching is re-expressed in that trace's recv/send identifiers.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        else:
            entry = self._load_from_disk(key)
            if entry is not None:
                self._remember(key, entry)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        witness = None
        if entry.get("witness") is not None:
            witness = _decode_witness(trace, entry["witness"])
        return VerificationResult(
            verdict=Verdict(entry["verdict"]),
            witness=witness,
            solve_seconds=float(entry.get("solve_seconds", 0.0)),
            trace=trace,
            backend=entry.get("backend"),
            from_cache=True,
        )

    def store(self, key: CacheKey, result: VerificationResult) -> bool:
        """Record a freshly computed result; returns True if cached.

        UNKNOWN verdicts and results already served from cache are skipped.
        """
        if result.from_cache or result.verdict is Verdict.UNKNOWN:
            return False
        if result.trace is None:
            return False
        entry: Dict[str, object] = {
            "schema": CACHE_SCHEMA_VERSION,
            "verdict": result.verdict.value,
            "backend": result.backend,
            "solve_seconds": result.solve_seconds,
            "witness": (
                _encode_witness(result.trace, result.witness)
                if result.witness is not None
                else None
            ),
        }
        self._remember(key, entry)
        try:
            self._write_to_disk(key, entry)
        except OSError:
            # The disk layer is best effort: a failed persist must never
            # fail the verification request that produced the result.
            self.store_failures += 1
        self.stores += 1
        return True
