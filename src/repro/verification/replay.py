"""Replaying SMT witnesses on the simulator.

A decoded :class:`repro.encoding.witness.Witness` claims that a particular
interleaving and send/receive matching leads to a property violation.  For
traces whose receives are all *blocking*, the claim can be validated
end-to-end: the witness is turned into a concrete scheduler script (run this
thread / deliver that message) and the program is re-executed under a
:class:`repro.mcapi.scheduler.ReplayStrategy`.  The replayed run must observe
exactly the receive values the witness predicted — this is how the test
suite demonstrates that satisfying assignments are real executions, not
artefacts of the encoding.

Traces containing non-blocking receives are rejected: the MCAPI runtime
binds deliveries to outstanding ``recv_i`` requests in posting order, so not
every matching the (paper-faithful) encoding admits can be steered by
delivery order alone.  See DESIGN.md ("witness replay") for the discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.encoding.encoder import EncodedProblem
from repro.encoding.witness import Witness
from repro.mcapi.scheduler import Action, ReplayStrategy
from repro.program.ast import Program
from repro.program.interpreter import ProgramRun, ProgramRunner
from repro.trace.events import (
    AssertEvent,
    AssignEvent,
    BranchEvent,
    LocalEvent,
    ReceiveEvent,
    ReceiveInitEvent,
    SendEvent,
    WaitEvent,
)
from repro.utils.errors import EncodingError

__all__ = [
    "ReplayOutcome",
    "witness_schedule",
    "replay_witness",
    "deadlock_witness_schedule",
    "replay_deadlock_witness",
]


@dataclass
class ReplayOutcome:
    """Result of replaying a witness on the concrete simulator.

    Receive operations are identified by ``(thread, thread_index)`` — their
    position in the program — because trace-local receive ids are assigned in
    execution order and therefore differ between the recording run and the
    replayed interleaving.
    """

    run: ProgramRun
    observed_values: Dict[Tuple[str, int], int]
    expected_values: Dict[Tuple[str, int], int]

    @property
    def values_match(self) -> bool:
        return all(
            self.observed_values.get(key) == expected
            for key, expected in self.expected_values.items()
        )

    @property
    def reproduced_violation(self) -> bool:
        """True if the replay run actually tripped a program assertion."""
        return bool(self.run.assertion_failures)


def witness_schedule(problem: EncodedProblem, witness: Witness) -> List[Action]:
    """Convert a witness into a scheduler action script.

    Thread events become ``run(thread)`` actions in witness-clock order; each
    receive's matched message is delivered immediately before the receive
    runs, so the receive pops exactly that message.
    """
    trace = problem.trace
    if any(not op.blocking for op in trace.receive_operations()):
        raise EncodingError(
            "witness replay supports blocking receives only (see DESIGN.md)"
        )

    # The replay run assigns message ids in *its own* submission order, i.e.
    # the order send events appear in the witness interleaving.  Build the
    # witness-send-id -> replay-message-id mapping accordingly.
    send_message_ids: Dict[int, int] = {}
    next_message_id = 0
    for event_id in witness.event_order:
        event = trace[event_id]
        if isinstance(event, SendEvent):
            send_message_ids[event.send_id] = next_message_id
            next_message_id += 1

    actions: List[Action] = []
    for event_id in witness.event_order:
        event = trace[event_id]
        if isinstance(event, ReceiveEvent):
            matched_send = witness.matching.get(event.recv_id)
            if matched_send is None:
                raise EncodingError(f"witness has no match for receive {event.recv_id}")
            if matched_send not in send_message_ids:
                raise EncodingError(
                    f"send {matched_send} does not appear in the witness order"
                )
            actions.append(
                Action(kind="deliver", message_id=send_message_ids[matched_send])
            )
            actions.append(Action(kind="run", task_name=event.thread))
        else:
            actions.append(Action(kind="run", task_name=event.thread))
    return actions


def deadlock_witness_schedule(
    problem: EncodedProblem, witness: Witness
) -> List[Action]:
    """Convert a deadlock witness (partial execution) into an action script.

    Only the *executed* prefix of each thread is scheduled: a thread stops
    just before the completion point of its first unmatched receive.
    Matched messages are delivered immediately before their receives (as in
    :func:`witness_schedule`); executed sends nobody consumed are delivered
    at the end, so that when the script runs out the network is drained and
    the only possible scheduler outcome is the claimed deadlock.
    """
    trace = problem.trace
    if any(not op.blocking for op in trace.receive_operations()):
        raise EncodingError(
            "witness replay supports blocking receives only (see DESIGN.md)"
        )
    unmatched = set(witness.unmatched_receives)
    if not unmatched:
        raise EncodingError("not a deadlock witness: every receive is matched")

    # Per-thread cutoff: the first unmatched receive's completion position.
    cutoff: Dict[str, int] = {}
    for op in trace.receive_operations():
        if op.recv_id in unmatched:
            position = trace[op.completion_event_id].thread_index
            cutoff[op.thread] = min(cutoff.get(op.thread, position), position)

    def executed(event) -> bool:
        return event.thread_index < cutoff.get(event.thread, float("inf"))

    # Replay message ids are assigned in submission order, i.e. the order
    # executed send events appear in the witness interleaving.
    send_message_ids: Dict[int, int] = {}
    next_message_id = 0
    for event_id in witness.event_order:
        event = trace[event_id]
        if isinstance(event, SendEvent) and executed(event):
            send_message_ids[event.send_id] = next_message_id
            next_message_id += 1

    actions: List[Action] = []
    for event_id in witness.event_order:
        event = trace[event_id]
        if not executed(event):
            continue
        if isinstance(event, ReceiveEvent):
            matched_send = witness.matching.get(event.recv_id)
            if matched_send is None:
                raise EncodingError(
                    f"witness has no match for executed receive {event.recv_id}"
                )
            if matched_send not in send_message_ids:
                raise EncodingError(
                    f"send {matched_send} matched by receive {event.recv_id} "
                    "is not executed in the witness"
                )
            actions.append(
                Action(kind="deliver", message_id=send_message_ids[matched_send])
            )
        actions.append(Action(kind="run", task_name=event.thread))

    # Drain the network: deliver every executed-but-unconsumed message so
    # the post-script state has no enabled actions left.
    consumed = set(witness.matching.values())
    for send_id in sorted(
        send_id for send_id in send_message_ids if send_id not in consumed
    ):
        actions.append(Action(kind="deliver", message_id=send_message_ids[send_id]))
    return actions


def replay_deadlock_witness(
    program: Program, problem: EncodedProblem, witness: Witness
) -> ProgramRun:
    """Re-execute ``program`` along a deadlock witness; the run must block.

    Returns the replayed :class:`ProgramRun`; callers assert
    ``run.deadlocked`` (the differential harness does) — if the run
    completes instead, the witness was an encoding artefact.
    """
    schedule = deadlock_witness_schedule(problem, witness)
    runner = ProgramRunner(
        program,
        strategy=ReplayStrategy(schedule),
        trace_name=f"{problem.trace.name}-deadlock-replay",
    )
    return runner.run()


def replay_witness(
    program: Program, problem: EncodedProblem, witness: Witness
) -> ReplayOutcome:
    """Re-execute ``program`` following ``witness`` and compare observations."""
    schedule = witness_schedule(problem, witness)
    runner = ProgramRunner(
        program,
        strategy=ReplayStrategy(schedule),
        trace_name=f"{problem.trace.name}-replay",
    )
    run = runner.run()

    observed: Dict[Tuple[str, int], int] = {}
    for event in run.trace.receive_events():
        observed[(event.thread, event.thread_index)] = int(event.observed_value)
    expected: Dict[Tuple[str, int], int] = {}
    for op in problem.trace.receive_operations():
        issue = problem.trace[op.issue_event_id]
        expected[(issue.thread, issue.thread_index)] = witness.receive_values[op.recv_id]
    return ReplayOutcome(run=run, observed_values=observed, expected_values=expected)
