"""Verification verdicts and results.

Shared by the session API (:mod:`repro.verification.session`) and the
backwards-compatible :class:`repro.verification.verifier.SymbolicVerifier`
facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.encoding.encoder import EncodedProblem
from repro.encoding.witness import Witness
from repro.program.interpreter import ProgramRun
from repro.trace.trace import ExecutionTrace

__all__ = ["Verdict", "VerificationResult"]


class Verdict(Enum):
    """Outcome of a verification query."""

    #: No execution consistent with the trace's branch outcomes violates the
    #: properties.
    SAFE = "safe"
    #: Some execution violates a property; a witness is attached.
    VIOLATION = "violation"
    #: The solver gave up (iteration limit); no conclusion.
    UNKNOWN = "unknown"


@dataclass
class VerificationResult:
    """The verdict plus everything needed to understand and reproduce it.

    ``problem`` is ``None`` exactly when the result was answered from a
    :class:`~repro.verification.cache.ResultCache` (``from_cache=True``):
    a cache hit never builds an encoding, so there is none to attach.
    """

    verdict: Verdict
    problem: Optional[EncodedProblem] = None
    witness: Optional[Witness] = None
    solver_statistics: Dict[str, int] = field(default_factory=dict)
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    trace: Optional[ExecutionTrace] = None
    program_run: Optional[ProgramRun] = None
    backend: Optional[str] = None
    from_cache: bool = False
    #: Why the verdict is UNKNOWN, when it is: ``"timeout"`` for a missed
    #: wall-clock deadline, ``"iteration-limit"`` is left implicit (``None``).
    unknown_reason: Optional[str] = None

    @property
    def timed_out(self) -> bool:
        return self.verdict is Verdict.UNKNOWN and self.unknown_reason == "timeout"

    @property
    def is_violation(self) -> bool:
        return self.verdict is Verdict.VIOLATION

    @property
    def is_safe(self) -> bool:
        return self.verdict is Verdict.SAFE

    def describe(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        if self.unknown_reason is not None:
            lines.append(f"unknown reason: {self.unknown_reason}")
        if self.from_cache:
            lines.append("answered from cache (no encoding built)")
        if self.problem is not None:
            lines.append(f"problem size: {self.problem.size_summary()}")
            lines.append(
                f"encode time: {self.encode_seconds * 1000:.1f} ms, "
                f"solve time: {self.solve_seconds * 1000:.1f} ms"
            )
        if self.backend is not None:
            lines.append(f"backend: {self.backend}")
        if self.witness is not None:
            if self.problem is not None:
                lines.append(self.witness.describe(self.problem))
            elif self.witness.matching:
                pairs = ", ".join(
                    f"recv#{recv_id}<-send#{send_id}"
                    for recv_id, send_id in sorted(self.witness.matching.items())
                )
                lines.append(f"witness matching: {pairs}")
        return "\n".join(lines)
