"""Command-line interface: ``mcapi-verify``.

Runs one of the bundled workloads, records a trace, opens a
:class:`~repro.verification.session.VerificationSession` and reports the
verdict together with a counterexample (when one exists)::

    mcapi-verify --workload figure1 --property a-is-y
    mcapi-verify --workload racy_fanin --senders 3 --seed 2 --show-smt
    mcapi-verify --list-workloads
    mcapi-verify --workload figure1 --backend smtlib   # external solver
    mcapi-verify --workload circular_wait --check-deadlock
    mcapi-verify --workload racy_fanin --stats          # solver statistics
    mcapi-verify --workload figure1 --theory-mode offline  # reference loop

``--check-deadlock`` switches the question from the safety properties to
symbolic deadlock detection (the partial-match encoding): exit code 1 then
means *a reachable deadlock exists*, and the counterexample names the stuck
endpoints and unmatched sends.  Workloads that deadlock during the
recording run are analysed via their static symbolic trace.

Batch mode — ``--repeat`` records the workload several times (consecutive
seeds) and verifies the whole batch through
:func:`~repro.verification.parallel.verify_many_parallel`: ``--jobs`` shards
the distinct traces over worker processes, ``--portfolio`` races the dpllt
and smtlib backends per trace, and ``--cache-dir`` memoises verdicts on disk
keyed by trace fingerprint::

    mcapi-verify --workload racy_fanin --repeat 8 --jobs 4
    mcapi-verify --workload figure1 --repeat 4 --portfolio --cache-dir .mcapi-cache

``--timeout SECONDS`` bounds each solver check; a query that exceeds its
budget reports ``unknown`` (reason: timeout) instead of running forever.

Service mode — ``serve`` runs the long-lived daemon
(:mod:`repro.service`), and ``--server ADDR`` offloads a query to one::

    mcapi-verify serve --port 9177 --jobs 4 --cache-dir /tmp/mcapi-cache
    mcapi-verify --server 127.0.0.1:9177 --workload racy_fanin --repeat 8
    mcapi-verify shutdown --server 127.0.0.1:9177

Workloads live in a declarative registry; adding one is a
:func:`register_workload` call, not another ``elif``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.encoding.encoder import EncoderOptions, MatchPairStrategy
from repro.program.ast import Program
from repro.smt.backend import available_backends
from repro.smt.dpllt import THEORY_MODES
from repro.utils.errors import BackendUnavailableError, ServiceError, SolverError
from repro.verification.result import Verdict
from repro.verification.session import VerificationSession, resolve_mode
from repro.workloads import (
    branching_consumer,
    circular_wait,
    client_server,
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    scatter_gather,
    starved_fanin,
    token_ring,
)

__all__ = ["main", "build_parser", "register_workload", "WORKLOADS"]


@dataclass(frozen=True)
class Workload:
    """A named, self-describing workload factory for the CLI."""

    name: str
    build: Callable[[argparse.Namespace], Program]
    description: str


#: The workload registry, keyed by ``--workload`` name.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(name: str, description: str):
    """Register a CLI workload; the decorated function maps args -> Program."""

    def decorate(build: Callable[[argparse.Namespace], Program]):
        WORKLOADS[name] = Workload(name=name, build=build, description=description)
        return build

    return decorate


@register_workload("figure1", "the paper's Figure 1 program (see --property)")
def _figure1(args: argparse.Namespace) -> Program:
    return figure1_program(
        assert_a_is_y=(args.property in ("a-is-y", None)),
        assert_a_is_x=(args.property == "a-is-x"),
    )


@register_workload("racy_fanin", "N senders race to one receiver endpoint")
def _racy_fanin(args: argparse.Namespace) -> Program:
    return racy_fanin(args.senders, args.messages, assert_first_from_sender0=True)


@register_workload("nonblocking_fanin", "racy fan-in with non-blocking receives")
def _nonblocking_fanin(args: argparse.Namespace) -> Program:
    return nonblocking_fanin(args.senders)


@register_workload("pipeline", "a value threaded through N stages (safe)")
def _pipeline(args: argparse.Namespace) -> Program:
    return pipeline(max(args.senders, 2))


@register_workload("token_ring", "a token circulating around N threads (safe)")
def _token_ring(args: argparse.Namespace) -> Program:
    return token_ring(max(args.senders, 2))


@register_workload("scatter_gather", "master scatters to N workers, gathers replies")
def _scatter_gather(args: argparse.Namespace) -> Program:
    return scatter_gather(args.senders, assert_order=True)


@register_workload("client_server", "N clients against one server endpoint")
def _client_server(args: argparse.Namespace) -> Program:
    return client_server(args.senders)


@register_workload("branching_consumer", "consumer branching on received values")
def _branching_consumer(args: argparse.Namespace) -> Program:
    return branching_consumer()


@register_workload("circular_wait", "a receive-before-send ring (deadlocks)")
def _circular_wait(args: argparse.Namespace) -> Program:
    return circular_wait(max(args.senders, 2))


@register_workload("starved_fanin", "fan-in expecting one message too many")
def _starved_fanin(args: argparse.Namespace) -> Program:
    return starved_fanin(args.senders, extra_receives=1)


def _list_workloads() -> str:
    width = max(len(name) for name in WORKLOADS)
    lines = ["available workloads:"]
    for name in sorted(WORKLOADS):
        lines.append(f"  {name.ljust(width)}  {WORKLOADS[name].description}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mcapi-verify",
        description="Symbolically verify an MCAPI workload from a recorded trace.",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="verify",
        choices=["verify", "serve", "shutdown"],
        help="verify a workload (default), run the verification daemon, "
        "or stop a running daemon (with --server)",
    )
    parser.add_argument(
        "--workload",
        default="figure1",
        choices=sorted(WORKLOADS),
        help="which bundled workload to verify",
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="list the available workloads and exit",
    )
    parser.add_argument(
        "--backend",
        default="dpllt",
        choices=available_backends(),
        help="solver backend (smtlib needs REPRO_SMT_SOLVER to name a binary)",
    )
    parser.add_argument(
        "--theory-mode",
        default=None,
        choices=list(THEORY_MODES),
        help="dpllt only: online theory integration (default) or the "
        "classic offline lazy loop",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print solver statistics (theory propagations, partial-"
        "assignment conflicts, reduceDB rounds, avg explanation size, ...)",
    )
    parser.add_argument(
        "--no-reduce-db",
        action="store_true",
        help="dpllt only: disable learned-clause database reduction "
        "(keeps every learned clause forever)",
    )
    parser.add_argument(
        "--theory-bump",
        type=float,
        default=None,
        metavar="FACTOR",
        help="dpllt only: extra VSIDS activity factor for atoms named by "
        "theory conflicts/propagations (0 disables theory-aware branching)",
    )
    parser.add_argument(
        "--no-idl-propagation",
        action="store_true",
        help="dpllt only: disable difference-logic bound propagation "
        "(entailed bounds fall back to conflict round trips)",
    )
    parser.add_argument(
        "--dimacs",
        default=None,
        metavar="FILE",
        help="solve a DIMACS CNF file with the flat-memory SAT core instead "
        "of a workload; prints 's SATISFIABLE/UNSATISFIABLE' and a 'v' model "
        "line, exit code 10/20 (SAT convention)",
    )
    parser.add_argument(
        "--property",
        default=None,
        choices=[None, "a-is-y", "a-is-x"],
        help="figure1 only: which assertion to add to thread t0",
    )
    parser.add_argument("--senders", type=int, default=3, help="workload size parameter")
    parser.add_argument("--messages", type=int, default=1, help="messages per sender")
    parser.add_argument("--seed", type=int, default=0, help="seed of the recording run")
    parser.add_argument(
        "--match-pairs",
        default="endpoint",
        choices=["endpoint", "precise"],
        help="match-pair generation strategy",
    )
    parser.add_argument(
        "--pair-fifo",
        action="store_true",
        help="add the per-pair FIFO extension constraints",
    )
    parser.add_argument(
        "--show-smt", action="store_true", help="print the generated SMT-LIB script"
    )
    parser.add_argument(
        "--show-trace", action="store_true", help="print the recorded execution trace"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help="record and verify K traces (seeds seed..seed+K-1) as one batch",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the batch's distinct traces over N worker processes",
    )
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help="race the dpllt and smtlib backends per trace, first verdict wins",
    )
    parser.add_argument(
        "--portfolio-theory",
        action="store_true",
        help="race theory_mode=online vs offline dpllt engines per trace; "
        "the winner's mode is reported per result",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="memoise verdicts on disk, keyed by trace fingerprint",
    )
    parser.add_argument(
        "--check-deadlock",
        action="store_true",
        help="check for reachable deadlocks (partial-match encoding) "
        "instead of the safety properties",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query solver budget; an exceeded budget reports "
        "unknown (reason: timeout) instead of running forever",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="ADDR",
        help="offload the query to a running daemon at host:port "
        "(see `mcapi-verify serve`)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="serve only: interface to listen on",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve only: TCP port to listen on",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        metavar="N",
        help="serve only: warm verification sessions kept per worker",
    )
    return parser


def _solver_knob_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """The dpllt hot-path knobs actually set on the command line."""
    kwargs: Dict[str, object] = {}
    if args.no_reduce_db:
        kwargs["reduce_db"] = False
    if args.theory_bump is not None:
        kwargs["theory_bump"] = args.theory_bump
    if args.no_idl_propagation:
        kwargs["idl_propagation"] = False
    return kwargs


def _run_batch(args: argparse.Namespace, program: Program, options, mode: str) -> int:
    """Verify a ``--repeat``/``--jobs``/``--portfolio``/``--cache-dir`` batch."""
    from repro.program.interpreter import run_program
    from repro.program.statictrace import static_trace
    from repro.verification.parallel import verify_many_parallel

    if args.portfolio and args.portfolio_theory:
        print(
            "error: pick one of --portfolio and --portfolio-theory",
            file=sys.stderr,
        )
        return 2
    if args.theory_mode is not None and (args.portfolio or args.portfolio_theory):
        print(
            "error: --theory-mode cannot be combined with a portfolio "
            "(the portfolio races its own fixed backend lineup)",
            file=sys.stderr,
        )
        return 2
    for flag in ("show_trace", "show_smt", "stats"):
        if getattr(args, flag):
            print(
                f"warning: --{flag.replace('_', '-')} is ignored in batch mode",
                file=sys.stderr,
            )
    traces = []
    for offset in range(max(args.repeat, 1)):
        run = run_program(program, seed=args.seed + offset)
        if run.deadlocked:
            if mode != "deadlock":
                print(
                    f"recording run (seed {args.seed + offset}) deadlocked; "
                    "rerun with --check-deadlock to analyse it",
                    file=sys.stderr,
                )
                return 2
            traces.append(static_trace(program))
        else:
            traces.append(run.trace)
    portfolio = "theory" if args.portfolio_theory else args.portfolio
    backend = None if portfolio else args.backend
    spec_kwargs = _solver_knob_kwargs(args)
    if args.theory_mode is not None:
        spec_kwargs["theory_mode"] = args.theory_mode
    if spec_kwargs:
        if portfolio:
            # Mirror the verify_many API: silently running both contenders
            # with default knobs would misreport what was measured.
            print(
                "error: solver knobs (--no-reduce-db/--theory-bump/"
                "--no-idl-propagation) cannot be combined with a portfolio",
                file=sys.stderr,
            )
            return 2
        from repro.smt.backend import BackendSpec

        backend = BackendSpec.of(backend, **spec_kwargs)
    results = verify_many_parallel(
        traces,
        jobs=max(args.jobs, 1),
        backend=backend,
        options=options,
        portfolio=portfolio,
        cache_dir=args.cache_dir,
        mode=mode,
        timeout_s=args.timeout,
    )
    for index, result in enumerate(results):
        origin = "cache" if result.from_cache else (result.backend or "?")
        reason = (
            f" reason={result.unknown_reason}" if result.unknown_reason else ""
        )
        print(
            f"[{index}] seed={args.seed + index} "
            f"verdict={result.verdict.value}{reason} ({origin})"
        )
    solved = sum(1 for result in results if not result.from_cache)
    print(
        f"batch: {len(results)} traces, {solved} solved, "
        f"{len(results) - solved} answered from cache/dedup"
    )
    return 1 if any(r.verdict is Verdict.VIOLATION for r in results) else 0


def _run_serve(args: argparse.Namespace) -> int:
    """``mcapi-verify serve`` — run the verification daemon until shutdown."""
    from repro.service import DEFAULT_POOL_SIZE, DEFAULT_PORT, run_server

    return run_server(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        jobs=max(args.jobs, 0),
        pool_size=(
            args.pool_size if args.pool_size is not None else DEFAULT_POOL_SIZE
        ),
        cache_dir=args.cache_dir,
        default_timeout_s=args.timeout,
    )


def _run_shutdown(args: argparse.Namespace) -> int:
    """``mcapi-verify shutdown --server ADDR`` — stop a running daemon."""
    from repro.service import DEFAULT_PORT, ServiceClient

    address = args.server or f"127.0.0.1:{DEFAULT_PORT}"
    with ServiceClient(address) as client:
        client.shutdown()
    print(f"verification service at {client.address} stopping")
    return 0


def _run_remote(args: argparse.Namespace, mode: str) -> int:
    """``--server ADDR`` — offload the query to a running daemon."""
    from repro.service import ServiceClient

    if args.portfolio or args.portfolio_theory:
        print(
            "error: portfolio flags cannot be combined with --server "
            "(the daemon picks its own backends)",
            file=sys.stderr,
        )
        return 2
    for flag in ("show_trace", "show_smt"):
        if getattr(args, flag):
            print(
                f"warning: --{flag.replace('_', '-')} is ignored with --server "
                "(traces and encodings stay on the daemon)",
                file=sys.stderr,
            )
    params = {"senders": args.senders, "messages": args.messages}
    if args.property is not None:
        params["property"] = args.property
    shared: Dict[str, object] = {
        "workload": args.workload,
        "params": params,
        "mode": mode,
        "backend": args.backend,
        "match_pairs": args.match_pairs,
        "pair_fifo": args.pair_fifo,
    }
    if args.theory_mode is not None:
        shared["theory_mode"] = args.theory_mode
    if args.timeout is not None:
        shared["timeout_s"] = args.timeout
    repeat = max(args.repeat, 1)
    queries = [{"seed": args.seed + offset} for offset in range(repeat)]
    with ServiceClient(args.server) as client:
        results = client.verify_batch(queries, **shared)
        if args.stats:
            stats = client.stats()
    for index, result in enumerate(results):
        origin = "cache" if result.from_cache else (result.backend or "?")
        reason = (
            f" reason={result.unknown_reason}" if result.unknown_reason else ""
        )
        print(
            f"[{index}] seed={args.seed + index} "
            f"verdict={result.verdict.value}{reason} ({origin})"
        )
    if repeat == 1:
        print(results[0].describe())
    if args.stats:
        print()
        print("service statistics:")
        pool = stats.get("pool", {})
        cache = stats.get("cache") or {}
        for label, source in (("pool", pool), ("cache", cache)):
            for key in sorted(source):
                if isinstance(source[key], (int, float, str, bool)):
                    print(f"  {label}.{key} = {source[key]}")
        for key in (
            "requests",
            "timeouts",
            "worker_kills",
            "worker_crashes",
            "redispatches",
            "poisoned",
            "jobs",
        ):
            if key in stats:
                print(f"  {key} = {stats[key]}")
        degradations = stats.get("degradations") or []
        if degradations:
            print(f"  degradations = {len(degradations)}")
            for event in degradations:
                print(
                    f"    {event.get('layer')}: {event.get('from')} -> "
                    f"{event.get('to')} ({event.get('reason')})"
                )
    return 1 if any(r.verdict is Verdict.VIOLATION for r in results) else 0


def _run_dimacs(args: argparse.Namespace) -> int:
    """``--dimacs FILE`` — solve a CNF instance with the SAT core directly."""
    import time

    from repro.smt.dimacs import load_dimacs
    from repro.smt.sat import SatResult

    problem = load_dimacs(args.dimacs)
    solver_kwargs: Dict[str, object] = {}
    if args.no_reduce_db:
        solver_kwargs["reduce_db"] = False
    solver = problem.solver(**solver_kwargs)
    deadline = time.monotonic() + args.timeout if args.timeout else None
    verdict = solver.solve(deadline=deadline)
    print(f"c {args.dimacs}: {problem.num_vars} vars, {len(problem.clauses)} clauses")
    if verdict is SatResult.SAT:
        print("s SATISFIABLE")
        model = solver.model()
        lits = [
            str(var if model.get(var, False) else -var)
            for var in range(1, problem.num_vars + 1)
        ]
        print(f"v {' '.join(lits)} 0")
    elif verdict is SatResult.UNSAT:
        print("s UNSATISFIABLE")
    else:
        print("s UNKNOWN")
    if args.stats:
        print("c solver statistics:")
        for key, value in sorted(solver.stats.as_dict().items()):
            print(f"c   {key} = {value}")
    if verdict is SatResult.SAT:
        return 10
    return 20 if verdict is SatResult.UNSAT else 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        print(_list_workloads())
        return 0
    if args.dimacs is not None:
        try:
            return _run_dimacs(args)
        except SolverError as exc:
            print(f"dimacs error: {exc}", file=sys.stderr)
            return 2
    mode = "deadlock" if args.check_deadlock else "safety"
    try:
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "shutdown":
            return _run_shutdown(args)
        if args.server is not None:
            return _run_remote(args, mode)
    except ServiceError as exc:
        if getattr(exc, "unavailable", False):
            # Connection never established: one actionable line, and the
            # conventional EX_UNAVAILABLE status so wrappers can tell
            # "daemon not running" from a query that failed.
            print(f"error: {exc}", file=sys.stderr)
            return 69
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    program = WORKLOADS[args.workload].build(args)

    options = EncoderOptions(
        match_strategy=(
            MatchPairStrategy.PRECISE
            if args.match_pairs == "precise"
            else MatchPairStrategy.ENDPOINT
        ),
        enforce_pair_fifo=args.pair_fifo,
    )
    try:
        if (
            args.repeat > 1
            or args.jobs > 1
            or args.portfolio
            or args.portfolio_theory
            or args.cache_dir is not None
        ):
            return _run_batch(args, program, options, mode)
        # Resolve the mode up front so the session is built in the right
        # configuration directly (one encoding), exactly like the batch lane.
        resolved_options, properties = resolve_mode(mode, options, None)
        session = VerificationSession.from_program(
            program,
            seed=args.seed,
            options=resolved_options,
            properties=properties,
            backend=args.backend,
            theory_mode=args.theory_mode,
            on_deadlock="static" if mode == "deadlock" else "raise",
            **_solver_knob_kwargs(args),
        )
        result = session.verdict(timeout_s=args.timeout)
    except BackendUnavailableError as exc:
        print(f"backend {args.backend!r} unavailable: {exc}", file=sys.stderr)
        return 2
    except SolverError as exc:
        print(f"solver failure in backend {args.backend!r}: {exc}", file=sys.stderr)
        return 2

    if args.show_trace and result.trace is not None:
        print(result.trace.pretty())
        print()
    if args.show_smt:
        print(result.problem.to_smtlib())
        print()

    print(result.describe())
    if args.stats:
        print()
        print("solver statistics:")
        statistics = result.solver_statistics or session.statistics()
        for key in sorted(statistics):
            print(f"  {key} = {statistics[key]}")
    return 1 if result.verdict is Verdict.VIOLATION else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
