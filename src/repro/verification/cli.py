"""Command-line interface: ``mcapi-verify``.

Runs one of the bundled workloads, records a trace, encodes it and reports
the verdict together with a counterexample (when one exists)::

    mcapi-verify --workload figure1 --property a-is-y
    mcapi-verify --workload racy_fanin --senders 3 --seed 2 --show-smt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.encoding.encoder import EncoderOptions, MatchPairStrategy
from repro.program.ast import Program
from repro.verification.verifier import SymbolicVerifier, Verdict
from repro.workloads import (
    branching_consumer,
    client_server,
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    scatter_gather,
    token_ring,
)

__all__ = ["main", "build_parser"]


def _make_workload(args: argparse.Namespace) -> Program:
    name = args.workload
    if name == "figure1":
        return figure1_program(
            assert_a_is_y=(args.property in ("a-is-y", None)),
            assert_a_is_x=(args.property == "a-is-x"),
        )
    if name == "racy_fanin":
        return racy_fanin(args.senders, args.messages, assert_first_from_sender0=True)
    if name == "nonblocking_fanin":
        return nonblocking_fanin(args.senders)
    if name == "pipeline":
        return pipeline(max(args.senders, 2))
    if name == "token_ring":
        return token_ring(max(args.senders, 2))
    if name == "scatter_gather":
        return scatter_gather(args.senders, assert_order=True)
    if name == "client_server":
        return client_server(args.senders)
    if name == "branching_consumer":
        return branching_consumer()
    raise SystemExit(f"unknown workload {name!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mcapi-verify",
        description="Symbolically verify an MCAPI workload from a recorded trace.",
    )
    parser.add_argument(
        "--workload",
        default="figure1",
        choices=[
            "figure1",
            "racy_fanin",
            "nonblocking_fanin",
            "pipeline",
            "token_ring",
            "scatter_gather",
            "client_server",
            "branching_consumer",
        ],
        help="which bundled workload to verify",
    )
    parser.add_argument(
        "--property",
        default=None,
        choices=[None, "a-is-y", "a-is-x"],
        help="figure1 only: which assertion to add to thread t0",
    )
    parser.add_argument("--senders", type=int, default=3, help="workload size parameter")
    parser.add_argument("--messages", type=int, default=1, help="messages per sender")
    parser.add_argument("--seed", type=int, default=0, help="seed of the recording run")
    parser.add_argument(
        "--match-pairs",
        default="endpoint",
        choices=["endpoint", "precise"],
        help="match-pair generation strategy",
    )
    parser.add_argument(
        "--pair-fifo",
        action="store_true",
        help="add the per-pair FIFO extension constraints",
    )
    parser.add_argument(
        "--show-smt", action="store_true", help="print the generated SMT-LIB script"
    )
    parser.add_argument(
        "--show-trace", action="store_true", help="print the recorded execution trace"
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    program = _make_workload(args)

    options = EncoderOptions(
        match_strategy=(
            MatchPairStrategy.PRECISE
            if args.match_pairs == "precise"
            else MatchPairStrategy.ENDPOINT
        ),
        enforce_pair_fifo=args.pair_fifo,
    )
    verifier = SymbolicVerifier(options=options)
    result = verifier.verify_program(program, seed=args.seed)

    if args.show_trace and result.trace is not None:
        print(result.trace.pretty())
        print()
    if args.show_smt:
        print(result.problem.to_smtlib())
        print()

    print(result.describe())
    return 1 if result.verdict is Verdict.VIOLATION else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
