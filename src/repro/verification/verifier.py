"""The symbolic verifier: the user-facing API of the reproduction.

``SymbolicVerifier`` ties the pipeline together:

1. run the program once (any scheduling) to obtain an execution trace,
2. generate match pairs from the trace,
3. encode ``P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧ PEvents``,
4. hand the problem to the SMT solver,
5. decode a counterexample witness if the problem is satisfiable.

Beyond the paper's yes/no question the verifier can also *enumerate* every
send/receive pairing the model admits (by iteratively blocking found
matchings), which is what the coverage benchmarks use to compare against MCC
and the Elwakil/Yang encoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.encoding.encoder import EncodedProblem, EncoderOptions, TraceEncoder
from repro.encoding.properties import Property
from repro.encoding.variables import match_var
from repro.encoding.witness import Witness, decode_witness
from repro.program.ast import Program
from repro.program.interpreter import ProgramRun, run_program
from repro.mcapi.network import DeliveryPolicy
from repro.mcapi.scheduler import SchedulingStrategy
from repro.smt.solver import CheckResult, Solver
from repro.smt.terms import And, Eq, IntVal, Not, Term
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import EncodingError

__all__ = ["Verdict", "VerificationResult", "SymbolicVerifier"]


class Verdict(Enum):
    """Outcome of a verification query."""

    #: No execution consistent with the trace's branch outcomes violates the
    #: properties.
    SAFE = "safe"
    #: Some execution violates a property; a witness is attached.
    VIOLATION = "violation"
    #: The solver gave up (iteration limit); no conclusion.
    UNKNOWN = "unknown"


@dataclass
class VerificationResult:
    """The verdict plus everything needed to understand and reproduce it."""

    verdict: Verdict
    problem: EncodedProblem
    witness: Optional[Witness] = None
    solver_statistics: Dict[str, int] = field(default_factory=dict)
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    trace: Optional[ExecutionTrace] = None
    program_run: Optional[ProgramRun] = None

    @property
    def is_violation(self) -> bool:
        return self.verdict is Verdict.VIOLATION

    @property
    def is_safe(self) -> bool:
        return self.verdict is Verdict.SAFE

    def describe(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        lines.append(f"problem size: {self.problem.size_summary()}")
        lines.append(
            f"encode time: {self.encode_seconds * 1000:.1f} ms, "
            f"solve time: {self.solve_seconds * 1000:.1f} ms"
        )
        if self.witness is not None:
            lines.append(self.witness.describe(self.problem))
        return "\n".join(lines)


class SymbolicVerifier:
    """Trace- and program-level verification via the SMT encoding."""

    def __init__(
        self,
        options: Optional[EncoderOptions] = None,
        max_solver_iterations: int = 200_000,
    ) -> None:
        self.encoder = TraceEncoder(options)
        self.max_solver_iterations = max_solver_iterations

    # ------------------------------------------------------------------ traces

    def verify_trace(
        self,
        trace: ExecutionTrace,
        properties: Optional[Sequence[Property]] = None,
        program_run: Optional[ProgramRun] = None,
    ) -> VerificationResult:
        """Check whether any modelled execution violates the properties."""
        start = time.perf_counter()
        problem = self.encoder.encode(trace, properties=properties)
        encode_seconds = time.perf_counter() - start

        if problem.negated_property is None:
            # No properties with content: nothing can be violated.
            return VerificationResult(
                verdict=Verdict.SAFE,
                problem=problem,
                encode_seconds=encode_seconds,
                trace=trace,
                program_run=program_run,
            )

        solver = Solver(max_iterations=self.max_solver_iterations)
        solver.add_all(problem.assertions(include_property=True))
        start = time.perf_counter()
        outcome = solver.check()
        solve_seconds = time.perf_counter() - start

        witness: Optional[Witness] = None
        if outcome is CheckResult.SAT:
            verdict = Verdict.VIOLATION
            witness = decode_witness(problem, solver.model())
        elif outcome is CheckResult.UNSAT:
            verdict = Verdict.SAFE
        else:
            verdict = Verdict.UNKNOWN

        return VerificationResult(
            verdict=verdict,
            problem=problem,
            witness=witness,
            solver_statistics=solver.statistics(),
            encode_seconds=encode_seconds,
            solve_seconds=solve_seconds,
            trace=trace,
            program_run=program_run,
        )

    # ------------------------------------------------------------------ programs

    def verify_program(
        self,
        program: Program,
        properties: Optional[Sequence[Property]] = None,
        seed: int = 0,
        policy: Optional[DeliveryPolicy] = None,
        strategy: Optional[SchedulingStrategy] = None,
    ) -> VerificationResult:
        """Run ``program`` once to obtain a trace, then verify the trace.

        Any scheduling works for the recording run — the encoding models the
        other interleavings symbolically — so the default is a seeded random
        schedule.
        """
        run = run_program(program, seed=seed, policy=policy, strategy=strategy)
        if run.deadlocked:
            raise EncodingError(
                f"the recording run of {program.name!r} deadlocked; "
                "pick a different seed/strategy to obtain a complete trace"
            )
        return self.verify_trace(run.trace, properties=properties, program_run=run)

    # ------------------------------------------------------------------ reachability

    def feasibility(self, trace: ExecutionTrace) -> bool:
        """True if the encoding admits at least one execution (sanity check)."""
        problem = self.encoder.encode(trace, properties=[])
        solver = Solver(max_iterations=self.max_solver_iterations)
        solver.add_all(problem.assertions(include_property=False))
        return solver.check() is CheckResult.SAT

    def is_pairing_reachable(
        self, trace: ExecutionTrace, pairing: Dict[int, int]
    ) -> bool:
        """Is there an execution in which each ``recv_id`` matches ``send_id``?

        This is the query behind the Figure 4 experiment: the paper's
        encoding must report both 4a and 4b reachable, while the MCC /
        Elwakil models admit only 4a.
        """
        problem = self.encoder.encode(trace, properties=[])
        solver = Solver(max_iterations=self.max_solver_iterations)
        solver.add_all(problem.assertions(include_property=False))
        constraints = [
            Eq(match_var(recv_id), IntVal(send_id))
            for recv_id, send_id in pairing.items()
        ]
        return solver.check(*constraints) is CheckResult.SAT

    def enumerate_pairings(
        self,
        trace: ExecutionTrace,
        limit: Optional[int] = None,
    ) -> List[Dict[int, int]]:
        """All complete matchings admitted by the SMT model.

        Found by iterative blocking: solve, record the matching of the model,
        add a clause forbidding exactly that matching, repeat.  ``limit``
        caps the number of matchings returned.
        """
        problem = self.encoder.encode(trace, properties=[])
        solver = Solver(max_iterations=self.max_solver_iterations)
        solver.add_all(problem.assertions(include_property=False))

        pairings: List[Dict[int, int]] = []
        while limit is None or len(pairings) < limit:
            if solver.check() is not CheckResult.SAT:
                break
            witness = decode_witness(problem, solver.model())
            pairings.append(dict(witness.matching))
            blocking = Not(
                And(
                    [
                        Eq(match_var(recv_id), IntVal(send_id))
                        for recv_id, send_id in witness.matching.items()
                    ]
                )
            )
            solver.add(blocking)
        return pairings
