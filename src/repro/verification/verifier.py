"""The symbolic verifier: the legacy call-per-query facade.

``SymbolicVerifier`` predates the session API and is kept as a thin,
backwards-compatible shim over :class:`repro.verification.session.VerificationSession`:
every method opens a session for the trace at hand and delegates.  New code
— and anything issuing more than one query against the same trace — should
hold a session directly, which encodes the problem once and keeps one
incremental solver warm across the whole query stream:

1. run the program once (any scheduling) to obtain an execution trace,
2. generate match pairs from the trace,
3. encode ``P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧ PEvents``,
4. hand the problem to the configured solver backend,
5. decode a counterexample witness if the problem is satisfiable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.encoding.encoder import EncoderOptions, TraceEncoder
from repro.encoding.properties import Property
from repro.mcapi.network import DeliveryPolicy
from repro.mcapi.scheduler import SchedulingStrategy
from repro.program.ast import Program
from repro.program.interpreter import ProgramRun
from repro.smt.backend import SolverBackend
from repro.trace.trace import ExecutionTrace
from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import VerificationSession, _recording_run

__all__ = ["Verdict", "VerificationResult", "SymbolicVerifier"]


class SymbolicVerifier:
    """Trace- and program-level verification via the SMT encoding.

    A shim over :class:`VerificationSession`: each call opens a fresh
    session, so the legacy per-call semantics (including re-encoding per
    query) are preserved exactly.  The ``backend`` argument selects the
    solver backend by registry name or instance, as for sessions.
    """

    def __init__(
        self,
        options: Optional[EncoderOptions] = None,
        max_solver_iterations: int = 200_000,
        backend: Union[str, SolverBackend, None] = None,
    ) -> None:
        self.encoder = TraceEncoder(options)
        self.max_solver_iterations = max_solver_iterations
        self.backend = backend

    # ------------------------------------------------------------------ sessions

    def session(
        self,
        trace: ExecutionTrace,
        properties: Optional[Sequence[Property]] = None,
        program_run: Optional[ProgramRun] = None,
    ) -> VerificationSession:
        """Open a :class:`VerificationSession` with this verifier's config."""
        return VerificationSession(
            trace,
            properties=properties,
            backend=self.backend,
            max_solver_iterations=self.max_solver_iterations,
            program_run=program_run,
            encoder=self.encoder,
        )

    # ------------------------------------------------------------------ traces

    def verify_trace(
        self,
        trace: ExecutionTrace,
        properties: Optional[Sequence[Property]] = None,
        program_run: Optional[ProgramRun] = None,
    ) -> VerificationResult:
        """Check whether any modelled execution violates the properties."""
        return self.session(trace, properties=properties, program_run=program_run).verdict()

    # ------------------------------------------------------------------ programs

    def verify_program(
        self,
        program: Program,
        properties: Optional[Sequence[Property]] = None,
        seed: int = 0,
        policy: Optional[DeliveryPolicy] = None,
        strategy: Optional[SchedulingStrategy] = None,
    ) -> VerificationResult:
        """Run ``program`` once to obtain a trace, then verify the trace.

        Any scheduling works for the recording run — the encoding models the
        other interleavings symbolically — so the default is a seeded random
        schedule.
        """
        run = _recording_run(program, seed, policy, strategy)
        return self.verify_trace(run.trace, properties=properties, program_run=run)

    # ------------------------------------------------------------------ reachability

    def feasibility(self, trace: ExecutionTrace) -> bool:
        """True if the encoding admits at least one execution (sanity check)."""
        return self.session(trace, properties=[]).feasibility()

    def is_pairing_reachable(
        self, trace: ExecutionTrace, pairing: Dict[int, int]
    ) -> bool:
        """Is there an execution in which each ``recv_id`` matches ``send_id``?

        This is the query behind the Figure 4 experiment: the paper's
        encoding must report both 4a and 4b reachable, while the MCC /
        Elwakil models admit only 4a.
        """
        return self.session(trace, properties=[]).reachable(pairing)

    def enumerate_pairings(
        self,
        trace: ExecutionTrace,
        limit: Optional[int] = None,
    ) -> List[Dict[int, int]]:
        """All complete matchings admitted by the SMT model.

        Found by iterative blocking against one incremental solver (see
        :meth:`VerificationSession.pairings`).  ``limit`` caps the number of
        matchings returned.  Raises
        :class:`~repro.utils.errors.IncompleteEnumerationError` if the
        solver gives up before the enumeration is exhaustive — a partial
        list is never silently returned as complete.
        """
        return self.session(trace, properties=[]).enumerate_pairings(limit=limit)
