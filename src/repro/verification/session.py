"""Session-based verification: encode a trace once, query it many times.

The paper's headline observation is that *one* SMT encoding of a recorded
trace answers many different questions — is a property violated, is the
model feasible at all, can a particular send/receive pairing happen, what is
the full set of admissible matchings, can the program deadlock or lose a
message.  :class:`VerificationSession` turns
that observation into the API: the problem ``P = POrder ∧ PMatchPairs ∧
PUnique ∧ PEvents`` is encoded exactly once and loaded into one incremental
:class:`~repro.smt.backend.SolverBackend`; every query after that is an
assumption-scoped ``check`` (or, for enumeration, a blocking-clause loop in
a solver scope), so learned clauses and theory lemmas accumulate across the
whole query stream instead of being thrown away per call.

The negated property ``¬PProp`` is *assumed*, never asserted, which is what
lets verdict, feasibility, reachability and enumeration queries share one
backend without stepping on each other.

Quickstart::

    from repro.verification import VerificationSession
    from repro.workloads import figure1_program

    session = VerificationSession.from_program(figure1_program(assert_a_is_y=True))
    result = session.verdict()           # SAFE / VIOLATION (+ witness)
    session.feasibility()                # the model admits some execution
    for matching in session.pairings():  # every admissible send/recv pairing
        print(matching)

For one-shot batch traffic use :func:`verify_many`, and for the legacy
call-per-query interface keep using
:class:`~repro.verification.verifier.SymbolicVerifier`, which is now a thin
shim over sessions.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.encoding.encoder import EncodedProblem, EncoderOptions, TraceEncoder
from repro.encoding.properties import (
    DeadlockProperty,
    OrphanMessageProperty,
    Property,
)
from repro.encoding.variables import match_var
from repro.encoding.witness import Witness, decode_witness
from repro.mcapi.network import DeliveryPolicy
from repro.mcapi.scheduler import SchedulingStrategy
from repro.program.ast import Program
from repro.program.interpreter import ProgramRun, run_program
from repro.program.statictrace import static_trace
from repro.smt.backend import SolverBackend, create_backend
from repro.smt.dpllt import CheckResult
from repro.smt.terms import And, Eq, IntVal, Not
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import (
    EncodingError,
    IncompleteEnumerationError,
    SolverError,
)
from repro.verification.result import Verdict, VerificationResult

__all__ = ["VerificationSession", "verify_many", "VERIFICATION_MODES", "resolve_mode"]

#: The questions the stack can ask of one trace.  ``safety`` is the paper's
#: assertion check on the base encoding; ``deadlock`` and ``orphan`` are the
#: partial-match/liveness extensions.
VERIFICATION_MODES = ("safety", "deadlock", "orphan")


def resolve_mode(
    mode: str,
    options: Optional[EncoderOptions],
    properties: Optional[Sequence[Property]],
) -> Tuple[Optional[EncoderOptions], Optional[Sequence[Property]]]:
    """Translate a verification ``mode`` into encoder options + properties.

    ``mode`` is pure sugar over the two real knobs, which is what lets the
    whole downstream stack (sessions, workers, cache keys) stay
    mode-agnostic: a deadlock question is simply the partial-match encoding
    plus :class:`DeadlockProperty`, an orphan question is
    :class:`OrphanMessageProperty` on the base encoding.  Explicit
    ``properties`` are mutually exclusive with a non-safety mode — the mode
    *is* a property selection.
    """
    if mode not in VERIFICATION_MODES:
        raise EncodingError(
            f"unknown verification mode {mode!r}; pick one of {VERIFICATION_MODES}"
        )
    if mode == "safety":
        return options, properties
    if properties is not None:
        raise EncodingError(
            f"mode={mode!r} selects its own property set; pass mode='safety' "
            "to verify explicit properties"
        )
    if mode == "deadlock":
        options = replace(options or EncoderOptions(), partial_matches=True)
        return options, [DeadlockProperty()]
    return options, [OrphanMessageProperty()]


def _recording_run(
    program: Program,
    seed: int,
    policy: Optional[DeliveryPolicy],
    strategy: Optional[SchedulingStrategy],
) -> ProgramRun:
    """Run ``program`` once to obtain a complete recording trace."""
    run = run_program(program, seed=seed, policy=policy, strategy=strategy)
    if run.deadlocked:
        raise EncodingError(
            f"the recording run of {program.name!r} deadlocked; "
            "pick a different seed/strategy to obtain a complete trace"
        )
    return run


class VerificationSession:
    """One encoded trace, one incremental solver, arbitrarily many queries.

    Parameters
    ----------
    trace:
        The recorded execution trace to model.
    options:
        Encoder configuration (match-pair strategy, FIFO extension, ...).
    properties:
        Correctness properties; defaults to the assertions recorded in the
        trace, exactly like the legacy verifier.
    backend:
        A backend registry name (``"dpllt"``, ``"smtlib"``), a live
        :class:`~repro.smt.backend.SolverBackend`, or ``None`` for the
        default incremental DPLL(T) backend.
    max_solver_iterations:
        DPLL(T) iteration budget per ``check``.
    theory_mode:
        ``"online"`` (default) wires the incremental theory solvers into
        the SAT search; ``"offline"`` selects the classic lazy
        model-then-check loop (the reference semantics, kept for
        differential testing).  Only meaningful for the dpllt backend.
    reduce_db / theory_bump / idl_propagation:
        Solver hot-path knobs forwarded to the dpllt backend when set:
        learned-clause database reduction (default on), the extra VSIDS
        bump factor for atoms named by theory feedback, and IDL bound
        propagation (default on).  ``None`` keeps the backend's default.
    program_run:
        The recording run, when the trace came from one (attached to
        results for replay).
    encoder:
        An existing :class:`TraceEncoder` to reuse (overrides ``options``).
    problem:
        An already-encoded problem for this trace, to share one encoding
        between several sessions (e.g. portfolio contenders racing the
        same trace on different backends).  Skips encoding entirely.

    The constructor encodes the problem exactly once; no public method ever
    re-encodes.  The backend is created lazily on the first query so that
    sessions on property-free traces stay cheap.
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        options: Optional[EncoderOptions] = None,
        properties: Optional[Sequence[Property]] = None,
        backend: Union[str, SolverBackend, None] = None,
        max_solver_iterations: int = 200_000,
        theory_mode: Optional[str] = None,
        reduce_db: Optional[bool] = None,
        theory_bump: Optional[float] = None,
        idl_propagation: Optional[bool] = None,
        program_run: Optional[ProgramRun] = None,
        encoder: Optional[TraceEncoder] = None,
        problem: Optional[EncodedProblem] = None,
    ) -> None:
        self.trace = trace
        self.program_run = program_run
        self._encoder = encoder if encoder is not None else TraceEncoder(options)
        self._properties = properties
        if problem is not None:
            self._problem = problem
            self.encode_seconds = 0.0
        else:
            start = time.perf_counter()
            self._problem = self._encoder.encode(trace, properties=properties)
            self.encode_seconds = time.perf_counter() - start
        #: How many times the trace has been encoded.  Stays 1 for the
        #: session's whole lifetime — that is the point of the API.
        self.encode_count = 1
        self._backend_spec = backend
        self._max_iterations = max_solver_iterations
        self._theory_mode = theory_mode
        self._reduce_db = reduce_db
        self._theory_bump = theory_bump
        self._idl_propagation = idl_propagation
        self._backend: Optional[SolverBackend] = None
        self._verdict: Optional[VerificationResult] = None
        self._orphan_verdict: Optional[VerificationResult] = None
        self._deadlock_session: Optional["VerificationSession"] = None
        self._enumerating = False

    # ------------------------------------------------------------------ creation

    @classmethod
    def from_program(
        cls,
        program: Program,
        seed: int = 0,
        policy: Optional[DeliveryPolicy] = None,
        strategy: Optional[SchedulingStrategy] = None,
        on_deadlock: str = "raise",
        **kwargs,
    ) -> "VerificationSession":
        """Record ``program`` once (any scheduling works) and open a session.

        ``on_deadlock`` controls what happens when the recording run blocks:

        * ``"raise"`` (default) — fail with :class:`EncodingError`, the
          historical behaviour; a blocked recording is truncated and would
          silently under-approximate a safety analysis.
        * ``"static"`` — fall back to the statically unrolled symbolic
          trace (:func:`repro.program.statictrace.static_trace`); only
          possible for branch-free programs.  This is what deadlock-mode
          verification uses: programs that deadlock on *every* schedule
          have no complete recording to offer.
        """
        if on_deadlock not in ("raise", "static"):
            raise EncodingError(
                f"on_deadlock must be 'raise' or 'static', got {on_deadlock!r}"
            )
        if on_deadlock == "static":
            run = run_program(program, seed=seed, policy=policy, strategy=strategy)
            if run.deadlocked:
                return cls(static_trace(program), **kwargs)
            return cls(run.trace, program_run=run, **kwargs)
        run = _recording_run(program, seed, policy, strategy)
        return cls(run.trace, program_run=run, **kwargs)

    # ------------------------------------------------------------------ accessors

    @property
    def problem(self) -> EncodedProblem:
        """The encoded problem (built exactly once, at construction)."""
        return self._problem

    @property
    def backend(self) -> SolverBackend:
        """The live solver backend, loaded with the base assertion set."""
        if self._backend is None:
            kwargs: Dict[str, object] = {"max_iterations": self._max_iterations}
            if self._theory_mode is not None:
                kwargs["theory_mode"] = self._theory_mode
            for name, value in (
                ("reduce_db", self._reduce_db),
                ("theory_bump", self._theory_bump),
                ("idl_propagation", self._idl_propagation),
            ):
                if value is not None:
                    kwargs[name] = value
            self._backend = create_backend(self._backend_spec, **kwargs)
            self._backend.add_all(self._problem.assertions(include_property=False))
        return self._backend

    @property
    def backend_name(self) -> str:
        if self._backend is not None:
            return getattr(self._backend, "name", "?")
        if isinstance(self._backend_spec, str):
            return self._backend_spec
        if self._backend_spec is None:
            return "dpllt"
        return getattr(self._backend_spec, "name", "?")

    def statistics(self) -> Dict[str, int]:
        """Backend statistics accumulated over the session (empty if unused)."""
        return {} if self._backend is None else self._backend.statistics()

    # ------------------------------------------------------------------ queries

    def verdict(
        self, mode: str = "safety", timeout_s: Optional[float] = None
    ) -> VerificationResult:
        """Check whether any modelled execution violates the properties.

        ``mode="safety"`` (default) checks the session's own property set;
        ``mode="deadlock"`` and ``mode="orphan"`` dispatch to
        :meth:`deadlocks` / :meth:`orphans`.  The negated property is
        passed as a *check assumption*, so the persistent assertion set —
        shared with every other query — is never polluted.  Results are
        cached per mode; repeated calls are free.

        ``timeout_s`` bounds the solve by wall clock: past the deadline the
        check comes back ``UNKNOWN`` with ``unknown_reason="timeout"``
        instead of hanging.  Timed-out answers are *not* memoized, so a
        retry with a larger (or no) budget gets a fresh solve — against a
        backend whose learned state survived the interrupted attempt.
        """
        if mode == "deadlock":
            return self.deadlocks(timeout_s=timeout_s)
        if mode == "orphan":
            return self.orphans(timeout_s=timeout_s)
        if mode != "safety":
            raise EncodingError(
                f"unknown verification mode {mode!r}; pick one of {VERIFICATION_MODES}"
            )
        if self._verdict is not None:
            return self._verdict
        self._require_not_enumerating("verdict")
        negated = self._problem.negated_property
        if negated is None:
            # No properties with content: nothing can be violated.
            self._verdict = VerificationResult(
                verdict=Verdict.SAFE,
                problem=self._problem,
                encode_seconds=self.encode_seconds,
                trace=self.trace,
                program_run=self.program_run,
                backend=self.backend_name,
            )
            return self._verdict

        backend = self.backend
        deadline = self._arm_deadline(backend, timeout_s)
        start = time.perf_counter()
        try:
            outcome = backend.check(negated)
        finally:
            if deadline is not None:
                self._disarm_deadline(backend)
        solve_seconds = time.perf_counter() - start

        witness: Optional[Witness] = None
        if outcome is CheckResult.SAT:
            verdict = Verdict.VIOLATION
            witness = decode_witness(self._problem, backend.model())
        elif outcome is CheckResult.UNSAT:
            verdict = Verdict.SAFE
        else:
            verdict = Verdict.UNKNOWN

        unknown_reason: Optional[str] = None
        if (
            verdict is Verdict.UNKNOWN
            and deadline is not None
            and time.monotonic() >= deadline
        ):
            unknown_reason = "timeout"
        result = VerificationResult(
            verdict=verdict,
            problem=self._problem,
            witness=witness,
            solver_statistics=backend.statistics(),
            encode_seconds=self.encode_seconds,
            solve_seconds=solve_seconds,
            trace=self.trace,
            program_run=self.program_run,
            backend=self.backend_name,
            unknown_reason=unknown_reason,
        )
        if unknown_reason is None:
            self._verdict = result
        return result

    @staticmethod
    def _arm_deadline(
        backend: SolverBackend, timeout_s: Optional[float]
    ) -> Optional[float]:
        """Arm a wall-clock deadline on the backend; returns the instant.

        Backends without ``set_deadline`` still get the instant tracked so
        a late UNKNOWN can be *labelled* a timeout, but they cannot be
        interrupted mid-check — only the in-tree backends guarantee the
        returns-instead-of-hanging contract.
        """
        if timeout_s is None:
            return None
        deadline = time.monotonic() + timeout_s
        setter = getattr(backend, "set_deadline", None)
        if setter is not None:
            setter(deadline)
        return deadline

    @staticmethod
    def _disarm_deadline(backend: SolverBackend) -> None:
        setter = getattr(backend, "set_deadline", None)
        if setter is not None:
            setter(None)

    def _require_not_enumerating(self, operation: str) -> None:
        """Queries must not run inside an active enumeration's solver scope:
        its blocking clauses would silently change their answers."""
        if self._enumerating:
            raise SolverError(
                f"{operation}() cannot run while a pairings() enumeration is "
                "active on this session; exhaust or close the generator first"
            )

    def feasibility(self) -> bool:
        """True if the encoding admits at least one execution (sanity check)."""
        self._require_not_enumerating("feasibility")
        return self.backend.check() is CheckResult.SAT

    def reachable(self, pairing: Dict[int, int]) -> bool:
        """Is there an execution in which each ``recv_id`` matches ``send_id``?

        This is the query behind the Figure 4 experiment.  The pairing
        constraints are assumptions, so consecutive probes reuse everything
        the solver has learned.
        """
        self._require_not_enumerating("reachable")
        constraints = [
            Eq(match_var(recv_id), IntVal(send_id))
            for recv_id, send_id in pairing.items()
        ]
        return self.backend.check(*constraints) is CheckResult.SAT

    def deadlocks(self, timeout_s: Optional[float] = None) -> VerificationResult:
        """Can any modelled (partial) execution deadlock?

        ``VIOLATION`` means a reachable deadlock exists; the witness names
        the stuck endpoints (:attr:`Witness.unmatched_receives`) and the
        unmatched sends (:attr:`Witness.orphan_sends`) — see
        :meth:`Witness.deadlock_description`.  ``SAFE`` means every
        execution completes every receive.

        The check needs the partial-match encoding, which has a different
        base assertion set than the safety lane, so the session lazily opens
        one *deadlock sub-session* (same trace, same backend family,
        ``partial_matches=True`` + :class:`DeadlockProperty`) and keeps it
        warm for repeated calls.  A session already configured that way
        answers from its own backend directly.
        """
        if self._is_deadlock_configured():
            return self.verdict(timeout_s=timeout_s)
        if self._deadlock_session is None:
            options = replace(self._encoder.options, partial_matches=True)
            self._deadlock_session = VerificationSession(
                self.trace,
                options=options,
                properties=[DeadlockProperty()],
                backend=self._lane_backend_spec(),
                max_solver_iterations=self._max_iterations,
                theory_mode=self._theory_mode,
                reduce_db=self._reduce_db,
                theory_bump=self._theory_bump,
                idl_propagation=self._idl_propagation,
                program_run=self.program_run,
            )
        return self._deadlock_session.verdict(timeout_s=timeout_s)

    def orphans(self, timeout_s: Optional[float] = None) -> VerificationResult:
        """Can a message be sent and never received (an orphan/lost message)?

        Answered on this session's own encoding and backend via an assumed
        negated :class:`OrphanMessageProperty`: on a base-encoding session
        the question is over *complete* executions; on a partial-match
        session it also covers messages stranded by a deadlock (sends that
        executed before their would-be receiver blocked forever).
        """
        if self._orphan_verdict is not None:
            return self._orphan_verdict
        self._require_not_enumerating("orphans")
        prop = OrphanMessageProperty()
        term = (
            prop.partial_term(self.trace)
            if self._problem.partial_matches
            else prop.term(self.trace)
        )
        backend = self.backend
        deadline = self._arm_deadline(backend, timeout_s)
        start = time.perf_counter()
        try:
            if term.is_true:
                outcome = CheckResult.UNSAT  # no sends: nothing can be orphaned
            else:
                outcome = backend.check(Not(term))
        finally:
            if deadline is not None:
                self._disarm_deadline(backend)
        solve_seconds = time.perf_counter() - start
        witness: Optional[Witness] = None
        if outcome is CheckResult.SAT:
            verdict = Verdict.VIOLATION
            witness = decode_witness(self._problem, backend.model())
        elif outcome is CheckResult.UNSAT:
            verdict = Verdict.SAFE
        else:
            verdict = Verdict.UNKNOWN
        unknown_reason: Optional[str] = None
        if (
            verdict is Verdict.UNKNOWN
            and deadline is not None
            and time.monotonic() >= deadline
        ):
            unknown_reason = "timeout"
        result = VerificationResult(
            verdict=verdict,
            problem=self._problem,
            witness=witness,
            solver_statistics=backend.statistics(),
            encode_seconds=self.encode_seconds,
            solve_seconds=solve_seconds,
            trace=self.trace,
            program_run=self.program_run,
            backend=self.backend_name,
            unknown_reason=unknown_reason,
        )
        if unknown_reason is None:
            self._orphan_verdict = result
        return result

    def _is_deadlock_configured(self) -> bool:
        """True when this session itself already encodes the deadlock question."""
        return (
            self._problem.partial_matches
            and self._properties is not None
            and len(self._properties) == 1
            and isinstance(self._properties[0], DeadlockProperty)
        )

    def _lane_backend_spec(self) -> Union[str, None]:
        """A backend spec a sub-session can use (never a live instance)."""
        if isinstance(self._backend_spec, str) or self._backend_spec is None:
            return self._backend_spec
        name = getattr(self._backend_spec, "name", None)
        return name if isinstance(name, str) else None

    def pairings(self, limit: Optional[int] = None) -> Iterator[Dict[int, int]]:
        """Yield every complete matching the SMT model admits.

        Iterative blocking inside one solver scope: solve, yield the model's
        matching, assert a clause forbidding exactly that matching, repeat —
        all against the same incremental backend, so no query starts cold.
        The enumeration guard and solver scope are released however the
        generator ends — exhaustion, ``close()``, garbage collection, or an
        exception thrown by the consumer — so an abandoned generator can
        never leave the session stuck refusing further queries.

        ``limit`` caps the number of matchings yielded.  If the solver gives
        up (UNKNOWN) the generator raises
        :class:`~repro.utils.errors.IncompleteEnumerationError` instead of
        silently presenting the matchings found so far as exhaustive.

        Only one enumeration may be active per session at a time; starting a
        second one fails eagerly, at the call, not at the first ``next()``.
        """
        # Guard eagerly: generator bodies only run on the first next(), and
        # a guard that fires that late is easy to mistake for an iteration
        # bug.  The backend/scope setup stays inside the generator so that
        # an unconsumed generator object costs nothing.
        if self._enumerating:
            raise SolverError(
                "a pairings() enumeration is already active on this session; "
                "exhaust or close it before starting another"
            )
        return self._enumerate(limit)

    def _enumerate(self, limit: Optional[int]) -> Iterator[Dict[int, int]]:
        if self._enumerating:
            # A sibling generator won the race between our eager guard and
            # this body's first execution.
            raise SolverError(
                "a pairings() enumeration is already active on this session; "
                "exhaust or close it before starting another"
            )
        backend = self.backend
        self._enumerating = True
        backend.push()
        # Enumeration streams SAT models, a shape where IDL bound
        # propagation costs (a per-assertion entailment pass) without
        # paying (few refutations to shorten): pause the lane for the
        # enumeration scope — unless the caller pinned it explicitly.
        toggle = (
            getattr(backend, "set_idl_propagation", None)
            if self._idl_propagation is None
            else None
        )
        if toggle is not None:
            toggle(False)
        found: List[Dict[int, int]] = []
        try:
            while limit is None or len(found) < limit:
                outcome = backend.check()
                if outcome is CheckResult.UNKNOWN:
                    raise IncompleteEnumerationError(
                        "pairing enumeration stopped on UNKNOWN (solver "
                        f"iteration limit); the {len(found)} matchings found "
                        "so far are not exhaustive",
                        pairings=found,
                    )
                if outcome is not CheckResult.SAT:
                    return
                witness = decode_witness(self._problem, backend.model())
                matching = dict(witness.matching)
                found.append(matching)
                backend.add(
                    Not(
                        And(
                            [
                                Eq(match_var(recv_id), IntVal(send_id))
                                for recv_id, send_id in matching.items()
                            ]
                        )
                    )
                )
                yield matching
        finally:
            self._enumerating = False
            backend.pop()
            if toggle is not None:
                toggle(True)

    def enumerate_pairings(self, limit: Optional[int] = None) -> List[Dict[int, int]]:
        """All admissible matchings as a list (see :meth:`pairings`)."""
        return list(self.pairings(limit=limit))


def verify_many(
    items: Iterable[Union[Program, ExecutionTrace]],
    options: Optional[EncoderOptions] = None,
    properties: Optional[Sequence[Property]] = None,
    backend: Union[str, SolverBackend, None] = None,
    seed: int = 0,
    max_solver_iterations: int = 200_000,
    jobs: int = 1,
    cache=None,
    cache_dir: Optional[str] = None,
    portfolio: Union[bool, str] = False,
    mode: str = "safety",
    theory_mode: Optional[str] = None,
    reduce_db: Optional[bool] = None,
    theory_bump: Optional[float] = None,
    idl_propagation: Optional[bool] = None,
    timeout_s: Optional[float] = None,
) -> List[VerificationResult]:
    """Batch front door: verify many programs and/or traces in one call.

    Programs are recorded once with ``seed`` and every item gets its own
    :class:`VerificationSession` (encode-once per item) sharing one encoder
    configuration.  Results come back in input order.  ``backend`` must be a
    registry name (each item gets a fresh backend); sharing one live backend
    instance across items would mix their assertion sets.

    ``mode`` selects the question asked of every item: ``"safety"`` (the
    default property check), ``"deadlock"`` (partial-match encoding +
    :class:`DeadlockProperty`; programs whose recording run blocks fall
    back to the static symbolic trace), or ``"orphan"`` (lost-message
    check).  Mode and explicit ``properties`` are mutually exclusive.

    ``theory_mode`` picks the dpllt engine's theory integration per item
    (``"online"``/``"offline"``, ``None`` for the backend default); in the
    parallel lane it is folded into the picklable
    :class:`~repro.smt.backend.BackendSpec` shipped to workers.  The solver
    hot-path knobs ``reduce_db`` / ``theory_bump`` / ``idl_propagation``
    travel the same way (``None`` keeps the backend defaults).

    ``timeout_s`` bounds each item's solve by wall clock; a query that
    cannot finish in time comes back ``UNKNOWN`` with
    ``unknown_reason="timeout"`` instead of stalling the whole batch.

    ``jobs``, ``cache``/``cache_dir`` and ``portfolio`` hand the batch to
    :class:`repro.verification.parallel.ParallelVerifier` — sharding over
    worker processes, fingerprint-keyed result caching, and backend racing;
    ``portfolio="theory"`` races the dpllt engine's online and offline
    theory modes against each other instead of distinct backends; see that
    module for semantics.  The default (``jobs=1``, no cache, no
    portfolio) keeps the simple one-session-per-item serial path below.
    """
    items = list(items)
    solver_knobs = {
        name: value
        for name, value in (
            ("reduce_db", reduce_db),
            ("theory_bump", theory_bump),
            ("idl_propagation", idl_propagation),
        )
        if value is not None
    }
    if jobs != 1 or cache is not None or cache_dir is not None or portfolio:
        from repro.smt.backend import BackendSpec
        from repro.verification.parallel import ParallelVerifier

        if backend is not None and not isinstance(backend, (str, BackendSpec)):
            raise SolverError(
                "verify_many needs a backend registry name, not a live "
                "backend instance: worker processes build their own solvers"
            )
        if theory_mode is not None:
            if portfolio:
                raise SolverError(
                    "theory_mode cannot be combined with portfolio: the "
                    "portfolio races its own fixed backend lineup; drop one "
                    "of the two options"
                )
            # Fold the mode into the picklable spec so workers honour it.
            backend = BackendSpec.of(backend, theory_mode=theory_mode)
        if solver_knobs:
            if portfolio:
                raise SolverError(
                    "solver knobs (reduce_db/theory_bump/idl_propagation) "
                    "cannot be combined with portfolio; pass explicit "
                    "BackendSpecs via ParallelVerifier(backends=...) instead"
                )
            backend = BackendSpec.of(backend, **solver_knobs)
        return ParallelVerifier(
            jobs=jobs,
            backend=backend,
            options=options,
            properties=properties,
            portfolio=portfolio,
            cache=cache,
            cache_dir=cache_dir,
            seed=seed,
            max_solver_iterations=max_solver_iterations,
            mode=mode,
            timeout_s=timeout_s,
        ).verify_many(items)
    if backend is not None and not isinstance(backend, str) and len(items) > 1:
        raise SolverError(
            "verify_many needs a backend registry name, not a live backend "
            "instance: each item must get its own solver state"
        )
    options, properties = resolve_mode(mode, options, properties)
    encoder = TraceEncoder(options)
    results: List[VerificationResult] = []
    for item in items:
        if isinstance(item, Program):
            if mode == "deadlock":
                run = run_program(item, seed=seed)
                if run.deadlocked:
                    trace, run = static_trace(item), None
                else:
                    trace = run.trace
            else:
                run = _recording_run(item, seed, None, None)
                trace = run.trace
            session = VerificationSession(
                trace,
                properties=properties,
                backend=backend,
                max_solver_iterations=max_solver_iterations,
                theory_mode=theory_mode,
                program_run=run,
                encoder=encoder,
                **solver_knobs,
            )
        elif isinstance(item, ExecutionTrace):
            session = VerificationSession(
                item,
                properties=properties,
                backend=backend,
                max_solver_iterations=max_solver_iterations,
                theory_mode=theory_mode,
                encoder=encoder,
                **solver_knobs,
            )
        else:
            raise EncodingError(
                f"verify_many accepts Programs or ExecutionTraces, got {item!r}"
            )
        results.append(session.verdict(timeout_s=timeout_s))
    return results
