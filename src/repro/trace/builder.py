"""Incremental construction of execution traces.

The :class:`TraceBuilder` is the glue between the concrete interpreter (or
any other producer of events) and :class:`repro.trace.trace.ExecutionTrace`:
it numbers events globally and per thread, hands out the unique send / receive
identifiers the paper's analysis relies on, and creates the fresh value
symbols for receive operations.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mcapi.endpoint import EndpointId
from repro.smt.terms import IntVar, Term
from repro.trace.events import (
    AssertEvent,
    AssignEvent,
    BranchEvent,
    LocalEvent,
    ReceiveEvent,
    ReceiveInitEvent,
    SendEvent,
    TraceEvent,
    WaitEvent,
)
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import TraceError

__all__ = ["TraceBuilder"]


class TraceBuilder:
    """Accumulates trace events with consistent numbering."""

    def __init__(self, name: str = "trace") -> None:
        self._trace = ExecutionTrace(name=name)
        self._thread_indices: Dict[str, int] = {}
        self._next_send_id = 0
        self._next_recv_id = 0

    # ------------------------------------------------------------------ helpers

    def _next_ids(self, thread: str) -> Dict[str, int]:
        event_id = len(self._trace)
        thread_index = self._thread_indices.get(thread, 0)
        self._thread_indices[thread] = thread_index + 1
        return {"event_id": event_id, "thread": thread, "thread_index": thread_index}

    def fresh_recv_symbol(self, recv_id: int) -> str:
        """The canonical symbol name for receive ``recv_id``'s value."""
        return f"recv_val_{recv_id}"

    def recv_symbol_term(self, recv_id: int) -> Term:
        return IntVar(self.fresh_recv_symbol(recv_id))

    # ------------------------------------------------------------------ event factories

    def send(
        self,
        thread: str,
        source: EndpointId,
        destination: EndpointId,
        payload_value: object,
        payload_expr: Optional[Term] = None,
        blocking: bool = True,
        message_id: Optional[int] = None,
    ) -> SendEvent:
        event = SendEvent(
            **self._next_ids(thread),
            send_id=self._next_send_id,
            source=source,
            destination=destination,
            payload_value=payload_value,
            payload_expr=payload_expr,
            blocking=blocking,
            message_id=message_id,
        )
        self._next_send_id += 1
        self._trace.append(event)
        return event

    def receive(
        self,
        thread: str,
        endpoint: EndpointId,
        target_variable: Optional[str] = None,
        observed_value: object = None,
        observed_send_id: Optional[int] = None,
    ) -> ReceiveEvent:
        recv_id = self._next_recv_id
        self._next_recv_id += 1
        event = ReceiveEvent(
            **self._next_ids(thread),
            recv_id=recv_id,
            endpoint=endpoint,
            target_variable=target_variable,
            value_symbol=self.fresh_recv_symbol(recv_id),
            observed_value=observed_value,
            observed_send_id=observed_send_id,
            blocking=True,
        )
        self._trace.append(event)
        return event

    def receive_init(
        self,
        thread: str,
        endpoint: EndpointId,
        target_variable: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> ReceiveInitEvent:
        recv_id = self._next_recv_id
        self._next_recv_id += 1
        event = ReceiveInitEvent(
            **self._next_ids(thread),
            recv_id=recv_id,
            endpoint=endpoint,
            target_variable=target_variable,
            value_symbol=self.fresh_recv_symbol(recv_id),
            request_id=request_id,
        )
        self._trace.append(event)
        return event

    def wait(
        self,
        thread: str,
        recv_id: int,
        request_id: Optional[int] = None,
        observed_value: object = None,
        observed_send_id: Optional[int] = None,
    ) -> WaitEvent:
        event = WaitEvent(
            **self._next_ids(thread),
            recv_id=recv_id,
            request_id=request_id,
            observed_value=observed_value,
            observed_send_id=observed_send_id,
        )
        self._trace.append(event)
        return event

    def assign(
        self,
        thread: str,
        variable: str,
        expression: Optional[Term],
        observed_value: object = None,
        value_symbol: Optional[str] = None,
    ) -> AssignEvent:
        event = AssignEvent(
            **self._next_ids(thread),
            variable=variable,
            expression=expression,
            observed_value=observed_value,
            value_symbol=value_symbol,
        )
        self._trace.append(event)
        return event

    def branch(
        self,
        thread: str,
        condition: Optional[Term],
        outcome: bool,
        source_location: Optional[str] = None,
    ) -> BranchEvent:
        event = BranchEvent(
            **self._next_ids(thread),
            condition=condition,
            outcome=outcome,
            source_location=source_location,
        )
        self._trace.append(event)
        return event

    def assertion(
        self,
        thread: str,
        condition: Optional[Term],
        observed_outcome: bool,
        label: Optional[str] = None,
    ) -> AssertEvent:
        event = AssertEvent(
            **self._next_ids(thread),
            condition=condition,
            observed_outcome=observed_outcome,
            label=label,
        )
        self._trace.append(event)
        return event

    def local(self, thread: str, description: str) -> LocalEvent:
        event = LocalEvent(**self._next_ids(thread), description=description)
        self._trace.append(event)
        return event

    # ------------------------------------------------------------------ output

    def build(self, validate: bool = True) -> ExecutionTrace:
        """Return the accumulated trace (optionally validating it first)."""
        if validate:
            self._trace.validate()
        return self._trace

    @property
    def trace(self) -> ExecutionTrace:
        """The trace being built (not validated)."""
        return self._trace
