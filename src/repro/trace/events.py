"""Execution-trace events.

A trace is the sequence of *operations* one concrete run of an MCAPI program
performed.  Each event records both the **concrete** outcome observed in the
run (payload values, branch outcomes, which send a receive happened to match)
and the **symbolic** data the encoder needs (expressions over the symbols
introduced for received values).

Symbolic expressions are represented directly as SMT terms
(:class:`repro.smt.terms.Term`) over:

* one integer symbol per receive operation (``recv_val_<k>``) — the value the
  receive *will* obtain in whatever execution the SMT solver considers, and
* the integer constants the program manipulates.

This is what lets the single recorded trace stand for *every* execution that
follows the same sequence of branch outcomes (paper §1): the concrete values
are only used for reporting, while the constraints are built from the
symbolic expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mcapi.endpoint import EndpointId
from repro.smt.terms import Term

__all__ = [
    "TraceEvent",
    "SendEvent",
    "ReceiveEvent",
    "ReceiveInitEvent",
    "WaitEvent",
    "AssignEvent",
    "BranchEvent",
    "AssertEvent",
    "LocalEvent",
]


@dataclass
class TraceEvent:
    """Base class for all trace events.

    Attributes
    ----------
    event_id:
        Position of the event in the global trace (0-based).
    thread:
        Name of the thread that performed the operation.
    thread_index:
        Position of the event within its thread (0-based); consecutive
        ``thread_index`` values define the program order the encoder asserts.
    """

    event_id: int
    thread: str
    thread_index: int

    @property
    def kind(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return f"[{self.event_id}] {self.thread}#{self.thread_index} {self.kind}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "event_id": self.event_id,
            "thread": self.thread,
            "thread_index": self.thread_index,
        }


@dataclass
class SendEvent(TraceEvent):
    """A (blocking or non-blocking) message send.

    ``send_id`` is the unique identifier the trace analysis assigns to every
    send operation for use in the SMT problem (paper §2).
    """

    send_id: int = 0
    source: EndpointId = EndpointId(0, 0)
    destination: EndpointId = EndpointId(0, 0)
    payload_value: object = None
    payload_expr: Optional[Term] = None
    blocking: bool = True
    message_id: Optional[int] = None

    def describe(self) -> str:
        return (
            f"{super().describe()} send#{self.send_id} "
            f"{self.source}->{self.destination} value={self.payload_value!r}"
        )

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "send_id": self.send_id,
                "source": [self.source.node, self.source.port],
                "destination": [self.destination.node, self.destination.port],
                "payload_value": self.payload_value,
                "payload_expr": str(self.payload_expr) if self.payload_expr is not None else None,
                "blocking": self.blocking,
                "message_id": self.message_id,
            }
        )
        return data


@dataclass
class ReceiveEvent(TraceEvent):
    """A blocking receive that obtained a message in the recorded run."""

    recv_id: int = 0
    endpoint: EndpointId = EndpointId(0, 0)
    #: Name of the local variable the received value was stored into.
    target_variable: Optional[str] = None
    #: Fresh symbol standing for the received value in the SMT problem.
    value_symbol: Optional[str] = None
    #: Concrete value obtained in the recorded run (reporting only).
    observed_value: object = None
    #: ``send_id`` of the send this receive matched in the recorded run
    #: (reporting only; the SMT problem re-decides the matching).
    observed_send_id: Optional[int] = None
    blocking: bool = True

    def describe(self) -> str:
        return (
            f"{super().describe()} recv#{self.recv_id} at {self.endpoint} "
            f"-> {self.target_variable} (observed {self.observed_value!r})"
        )

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "recv_id": self.recv_id,
                "endpoint": [self.endpoint.node, self.endpoint.port],
                "target_variable": self.target_variable,
                "value_symbol": self.value_symbol,
                "observed_value": self.observed_value,
                "observed_send_id": self.observed_send_id,
                "blocking": self.blocking,
            }
        )
        return data


@dataclass
class ReceiveInitEvent(TraceEvent):
    """Issue of a non-blocking receive (``mcapi_msg_recv_i``).

    The receive's *completion* is the matching :class:`WaitEvent`; the paper's
    ``match`` predicate uses the wait's position for the happens-before
    constraint, exactly as §2 describes.
    """

    recv_id: int = 0
    endpoint: EndpointId = EndpointId(0, 0)
    target_variable: Optional[str] = None
    value_symbol: Optional[str] = None
    request_id: Optional[int] = None

    def describe(self) -> str:
        return (
            f"{super().describe()} recv_i#{self.recv_id} at {self.endpoint} "
            f"-> {self.target_variable}"
        )

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "recv_id": self.recv_id,
                "endpoint": [self.endpoint.node, self.endpoint.port],
                "target_variable": self.target_variable,
                "value_symbol": self.value_symbol,
                "request_id": self.request_id,
            }
        )
        return data


@dataclass
class WaitEvent(TraceEvent):
    """A ``mcapi_wait`` on a previously issued non-blocking receive."""

    recv_id: int = 0
    request_id: Optional[int] = None
    observed_value: object = None
    observed_send_id: Optional[int] = None

    def describe(self) -> str:
        return f"{super().describe()} wait(recv#{self.recv_id})"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "recv_id": self.recv_id,
                "request_id": self.request_id,
                "observed_value": self.observed_value,
                "observed_send_id": self.observed_send_id,
            }
        )
        return data


@dataclass
class AssignEvent(TraceEvent):
    """A local assignment ``variable := expression``."""

    variable: str = ""
    expression: Optional[Term] = None
    observed_value: object = None
    #: Fresh symbol naming this assignment's value in the SMT problem (SSA).
    value_symbol: Optional[str] = None

    def describe(self) -> str:
        return f"{super().describe()} {self.variable} := {self.expression}"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "variable": self.variable,
                "expression": str(self.expression) if self.expression is not None else None,
                "observed_value": self.observed_value,
                "value_symbol": self.value_symbol,
            }
        )
        return data


@dataclass
class BranchEvent(TraceEvent):
    """A conditional branch together with the outcome taken in the run.

    The encoder asserts the condition (or its negation) so that the symbolic
    executions follow *the same sequence of conditional branch outcomes* as
    the recorded trace — the path-constrained semantics of the paper.
    """

    condition: Optional[Term] = None
    outcome: bool = True
    source_location: Optional[str] = None

    def describe(self) -> str:
        return f"{super().describe()} branch({self.condition}) -> {self.outcome}"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "condition": str(self.condition) if self.condition is not None else None,
                "outcome": self.outcome,
                "source_location": self.source_location,
            }
        )
        return data


@dataclass
class AssertEvent(TraceEvent):
    """A safety assertion evaluated by the program.

    The negation of the conjunction of all assertion conditions forms
    ``PProp`` in the paper's formula.
    """

    condition: Optional[Term] = None
    observed_outcome: bool = True
    label: Optional[str] = None

    def describe(self) -> str:
        return f"{super().describe()} assert({self.condition}) [{self.label}]"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data.update(
            {
                "condition": str(self.condition) if self.condition is not None else None,
                "observed_outcome": self.observed_outcome,
                "label": self.label,
            }
        )
        return data


@dataclass
class LocalEvent(TraceEvent):
    """Any other thread-local effect (print, no-op, barrier annotation)."""

    description: str = ""

    def describe(self) -> str:
        return f"{super().describe()} {self.description}"

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["description"] = self.description
        return data
