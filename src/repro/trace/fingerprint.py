"""Canonical, order-independent fingerprints of execution traces.

The paper's encoding is built entirely from the *per-thread* structure of a
trace: program order, the communication operations with their endpoints, the
symbolic expressions over received values, and the recorded branch outcomes.
The global interleaving in which the recording scheduler happened to run the
threads — and every identifier assigned in that global order (``event_id``,
``send_id``, ``recv_id``, ``recv_val_<k>`` symbols) — is irrelevant to the
generated SMT problem up to a consistent renaming, and therefore irrelevant
to every verdict derived from it.

:func:`trace_fingerprint` hashes exactly that invariant core, which makes it
the cache key of :mod:`repro.verification.cache`:

**Stability guarantees**

* *Deterministic*: the fingerprint is a SHA-256 of a canonical rendering —
  no ``id()``, no dict iteration order, no ``PYTHONHASHSEED`` dependence.
  The same trace hashes identically across processes, platforms and runs,
  so fingerprints are safe to persist in on-disk caches.
* *Order-independent*: two recordings of the same program that differ only
  in the global interleaving (and hence in event/send/recv numbering and
  value-symbol names) produce the **same** fingerprint, provided they took
  the same conditional branch outcomes.  Threads are visited in sorted-name
  order and events in per-thread program order; all trace-local identifiers
  are canonically renumbered by that traversal.
* *Semantic, not cosmetic*: concrete observed values, observed matchings
  and assertion labels are **excluded** — they are reporting artefacts of
  the particular recording and do not influence the encoded problem.
  Branch *outcomes* are included (the analysis is path-constrained), as are
  payload expressions, endpoints and blocking/non-blocking modes.

Two traces with equal fingerprints yield isomorphic SMT problems: same
verdict, same feasibility, and matchings that correspond under the
``(thread, thread_index)`` renaming that
:func:`repro.baselines.explicit.canonical_matching` uses.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Optional

from repro.mcapi.endpoint import EndpointId
from repro.trace.events import (
    AssertEvent,
    AssignEvent,
    BranchEvent,
    LocalEvent,
    ReceiveEvent,
    ReceiveInitEvent,
    SendEvent,
    WaitEvent,
)
from repro.trace.trace import ExecutionTrace

__all__ = ["trace_fingerprint", "canonical_form"]


def _symbol_renaming(trace: ExecutionTrace) -> Dict[str, str]:
    """Map every value symbol to a canonical name by per-thread position.

    Symbols (``recv_val_<k>``, assignment SSA names) are allocated in global
    execution order by the interpreter, so the raw names differ between
    interleavings of the same program.  Renaming them by ``(sorted thread,
    thread_index)`` makes the rendering interleaving-independent.
    """
    renaming: Dict[str, str] = {}
    for thread in sorted(trace.threads()):
        for event in trace.events_of_thread(thread):
            symbol = getattr(event, "value_symbol", None)
            if symbol and symbol not in renaming:
                renaming[symbol] = f"sym_{thread}_{event.thread_index}"
    return renaming


def _endpoint_naming(trace: ExecutionTrace) -> Dict[EndpointId, str]:
    """Name endpoints by their receiving thread, falling back to raw ids.

    An endpoint's identity in the encoding is "where do these sends race" —
    the owning thread, not the numeric ``(node, port)`` pair the runtime
    happened to allocate (which depends on thread creation order).
    """
    naming: Dict[EndpointId, str] = {}
    for event in trace:
        if isinstance(event, (ReceiveEvent, ReceiveInitEvent)):
            naming.setdefault(event.endpoint, f"ep@{event.thread}")
    for event in trace.sends():
        naming.setdefault(event.source, f"ep@{event.thread}")
        naming.setdefault(
            event.destination,
            f"ep#{event.destination.node}:{event.destination.port}",
        )
    return naming


def _rename_expression(expr, renaming: Dict[str, str]) -> Optional[str]:
    """Render a term with canonical symbol names (None stays None)."""
    if expr is None:
        return None
    text = str(expr)
    if not renaming:
        return text
    pattern = re.compile(
        "|".join(re.escape(name) for name in sorted(renaming, key=len, reverse=True))
    )
    return pattern.sub(lambda match: renaming[match.group(0)], text)


def canonical_form(trace: ExecutionTrace) -> List[List[object]]:
    """The canonical structure :func:`trace_fingerprint` hashes.

    One entry per thread (threads in sorted-name order), each a list of
    per-event tuples in program order.  Exposed separately so tests and
    debugging sessions can diff two traces' canonical forms directly.
    """
    renaming = _symbol_renaming(trace)
    endpoints = _endpoint_naming(trace)
    form: List[List[object]] = []
    for thread in sorted(trace.threads()):
        rows: List[object] = [("thread", thread)]
        for event in trace.events_of_thread(thread):
            if isinstance(event, SendEvent):
                rows.append(
                    (
                        "send",
                        endpoints.get(event.source, "?"),
                        endpoints.get(event.destination, "?"),
                        _rename_expression(event.payload_expr, renaming),
                        event.blocking,
                    )
                )
            elif isinstance(event, ReceiveEvent):
                rows.append(
                    (
                        "recv",
                        endpoints.get(event.endpoint, "?"),
                        renaming.get(event.value_symbol or "", None),
                    )
                )
            elif isinstance(event, ReceiveInitEvent):
                rows.append(
                    (
                        "recv_i",
                        endpoints.get(event.endpoint, "?"),
                        renaming.get(event.value_symbol or "", None),
                    )
                )
            elif isinstance(event, WaitEvent):
                # Identify the waited-on receive by its issue position in
                # this thread (recv_ids are interleaving-dependent).
                issue_index = None
                for other in trace.events_of_thread(event.thread):
                    if (
                        isinstance(other, ReceiveInitEvent)
                        and other.recv_id == event.recv_id
                    ):
                        issue_index = other.thread_index
                        break
                rows.append(("wait", issue_index))
            elif isinstance(event, AssignEvent):
                rows.append(
                    (
                        "assign",
                        renaming.get(event.value_symbol or "", None),
                        _rename_expression(event.expression, renaming),
                    )
                )
            elif isinstance(event, BranchEvent):
                rows.append(
                    (
                        "branch",
                        _rename_expression(event.condition, renaming),
                        event.outcome,
                    )
                )
            elif isinstance(event, AssertEvent):
                rows.append(("assert", _rename_expression(event.condition, renaming)))
            elif isinstance(event, LocalEvent):
                rows.append(("local",))
            else:  # future event kinds: hash their class name conservatively
                rows.append((event.kind,))
        form.append(rows)
    return form


def trace_fingerprint(trace: ExecutionTrace) -> str:
    """A SHA-256 hex digest of the trace's canonical form.

    See the module docstring for the exact stability guarantees.  Traces of
    the same program recorded under different schedulers/seeds fingerprint
    identically as long as they followed the same branch outcomes, which is
    what lets :mod:`repro.verification.cache` answer repeated traces in a
    batch without solving.
    """
    rendering = json.dumps(canonical_form(trace), default=list, sort_keys=False)
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()
