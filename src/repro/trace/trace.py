"""The execution trace container and its queries.

An :class:`ExecutionTrace` is the single input of the paper's technique: one
concrete interleaved run of an MCAPI program, recorded as a sequence of
:mod:`repro.trace.events`.  The trace offers the projections the rest of the
pipeline needs:

* per-thread program order (for ``POrder``),
* the send and receive operations with their endpoints (for match-pair
  generation and ``PMatchPairs`` / ``PUnique``),
* assignments and branch outcomes (for ``PEvents``),
* assertions (for ``PProp``),
* JSON export for storing traces alongside benchmark results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mcapi.endpoint import EndpointId
from repro.trace.events import (
    AssertEvent,
    AssignEvent,
    BranchEvent,
    ReceiveEvent,
    ReceiveInitEvent,
    SendEvent,
    TraceEvent,
    WaitEvent,
)
from repro.utils.errors import TraceError

__all__ = ["ExecutionTrace", "ReceiveOperation"]


@dataclass(frozen=True)
class ReceiveOperation:
    """A logical receive operation in the trace.

    Blocking receives consist of a single :class:`ReceiveEvent`; non-blocking
    receives consist of a :class:`ReceiveInitEvent` plus the
    :class:`WaitEvent` that waits for its completion.  The paper's ``match``
    predicate needs exactly this pairing: for non-blocking receives the
    happens-before constraint refers to the *wait*, not the issue.
    """

    recv_id: int
    thread: str
    endpoint: EndpointId
    value_symbol: str
    issue_event_id: int
    completion_event_id: int
    blocking: bool
    observed_value: object = None
    observed_send_id: Optional[int] = None

    @property
    def is_nonblocking(self) -> bool:
        return not self.blocking


class ExecutionTrace:
    """An ordered list of trace events with convenience queries."""

    def __init__(self, events: Optional[Sequence[TraceEvent]] = None, name: str = "trace") -> None:
        self.name = name
        self._events: List[TraceEvent] = []
        if events:
            for event in events:
                self.append(event)

    # ------------------------------------------------------------------ building

    def append(self, event: TraceEvent) -> None:
        if event.event_id != len(self._events):
            raise TraceError(
                f"event_id {event.event_id} does not match position {len(self._events)}"
            )
        self._events.append(event)

    # ------------------------------------------------------------------ basic access

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def threads(self) -> List[str]:
        """Thread names in order of first appearance."""
        seen: List[str] = []
        for event in self._events:
            if event.thread not in seen:
                seen.append(event.thread)
        return seen

    def events_of_thread(self, thread: str) -> List[TraceEvent]:
        """Events of one thread, in program order."""
        events = [e for e in self._events if e.thread == thread]
        return sorted(events, key=lambda e: e.thread_index)

    # ------------------------------------------------------------------ typed views

    def sends(self) -> List[SendEvent]:
        return [e for e in self._events if isinstance(e, SendEvent)]

    def receive_events(self) -> List[ReceiveEvent]:
        return [e for e in self._events if isinstance(e, ReceiveEvent)]

    def receive_init_events(self) -> List[ReceiveInitEvent]:
        return [e for e in self._events if isinstance(e, ReceiveInitEvent)]

    def wait_events(self) -> List[WaitEvent]:
        return [e for e in self._events if isinstance(e, WaitEvent)]

    def assignments(self) -> List[AssignEvent]:
        return [e for e in self._events if isinstance(e, AssignEvent)]

    def branches(self) -> List[BranchEvent]:
        return [e for e in self._events if isinstance(e, BranchEvent)]

    def assertions(self) -> List[AssertEvent]:
        return [e for e in self._events if isinstance(e, AssertEvent)]

    def send_by_id(self, send_id: int) -> SendEvent:
        for event in self.sends():
            if event.send_id == send_id:
                return event
        raise TraceError(f"no send with id {send_id}")

    # ------------------------------------------------------------------ receives

    def receive_operations(self) -> List[ReceiveOperation]:
        """All logical receive operations (blocking and non-blocking)."""
        operations: List[ReceiveOperation] = []
        for event in self._events:
            if isinstance(event, ReceiveEvent):
                if event.value_symbol is None:
                    raise TraceError(f"receive event {event.event_id} has no value symbol")
                operations.append(
                    ReceiveOperation(
                        recv_id=event.recv_id,
                        thread=event.thread,
                        endpoint=event.endpoint,
                        value_symbol=event.value_symbol,
                        issue_event_id=event.event_id,
                        completion_event_id=event.event_id,
                        blocking=True,
                        observed_value=event.observed_value,
                        observed_send_id=event.observed_send_id,
                    )
                )
            elif isinstance(event, ReceiveInitEvent):
                wait = self._find_wait_for(event)
                if event.value_symbol is None:
                    raise TraceError(f"receive event {event.event_id} has no value symbol")
                operations.append(
                    ReceiveOperation(
                        recv_id=event.recv_id,
                        thread=event.thread,
                        endpoint=event.endpoint,
                        value_symbol=event.value_symbol,
                        issue_event_id=event.event_id,
                        completion_event_id=wait.event_id if wait else event.event_id,
                        blocking=False,
                        observed_value=wait.observed_value if wait else None,
                        observed_send_id=wait.observed_send_id if wait else None,
                    )
                )
        return sorted(operations, key=lambda op: op.recv_id)

    def _find_wait_for(self, init: ReceiveInitEvent) -> Optional[WaitEvent]:
        for event in self._events:
            if isinstance(event, WaitEvent) and event.recv_id == init.recv_id:
                return event
        return None

    # ------------------------------------------------------------------ structure

    def program_order_pairs(self) -> List[Tuple[int, int]]:
        """Pairs of event ids ``(a, b)`` with ``a`` immediately before ``b``
        in some thread's program order."""
        pairs: List[Tuple[int, int]] = []
        for thread in self.threads():
            events = self.events_of_thread(thread)
            for before, after in zip(events, events[1:]):
                pairs.append((before.event_id, after.event_id))
        return pairs

    def endpoints(self) -> List[EndpointId]:
        """All endpoints mentioned by sends and receives."""
        seen: Dict[EndpointId, None] = {}
        for event in self._events:
            if isinstance(event, SendEvent):
                seen.setdefault(event.source)
                seen.setdefault(event.destination)
            elif isinstance(event, (ReceiveEvent, ReceiveInitEvent)):
                seen.setdefault(event.endpoint)
        return list(seen)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`TraceError` on problems."""
        send_ids = [s.send_id for s in self.sends()]
        if len(send_ids) != len(set(send_ids)):
            raise TraceError("duplicate send identifiers in trace")
        recv_ops = self.receive_operations()
        recv_ids = [r.recv_id for r in recv_ops]
        if len(recv_ids) != len(set(recv_ids)):
            raise TraceError("duplicate receive identifiers in trace")
        symbols = [r.value_symbol for r in recv_ops]
        if len(symbols) != len(set(symbols)):
            raise TraceError("duplicate receive value symbols in trace")
        for init in self.receive_init_events():
            if self._find_wait_for(init) is None:
                raise TraceError(
                    f"non-blocking receive {init.recv_id} has no matching wait"
                )
        # Per-thread indices must be dense and ordered.
        for thread in self.threads():
            indices = [e.thread_index for e in self.events_of_thread(thread)]
            if indices != list(range(len(indices))):
                raise TraceError(f"thread {thread} has non-contiguous program order")

    # ------------------------------------------------------------------ reporting

    def summary(self) -> Dict[str, int]:
        return {
            "events": len(self._events),
            "threads": len(self.threads()),
            "sends": len(self.sends()),
            "receives": len(self.receive_operations()),
            "branches": len(self.branches()),
            "assertions": len(self.assertions()),
        }

    def pretty(self) -> str:
        """A human-readable dump of the trace."""
        lines = [f"Trace {self.name!r} ({len(self)} events)"]
        lines.extend("  " + event.describe() for event in self._events)
        return "\n".join(lines)

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "events": [e.to_dict() for e in self._events]}

    def to_json(self, indent: int = 2) -> str:
        """Serialise to JSON.

        Symbolic expressions are stored as their s-expression rendering; the
        JSON form is intended for archiving and inspection (the encoder works
        from live traces).
        """
        return json.dumps(self.to_dict(), indent=indent, default=str)
