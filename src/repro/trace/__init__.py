"""Execution traces: events, the trace container and the trace builder."""

from repro.trace.events import (
    AssertEvent,
    AssignEvent,
    BranchEvent,
    LocalEvent,
    ReceiveEvent,
    ReceiveInitEvent,
    SendEvent,
    TraceEvent,
    WaitEvent,
)
from repro.trace.trace import ExecutionTrace, ReceiveOperation
from repro.trace.builder import TraceBuilder
from repro.trace.fingerprint import canonical_form, trace_fingerprint

__all__ = [
    "AssertEvent",
    "AssignEvent",
    "BranchEvent",
    "LocalEvent",
    "ReceiveEvent",
    "ReceiveInitEvent",
    "SendEvent",
    "TraceEvent",
    "WaitEvent",
    "ExecutionTrace",
    "ReceiveOperation",
    "TraceBuilder",
    "canonical_form",
    "trace_fingerprint",
]
