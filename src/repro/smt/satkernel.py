"""Build and load the optional native propagation kernel.

The flat-memory SAT core keeps its hot state in int32 buffers (the clause
arena and the per-variable assignment columns are ``array('i')``), which
makes the propagation inner loop portable to C verbatim.  This module
compiles ``_satkernel.c`` with the system C compiler on first use, caches
the shared object next to the source keyed by a content hash, and exposes
it through :mod:`ctypes`.

Everything degrades gracefully: no compiler, a failed compile, a
read-only tree (falls back to a per-user temp dir), or
``REPRO_SAT_KERNEL=0`` in the environment all simply yield ``None`` from
:func:`load`, and :class:`repro.smt.sat.SatSolver` runs its pure-Python
propagation loop instead.  The two loops are maintained in lockstep and
are asserted bit-identical by the flat-core differential tests, so which
one runs is invisible in every observable — only the wall clock differs.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

from repro import faults

__all__ = ["load", "kernel_source", "unavailable_reason"]

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_satkernel.c")

_loaded = False
_lib: Optional[ctypes.CDLL] = None
_reason: Optional[str] = None


class PropCtx(ctypes.Structure):
    """Mirror of the C ``PropCtx``; see ``_satkernel.c`` for field docs."""

    _fields_ = [
        ("arena", ctypes.c_void_p),
        ("assign", ctypes.c_void_p),
        ("level", ctypes.c_void_p),
        ("reason", ctypes.c_void_p),
        ("phase", ctypes.c_void_p),
        ("queue", ctypes.c_void_p),
        ("queue_len", ctypes.c_int32),
        ("qhead", ctypes.c_int32),
        ("dl", ctypes.c_int32),
        ("props", ctypes.c_int32),
        ("conflict_flit", ctypes.c_int32),
    ]


def kernel_source() -> str:
    return _SOURCE


def unavailable_reason() -> Optional[str]:
    """Why the kernel is not loaded (None while it is, or before load())."""
    return _reason


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build(cc: str, source: str, out_path: str) -> None:
    tmp_path = out_path + ".tmp"
    subprocess.run(
        [cc, "-O2", "-fPIC", "-shared", "-o", tmp_path, source],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp_path, out_path)  # atomic under concurrent builders


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    i32 = ctypes.c_int32
    lib.sk_wt_new.argtypes = [i32]
    lib.sk_wt_new.restype = ctypes.c_void_p
    lib.sk_wt_free.argtypes = [ctypes.c_void_p]
    lib.sk_wt_free.restype = None
    lib.sk_wt_ensure.argtypes = [ctypes.c_void_p, i32]
    lib.sk_wt_ensure.restype = None
    lib.sk_wt_push.argtypes = [ctypes.c_void_p, i32, i32, i32]
    lib.sk_wt_push.restype = None
    lib.sk_wt_len.argtypes = [ctypes.c_void_p, i32]
    lib.sk_wt_len.restype = i32
    lib.sk_wt_copy.argtypes = [ctypes.c_void_p, i32, ctypes.c_void_p]
    lib.sk_wt_copy.restype = None
    lib.sk_wt_clear.argtypes = [ctypes.c_void_p]
    lib.sk_wt_clear.restype = None
    lib.sk_wt_remap.argtypes = [ctypes.c_void_p, ctypes.c_void_p, i32]
    lib.sk_wt_remap.restype = None
    lib.sk_propagate.argtypes = [ctypes.c_void_p, ctypes.POINTER(PropCtx)]
    lib.sk_propagate.restype = i32
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The kernel library, building it on first call; None if unavailable."""
    global _loaded, _lib, _reason
    if faults.ACTIVE is not None and faults.draw("kernel.load") is not None:
        # An injected load failure behaves exactly like a missing compiler:
        # this *call* yields no kernel and the caller runs pure Python.
        # Deliberately before the memoization check so already-loaded
        # libraries can also be withheld from new solvers.
        return None
    if _loaded:
        return _lib
    _loaded = True
    if os.environ.get("REPRO_SAT_KERNEL", "").lower() in ("0", "off", "no"):
        _reason = "disabled by REPRO_SAT_KERNEL"
        return None
    try:
        with open(_SOURCE, "rb") as handle:
            source_bytes = handle.read()
    except OSError as exc:
        _reason = f"kernel source unreadable: {exc}"
        return None
    tag = hashlib.sha256(source_bytes).hexdigest()[:12]
    so_name = f"_satkernel-{tag}.so"
    candidates = [
        os.path.join(os.path.dirname(_SOURCE), so_name),
        os.path.join(
            tempfile.gettempdir(), f"repro-satkernel-{os.getuid()}", so_name
        ),
    ]
    for out_path in candidates:
        if not os.path.exists(out_path):
            cc = _compiler()
            if cc is None:
                _reason = "no C compiler on PATH"
                return None
            try:
                os.makedirs(os.path.dirname(out_path), exist_ok=True)
                _build(cc, _SOURCE, out_path)
            except (OSError, subprocess.SubprocessError) as exc:
                _reason = f"kernel build failed: {exc}"
                continue
        try:
            _lib = _declare(ctypes.CDLL(out_path))
            _reason = None
            return _lib
        except OSError as exc:
            _reason = f"kernel load failed: {exc}"
    return None
