"""Pluggable solver backends behind a common protocol.

The verification layer never talks to a concrete solver class; it talks to a
:class:`SolverBackend` — the minimal incremental interface (``add`` /
``push`` / ``pop`` / ``check`` with assumptions / ``model``) that both the
session API and the :class:`repro.smt.solver.Solver` facade are written
against.  Two implementations ship in-tree:

* :class:`DpllTBackend` — the default.  Wraps
  :class:`~repro.smt.dpllt.IncrementalDpllTEngine`, which keeps its SAT
  core, Tseitin cache and learned theory lemmas alive across ``check``
  calls instead of rebuilding the engine per query.
* :class:`SmtLibProcessBackend` — pipes the SMT-LIB v2 rendering of the
  assertion set to an external solver binary (z3, cvc5, yices-smt2, ...)
  named by the ``REPRO_SMT_SOLVER`` environment variable or an explicit
  ``command``.  This is the seam the paper's tool used for Yices; when no
  binary is configured the backend reports itself unavailable and callers
  skip it gracefully.

Backends are resolved by name through a registry so that deployments can
plug in their own (:func:`register_backend`).
"""

from __future__ import annotations

import os
import re
import select
import shlex
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

try:  # Protocol is 3.8+; fall back to a plain base class elsewhere.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient pythons only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro import faults
from repro.smt.dpllt import CheckResult, IncrementalDpllTEngine
from repro.smt.models import Model
from repro.smt.sat import DEFAULT_REDUCE_BASE, DEFAULT_THEORY_BUMP
from repro.smt.smtlib import _collect_declarations, to_smtlib
from repro.smt.terms import Term, free_variables
from repro.utils.errors import (
    BackendUnavailableError,
    SolverError,
    UnknownBackendError,
)

__all__ = [
    "SolverBackend",
    "BackendSpec",
    "DpllTBackend",
    "SmtLibProcessBackend",
    "SmtLibPipeBackend",
    "register_backend",
    "create_backend",
    "available_backends",
    "SMTLIB_SOLVER_ENV",
]

#: Environment variable naming the external SMT-LIB solver command.
SMTLIB_SOLVER_ENV = "REPRO_SMT_SOLVER"


@dataclass(frozen=True)
class BackendSpec:
    """A picklable description of how to build a backend.

    Live backends hold solver state (engines, subprocess handles) and must
    never cross a process boundary; worker processes instead receive a
    ``BackendSpec`` — registry name plus construction kwargs — and build
    their own instance with :meth:`create`.  Frozen and hashable so it can
    double as (part of) a cache key.
    """

    name: str = "dpllt"
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(
        cls, spec: Union[str, "BackendSpec", None], **kwargs
    ) -> "BackendSpec":
        """Normalise a registry name / spec / None into a ``BackendSpec``.

        Live backend instances are rejected: they are exactly what this
        type exists to avoid shipping between processes.
        """
        if spec is None:
            spec = DpllTBackend.name
        if isinstance(spec, cls):
            if not kwargs:
                return spec
            merged = dict(spec.kwargs)
            merged.update(kwargs)
            return cls(spec.name, tuple(sorted(merged.items())))
        if isinstance(spec, str):
            return cls(spec, tuple(sorted(kwargs.items())))
        raise SolverError(
            "worker-safe backend construction needs a registry name or "
            f"BackendSpec, not a live backend instance: {spec!r}"
        )

    def create(self) -> "SolverBackend":
        """Build a fresh backend in the calling process."""
        return create_backend(self.name, **dict(self.kwargs))


@runtime_checkable
class SolverBackend(Protocol):
    """The incremental solving interface every backend provides.

    ``check`` takes *assumptions*: Boolean terms that hold for that single
    call only.  Implementations must keep whatever state they can between
    calls — the whole point of the backend seam is that callers may issue
    thousands of checks against one assertion set.
    """

    name: str

    def add(self, *terms: Term) -> None: ...

    def add_all(self, terms: Iterable[Term]) -> None: ...

    def push(self) -> None: ...

    def pop(self) -> None: ...

    def check(self, *assumptions: Term) -> CheckResult: ...

    def model(self) -> Model: ...

    def statistics(self) -> Dict[str, int]: ...


def _validate_assertion(term: Term) -> Term:
    if not isinstance(term, Term):
        raise SolverError(f"backends accept Terms, got {term!r}")
    if not term.sort.is_bool:
        raise SolverError(f"assertions must be Boolean, got sort {term.sort}")
    return term


class DpllTBackend:
    """The in-tree incremental DPLL(T) backend (the default).

    One :class:`~repro.smt.dpllt.IncrementalDpllTEngine` lives for the
    backend's whole lifetime: learned clauses, variable activities, saved
    phases and theory lemmas all carry over from one ``check`` to the next,
    and assumption-scoped queries never disturb the assertion set.
    """

    name = "dpllt"

    def __init__(
        self,
        max_iterations: int = 200_000,
        theory_mode: str = "online",
        reduce_db: bool = True,
        reduce_base: int = DEFAULT_REDUCE_BASE,
        theory_bump: float = DEFAULT_THEORY_BUMP,
        idl_propagation: bool = True,
    ) -> None:
        self._engine = IncrementalDpllTEngine(
            max_iterations=max_iterations,
            theory_mode=theory_mode,
            reduce_db=reduce_db,
            reduce_base=reduce_base,
            theory_bump=theory_bump,
            idl_propagation=idl_propagation,
        )

    @property
    def engine(self) -> IncrementalDpllTEngine:
        """The underlying engine (exposed for tests and diagnostics)."""
        return self._engine

    def add(self, *terms: Term) -> None:
        for term in terms:
            self._engine.add(_validate_assertion(term))

    def add_all(self, terms: Iterable[Term]) -> None:
        self.add(*terms)

    def push(self) -> None:
        self._engine.push()

    def pop(self) -> None:
        self._engine.pop()

    def check(self, *assumptions: Term) -> CheckResult:
        return self._engine.check(*assumptions)

    def model(self) -> Model:
        return self._engine.model()

    def set_idl_propagation(self, enabled: bool) -> None:
        """Pause/resume IDL bound propagation between checks.

        Used by enumeration loops (e.g.
        :meth:`repro.verification.session.VerificationSession.pairings`)
        where streaming SAT models does not profit from the lane.
        """
        self._engine.set_idl_propagation(enabled)

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Bound later checks by a ``time.monotonic`` instant (None clears).

        A check running past the deadline returns
        :data:`~repro.smt.dpllt.CheckResult.UNKNOWN`; learned state
        survives, so a retry with a larger budget starts warm.
        """
        self._engine.set_deadline(deadline)

    def statistics(self) -> Dict[str, int]:
        if self._engine.total_checks == 0:
            return {}
        stats = self._engine.stats.as_dict()
        stats["checks"] = self._engine.total_checks
        stats["theory_mode"] = self._engine.theory_mode
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DpllTBackend(checks={self._engine.total_checks})"


# ---------------------------------------------------------------------------
# External SMT-LIB process backend
# ---------------------------------------------------------------------------


class _DeadlineExpired(Exception):
    """Internal: the backend deadline lapsed before the check finished."""


class _PipeTimeout(Exception):
    """Internal: no pipe output arrived before the I/O deadline."""


class _PipeClosed(Exception):
    """Internal: the piped solver process died or desynchronised."""


_SEXPR_TOKEN = re.compile(r"\(|\)|[^\s()]+")


def _parse_sexprs(text: str):
    """Parse SMT-LIB output into nested lists of token strings."""
    stack: List[list] = [[]]
    for token in _SEXPR_TOKEN.findall(text):
        if token == "(":
            stack.append([])
        elif token == ")":
            if len(stack) == 1:
                raise SolverError("unbalanced ')' in solver output")
            done = stack.pop()
            stack[-1].append(done)
        else:
            stack[-1].append(token)
    return stack[0]


def _eval_smtlib_value(expr) -> Optional[int]:
    """Evaluate a ground numeric model value like ``5`` or ``(- 5)``."""
    if isinstance(expr, str):
        try:
            return int(expr)
        except ValueError:
            return None
    if isinstance(expr, list) and expr and expr[0] == "-" and len(expr) == 2:
        inner = _eval_smtlib_value(expr[1])
        return None if inner is None else -inner
    return None


def _collect_define_funs(exprs, values: Dict[str, object]) -> None:
    for expr in exprs:
        if not isinstance(expr, list):
            continue
        if expr and expr[0] == "define-fun" and len(expr) >= 5:
            _, name, args, sort = expr[0], expr[1], expr[2], expr[3]
            if args != []:
                continue  # non-nullary function: not a variable value
            body = expr[4]
            if sort == "Bool" and isinstance(body, str):
                values[str(name)] = body == "true"
            elif sort == "Int":
                value = _eval_smtlib_value(body)
                if value is not None:
                    values[str(name)] = value
            # Uninterpreted-sort values are solver-specific; skipped.
        else:
            _collect_define_funs(expr, values)


class SmtLibProcessBackend:
    """Solve by piping SMT-LIB v2 scripts to an external solver process.

    The solver command comes from the ``command`` argument or the
    ``REPRO_SMT_SOLVER`` environment variable (e.g. ``z3``, ``cvc5 -L
    smt2``, ``yices-smt2``).  Every ``check`` writes the current assertion
    set (plus call-scoped assumptions) to a temporary ``.smt2`` file, runs
    the solver on it and parses the verdict and, for SAT, the
    ``(get-model)`` output.

    The process is one-shot per check — external incrementality would need
    a long-lived pipe session — so this backend trades speed for
    cross-checking power: it exists to validate the in-tree engine against
    an industrial solver and to scale past what pure Python can do.
    """

    name = "smtlib"

    def __init__(
        self,
        command: Union[str, Sequence[str], None] = None,
        timeout: float = 60.0,
        max_iterations: Optional[int] = None,  # accepted for factory parity
        theory_mode: Optional[str] = None,  # accepted for factory parity
        reduce_db: Optional[bool] = None,  # accepted for factory parity
        reduce_base: Optional[int] = None,  # accepted for factory parity
        theory_bump: Optional[float] = None,  # accepted for factory parity
        idl_propagation: Optional[bool] = None,  # accepted for factory parity
    ) -> None:
        if command is None:
            command = os.environ.get(SMTLIB_SOLVER_ENV)
        if not command:
            raise BackendUnavailableError(
                "no external SMT solver configured; set the "
                f"{SMTLIB_SOLVER_ENV} environment variable (e.g. to 'z3') or "
                "pass command= explicitly"
            )
        self._command = shlex.split(command) if isinstance(command, str) else list(command)
        if shutil.which(self._command[0]) is None:
            raise BackendUnavailableError(
                f"external SMT solver binary {self._command[0]!r} not found on PATH"
            )
        self._timeout = timeout
        self._deadline: Optional[float] = None
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._last_result: Optional[CheckResult] = None
        self._last_model: Optional[Model] = None
        self._checks = 0

    @classmethod
    def is_available(cls, command: Union[str, Sequence[str], None] = None) -> bool:
        """True when a usable solver command is configured on this host."""
        try:
            cls(command=command)
        except BackendUnavailableError:
            return False
        return True

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Bound later checks by a ``time.monotonic`` instant (None clears).

        A check that cannot finish before the deadline returns
        :data:`~repro.smt.dpllt.CheckResult.UNKNOWN` instead of raising,
        mirroring :meth:`DpllTBackend.set_deadline`.
        """
        self._deadline = deadline

    # -- assertion management --------------------------------------------------

    def add(self, *terms: Term) -> None:
        for term in terms:
            self._assertions.append(_validate_assertion(term))
        self._last_result = None
        self._last_model = None

    def add_all(self, terms: Iterable[Term]) -> None:
        self.add(*terms)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        if not self._scopes:
            raise SolverError("pop without matching push")
        size = self._scopes.pop()
        del self._assertions[size:]
        self._last_result = None
        self._last_model = None

    # -- solving ----------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        terms = self._assertions + [_validate_assertion(a) for a in assumptions]
        script = to_smtlib(terms, get_model=True)
        try:
            output, returncode = self._run(script)
        except _DeadlineExpired:
            self._checks += 1
            self._last_result = CheckResult.UNKNOWN
            self._last_model = None
            return CheckResult.UNKNOWN
        self._checks += 1
        verdict, model = self._parse_output(output, terms, returncode)
        self._last_result = verdict
        self._last_model = model
        return verdict

    def model(self) -> Model:
        if self._last_result is not CheckResult.SAT or self._last_model is None:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._last_model

    def statistics(self) -> Dict[str, int]:
        if self._checks == 0:
            return {}
        return {"external_checks": self._checks}

    # -- internals ----------------------------------------------------------------

    def _run(self, script: str) -> Tuple[str, int]:
        timeout = self._timeout
        if self._deadline is not None:
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                raise _DeadlineExpired()
            timeout = min(timeout, remaining)
        with tempfile.NamedTemporaryFile(
            "w", suffix=".smt2", prefix="repro-", delete=False
        ) as handle:
            handle.write(script)
            path = handle.name
        try:
            proc = subprocess.run(
                self._command + [path],
                capture_output=True,
                text=True,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired as exc:
            if self._deadline is not None and time.monotonic() >= self._deadline:
                raise _DeadlineExpired() from exc
            raise SolverError(
                f"external solver timed out after {self._timeout}s"
            ) from exc
        finally:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - cleanup best effort
                pass
        output = (proc.stdout or "") + ("\n" + proc.stderr if proc.stderr else "")
        return output, proc.returncode

    def _parse_output(self, output: str, terms: Sequence[Term], returncode: int = 0):
        # Find the verdict first.  Error chatter after an 'unknown' answer
        # (e.g. z3/yices printing '(error "model is not available")' for the
        # unconditional (get-model)) must not mask the verdict itself, and
        # some solvers exit nonzero while still printing a usable verdict.
        verdict: Optional[CheckResult] = None
        rest_lines: List[str] = []
        for line in output.splitlines():
            stripped = line.strip()
            if verdict is None and stripped in ("sat", "unsat", "unknown"):
                verdict = CheckResult(stripped)
                continue
            rest_lines.append(line)
        if verdict is None:
            if returncode != 0:
                raise SolverError(
                    f"external solver exited with status {returncode} and no "
                    f"verdict:\n{output.strip() or '(no output)'}"
                )
            raise SolverError(
                f"could not find sat/unsat/unknown in solver output:\n{output.strip()}"
            )
        model: Optional[Model] = None
        if verdict is CheckResult.SAT:
            values: Dict[str, object] = {}
            _collect_define_funs(_parse_sexprs("\n".join(rest_lines)), values)
            names: Dict[str, object] = {}
            for term in terms:
                names.update(free_variables(term))
            if names and not values:
                # 'sat' but no parseable model: defaulting every variable
                # would fabricate a witness, so fail loudly instead.
                raise SolverError(
                    "external solver answered sat but returned no model:\n"
                    + output.strip()
                )
            for name, sort in names.items():
                if name not in values:
                    values[name] = False if getattr(sort, "is_bool", False) else 0
            model = Model(values)  # type: ignore[arg-type]
        return verdict, model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SmtLibProcessBackend({' '.join(self._command)!r})"


# ---------------------------------------------------------------------------
# Pooled SMT-LIB pipe backend
# ---------------------------------------------------------------------------


class SmtLibPipeBackend:
    """Keep one external solver alive and talk SMT-LIB over its stdin pipe.

    Where :class:`SmtLibProcessBackend` pays a process launch plus a full
    script re-parse for every ``check``, this backend holds a single solver
    session open and drives it incrementally: assumption-scoped checks use
    ``(push 1)`` / ``(pop 1)``, and the session is recycled in place with
    ``(reset-assertions)`` after :attr:`recycle_after` checks so solver-side
    garbage (learned lemmas for long-dead scopes, allocator growth) cannot
    accumulate without bound.  ``(set-option :global-declarations true)``
    keeps declarations alive across the recycle, so only assertions replay.

    Synchronisation uses echo markers: every command batch ends with
    ``(echo "repro-sync-N")`` and the reader collects output lines until the
    marker comes back, so error chatter can never desynchronise verdict
    parsing.  A crashed or desynchronised session is restarted and the
    mirrored assertion stack replayed — one retry per check, then the error
    surfaces as a :class:`~repro.utils.errors.SolverError`.
    """

    name = "smtlib-pipe"

    def __init__(
        self,
        command: Union[str, Sequence[str], None] = None,
        timeout: float = 60.0,
        recycle_after: int = 256,
        logic: str = "ALL",
        max_iterations: Optional[int] = None,  # accepted for factory parity
        theory_mode: Optional[str] = None,  # accepted for factory parity
        reduce_db: Optional[bool] = None,  # accepted for factory parity
        reduce_base: Optional[int] = None,  # accepted for factory parity
        theory_bump: Optional[float] = None,  # accepted for factory parity
        idl_propagation: Optional[bool] = None,  # accepted for factory parity
    ) -> None:
        if command is None:
            command = os.environ.get(SMTLIB_SOLVER_ENV)
        if not command:
            raise BackendUnavailableError(
                "no external SMT solver configured; set the "
                f"{SMTLIB_SOLVER_ENV} environment variable (e.g. to 'z3') or "
                "pass command= explicitly"
            )
        self._command = shlex.split(command) if isinstance(command, str) else list(command)
        if shutil.which(self._command[0]) is None:
            raise BackendUnavailableError(
                f"external SMT solver binary {self._command[0]!r} not found on PATH"
            )
        self._timeout = timeout
        self._recycle_after = recycle_after
        self._logic = logic
        self._deadline: Optional[float] = None
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._declared: Set[str] = set()
        self._proc: Optional[subprocess.Popen] = None
        self._buffer = b""
        self._marker = 0
        self._checks = 0
        self._checks_since_reset = 0
        self._recycles = 0
        self._restarts = 0
        self._last_result: Optional[CheckResult] = None
        self._last_model: Optional[Model] = None

    @classmethod
    def is_available(cls, command: Union[str, Sequence[str], None] = None) -> bool:
        """True when a usable solver command is configured on this host."""
        try:
            cls(command=command)
        except BackendUnavailableError:
            return False
        return True

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Bound later checks by a ``time.monotonic`` instant (None clears).

        A check running past the deadline returns
        :data:`~repro.smt.dpllt.CheckResult.UNKNOWN`; the wedged session is
        discarded, so the next check starts from a fresh replayed process.
        """
        self._deadline = deadline

    # -- assertion management --------------------------------------------------

    def add(self, *terms: Term) -> None:
        added = [_validate_assertion(term) for term in terms]
        self._assertions.extend(added)
        self._last_result = None
        self._last_model = None
        if self._proc is not None:
            try:
                self._write(
                    self._declaration_lines(added)
                    + [f"(assert {term})" for term in added]
                )
            except _PipeClosed:
                self._shutdown()  # replayed lazily at the next check

    def add_all(self, terms: Iterable[Term]) -> None:
        self.add(*terms)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))
        if self._proc is not None:
            try:
                self._write(["(push 1)"])
            except _PipeClosed:
                self._shutdown()

    def pop(self) -> None:
        if not self._scopes:
            raise SolverError("pop without matching push")
        size = self._scopes.pop()
        del self._assertions[size:]
        self._last_result = None
        self._last_model = None
        if self._proc is not None:
            try:
                self._write(["(pop 1)"])
            except _PipeClosed:
                self._shutdown()

    # -- solving ----------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        checked = [_validate_assertion(a) for a in assumptions]
        for attempt in (0, 1):
            try:
                return self._check_once(checked)
            except _PipeClosed:
                self._shutdown()
                self._restarts += 1
                if attempt:
                    raise SolverError(
                        f"external solver {self._command[0]!r} failed twice on "
                        "one check (crashed or produced no verdict)"
                    )
            except _PipeTimeout as exc:
                # A wedged mid-solve session cannot be trusted for reuse.
                self._shutdown()
                if self._deadline is not None and time.monotonic() >= self._deadline:
                    self._checks += 1
                    self._last_result = CheckResult.UNKNOWN
                    self._last_model = None
                    return CheckResult.UNKNOWN
                raise SolverError(
                    f"external solver timed out after {self._timeout}s"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def model(self) -> Model:
        if self._last_result is not CheckResult.SAT or self._last_model is None:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._last_model

    def statistics(self) -> Dict[str, int]:
        if self._checks == 0:
            return {}
        stats = {"external_checks": self._checks}
        if self._recycles:
            stats["pipe_recycles"] = self._recycles
        if self._restarts:
            stats["pipe_restarts"] = self._restarts
        return stats

    def close(self) -> None:
        """Terminate the solver session (restarted on demand by ``check``)."""
        self._shutdown()

    def __del__(self):  # pragma: no cover - interpreter shutdown best effort
        try:
            self._shutdown()
        except Exception:
            pass

    # -- internals ----------------------------------------------------------------

    def _check_once(self, assumptions: List[Term]) -> CheckResult:
        self._ensure_session()
        if faults.ACTIVE is not None:
            rule = faults.draw("pipe.check")
            if rule is not None:
                if rule.kind in ("crash", "exit"):
                    # Kill the real subprocess so the real recovery path
                    # (restart + declaration replay + one retry) runs.
                    self._proc.kill()
                    self._proc.wait()
                else:
                    time.sleep(rule.sleep_s)
        if self._recycle_after and self._checks_since_reset >= self._recycle_after:
            self._soft_reset()
        commands = self._declaration_lines(assumptions)
        commands.append("(push 1)")
        commands.extend(f"(assert {a})" for a in assumptions)
        commands.append("(check-sat)")
        self._write(commands)
        deadline = self._io_deadline()
        verdict: Optional[CheckResult] = None
        for line in self._sync(deadline):
            if verdict is None and line in ("sat", "unsat", "unknown"):
                verdict = CheckResult(line)
        if verdict is None:
            raise _PipeClosed()  # desync: rebuild the session and retry
        model: Optional[Model] = None
        if verdict is CheckResult.SAT:
            self._write(["(get-model)"])
            model = self._parse_model(
                self._sync(deadline), self._assertions + assumptions
            )
        self._write(["(pop 1)"])
        self._checks += 1
        self._checks_since_reset += 1
        self._last_result = verdict
        self._last_model = model
        return verdict

    def _parse_model(self, lines: List[str], terms: Sequence[Term]) -> Model:
        values: Dict[str, object] = {}
        _collect_define_funs(_parse_sexprs("\n".join(lines)), values)
        names: Dict[str, object] = {}
        for term in terms:
            names.update(free_variables(term))
        if names and not values:
            raise SolverError(
                "external solver answered sat but returned no model:\n"
                + "\n".join(lines)
            )
        for name, sort in names.items():
            if name not in values:
                values[name] = False if getattr(sort, "is_bool", False) else 0
        return Model(values)  # type: ignore[arg-type]

    def _declaration_lines(self, terms: Sequence[Term]) -> List[str]:
        variables, sorts, functions = _collect_declarations(list(terms))
        lines: List[str] = []
        for sort in sorts:
            if sort.name not in self._declared:
                self._declared.add(sort.name)
                lines.append(f"(declare-sort {sort.name} 0)")
        for name, sort in variables:
            if name not in self._declared:
                self._declared.add(name)
                lines.append(f"(declare-fun {name} () {sort.name})")
        for name, domain, codomain in functions:
            if name not in self._declared:
                self._declared.add(name)
                domain_str = " ".join(s.name for s in domain)
                lines.append(f"(declare-fun {name} ({domain_str}) {codomain.name})")
        return lines

    def _ensure_session(self) -> None:
        if self._proc is not None and self._proc.poll() is None:
            return
        self._shutdown()
        self._start()

    def _start(self) -> None:
        try:
            self._proc = subprocess.Popen(
                self._command,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
        except OSError as exc:
            raise BackendUnavailableError(
                f"could not start external SMT solver {self._command[0]!r}: {exc}"
            ) from exc
        self._buffer = b""
        self._declared = set()
        self._checks_since_reset = 0
        self._write(
            [
                "(set-option :print-success false)",
                "(set-option :global-declarations true)",
                f"(set-logic {self._logic})",
            ]
        )
        self._replay()

    def _soft_reset(self) -> None:
        self._recycles += 1
        self._checks_since_reset = 0
        # reset-assertions pops every level and drops every assertion, but
        # :global-declarations keeps symbols alive, so only assertions replay.
        self._write(["(reset-assertions)"])
        self._replay()

    def _replay(self) -> None:
        commands = self._declaration_lines(self._assertions)
        prev = 0
        for size in self._scopes:
            commands.extend(f"(assert {t})" for t in self._assertions[prev:size])
            commands.append("(push 1)")
            prev = size
        commands.extend(f"(assert {t})" for t in self._assertions[prev:])
        if commands:
            self._write(commands)

    def _shutdown(self) -> None:
        proc, self._proc = self._proc, None
        self._buffer = b""
        if proc is None:
            return
        try:
            if proc.poll() is None:
                try:
                    proc.stdin.write(b"(exit)\n")
                    proc.stdin.flush()
                except Exception:
                    pass
                proc.terminate()
                try:
                    proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - stuck solver
                    proc.kill()
                    proc.wait()
            else:
                proc.wait()
        finally:
            for stream in (proc.stdin, proc.stdout):
                try:
                    stream.close()
                except Exception:  # pragma: no cover - cleanup best effort
                    pass

    def _io_deadline(self) -> float:
        deadline = time.monotonic() + self._timeout
        if self._deadline is not None:
            deadline = min(deadline, self._deadline)
        return deadline

    def _write(self, lines: Sequence[str]) -> None:
        if self._proc is None or self._proc.stdin is None:
            raise _PipeClosed()
        data = ("\n".join(lines) + "\n").encode("utf-8")
        try:
            self._proc.stdin.write(data)
            self._proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise _PipeClosed() from exc

    def _sync(self, deadline: float) -> List[str]:
        """Emit an echo marker and collect every output line before it."""
        self._marker += 1
        marker = f"repro-sync-{self._marker}"
        self._write([f'(echo "{marker}")'])
        lines: List[str] = []
        while True:
            line = self._read_line(deadline)
            if line.strip('"') == marker:
                return lines
            if line:
                lines.append(line)

    def _read_line(self, deadline: float) -> str:
        if self._proc is None or self._proc.stdout is None:
            raise _PipeClosed()
        fd = self._proc.stdout.fileno()
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _PipeTimeout()
            ready, _, _ = select.select([fd], [], [], min(remaining, 0.5))
            if not ready:
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                raise _PipeClosed()
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line.decode("utf-8", "replace").strip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmtLibPipeBackend({' '.join(self._command)!r}, "
            f"checks={self._checks}, recycles={self._recycles})"
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[..., "SolverBackend"]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    The factory is called with the keyword arguments given to
    :func:`create_backend` (currently ``max_iterations`` and, for the
    in-tree DPLL(T) backend, ``theory_mode``).
    """
    if name in _REGISTRY and not replace:
        raise SolverError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def create_backend(
    spec: Union[str, "SolverBackend", None] = None, **kwargs
) -> "SolverBackend":
    """Resolve ``spec`` into a live backend instance.

    ``spec`` may be a registry name (``"dpllt"``, ``"smtlib"``, ...), a
    :class:`BackendSpec`, an already-constructed backend (returned as-is,
    ``kwargs`` ignored), or ``None`` for the default DPLL(T) backend.
    """
    if spec is None:
        spec = DpllTBackend.name
    if isinstance(spec, BackendSpec):
        merged = dict(spec.kwargs)
        merged.update(kwargs)
        spec, kwargs = spec.name, merged
    if isinstance(spec, str):
        factory = _REGISTRY.get(spec)
        if factory is None:
            raise UnknownBackendError(
                f"unknown solver backend {spec!r}; available: "
                + ", ".join(available_backends())
            )
        return factory(**kwargs)
    required = ("add", "push", "pop", "check", "model")
    if all(hasattr(spec, attr) for attr in required):
        return spec
    raise UnknownBackendError(
        f"{spec!r} is neither a backend name nor a SolverBackend instance"
    )


register_backend(DpllTBackend.name, DpllTBackend)
register_backend(SmtLibProcessBackend.name, SmtLibProcessBackend)
register_backend(SmtLibPipeBackend.name, SmtLibPipeBackend)
