"""Term language for the SMT layer.

Terms are immutable trees.  The constructor helpers in this module
(:func:`And`, :func:`Or`, :func:`IntVar`, :func:`Le`, ...) perform light
well-sortedness checking and trivial constant folding; heavier rewriting
lives in :mod:`repro.smt.simplify` and the CNF conversion in
:mod:`repro.smt.cnf`.

The fragment is quantifier-free linear integer arithmetic (QF_LIA) plus
Booleans and uninterpreted functions (QF_UFLIA).  The MCAPI trace encoding
(:mod:`repro.encoding`) only ever produces difference-logic atoms, but users
of the solver are free to use the full fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.smt.sorts import BOOL, INT, Sort
from repro.utils.errors import SolverError

__all__ = [
    "Term",
    "Function",
    "BoolVal",
    "TRUE",
    "FALSE",
    "IntVal",
    "BoolVar",
    "IntVar",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "Ite",
    "Eq",
    "Ne",
    "Distinct",
    "Le",
    "Lt",
    "Ge",
    "Gt",
    "Add",
    "Sub",
    "Neg",
    "Mul",
    "App",
    "free_variables",
    "substitute",
    "term_size",
    "atoms_of",
]


# ---------------------------------------------------------------------------
# Core term representation
# ---------------------------------------------------------------------------

_ATOM_KINDS = frozenset({"le", "lt", "eq", "app", "var"})
_BOOL_CONNECTIVES = frozenset({"and", "or", "not", "implies", "iff", "xor", "ite"})


@dataclass(frozen=True)
class Term:
    """An immutable SMT term.

    Attributes
    ----------
    kind:
        One of ``var``, ``intconst``, ``boolconst``, ``add``, ``mul``,
        ``neg``, ``le``, ``lt``, ``eq``, ``distinct``, ``and``, ``or``,
        ``not``, ``implies``, ``iff``, ``xor``, ``ite``, ``app``.
    sort:
        The sort of the term.
    args:
        Child terms (empty for leaves).
    name:
        Variable name or uninterpreted function name (leaves / ``app`` only).
    value:
        Constant payload for ``intconst`` / ``boolconst``.
    """

    kind: str
    sort: Sort
    args: Tuple["Term", ...] = ()
    name: Optional[str] = None
    value: Optional[object] = None

    # -- classification helpers -------------------------------------------------

    @property
    def is_var(self) -> bool:
        return self.kind == "var"

    @property
    def is_const(self) -> bool:
        return self.kind in ("intconst", "boolconst")

    @property
    def is_true(self) -> bool:
        return self.kind == "boolconst" and self.value is True

    @property
    def is_false(self) -> bool:
        return self.kind == "boolconst" and self.value is False

    @property
    def is_bool(self) -> bool:
        return self.sort.is_bool

    @property
    def is_int(self) -> bool:
        return self.sort.is_int

    @property
    def is_atom(self) -> bool:
        """True for Boolean-sorted terms with no Boolean structure inside.

        Atoms are the units the SAT abstraction works over: arithmetic
        comparisons, Boolean variables, Boolean constants and applications
        of Boolean-valued uninterpreted functions.
        """
        if not self.sort.is_bool:
            return False
        return self.kind in ("var", "boolconst", "le", "lt", "eq", "app")

    @property
    def is_connective(self) -> bool:
        return self.kind in _BOOL_CONNECTIVES

    def children(self) -> Tuple["Term", ...]:
        return self.args

    # -- traversal ---------------------------------------------------------------

    def walk(self) -> Iterator["Term"]:
        """Pre-order traversal of the term DAG (each node visited once)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            key = id(node)
            if key in seen:
                continue
            seen.add(key)
            yield node
            stack.extend(node.args)

    # -- pretty printing ---------------------------------------------------------

    def __str__(self) -> str:
        return _to_sexpr(self)

    def __repr__(self) -> str:
        return f"Term({_to_sexpr(self)})"


@dataclass(frozen=True)
class Function:
    """An uninterpreted function (or constant, when ``domain`` is empty).

    >>> f = Function("f", (INT,), INT)
    >>> str(App(f, IntVal(1)))
    '(f 1)'
    """

    name: str
    domain: Tuple[Sort, ...]
    codomain: Sort

    @property
    def arity(self) -> int:
        return len(self.domain)


# ---------------------------------------------------------------------------
# Constructors: constants and variables
# ---------------------------------------------------------------------------


def BoolVal(value: bool) -> Term:
    """The Boolean constant ``true`` or ``false``."""
    return TRUE if value else FALSE


TRUE = Term("boolconst", BOOL, value=True)
FALSE = Term("boolconst", BOOL, value=False)


def IntVal(value: int) -> Term:
    """An integer constant."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise SolverError(f"IntVal expects an int, got {value!r}")
    return Term("intconst", INT, value=value)


def Var(name: str, sort: Sort) -> Term:
    """A variable of an arbitrary sort."""
    if not name:
        raise SolverError("variable names must be non-empty")
    return Term("var", sort, name=name)


def BoolVar(name: str) -> Term:
    """A Boolean variable."""
    return Var(name, BOOL)


def IntVar(name: str) -> Term:
    """An integer variable."""
    return Var(name, INT)


# ---------------------------------------------------------------------------
# Constructors: Boolean connectives
# ---------------------------------------------------------------------------


def _require_bool(term: Term, op: str) -> None:
    if not term.sort.is_bool:
        raise SolverError(f"{op} expects Boolean arguments, got sort {term.sort}")


def _require_int(term: Term, op: str) -> None:
    if not term.sort.is_int:
        raise SolverError(f"{op} expects Int arguments, got sort {term.sort}")


def Not(a: Term) -> Term:
    """Logical negation, with double-negation and constant folding."""
    _require_bool(a, "Not")
    if a.is_true:
        return FALSE
    if a.is_false:
        return TRUE
    if a.kind == "not":
        return a.args[0]
    return Term("not", BOOL, (a,))


def And(*args: Union[Term, Iterable[Term]]) -> Term:
    """N-ary conjunction.  Flattens nested conjunctions and folds constants."""
    flat = _flatten_bool_args(args, "and")
    out = []
    for term in flat:
        _require_bool(term, "And")
        if term.is_false:
            return FALSE
        if term.is_true:
            continue
        out.append(term)
    if not out:
        return TRUE
    if len(out) == 1:
        return out[0]
    return Term("and", BOOL, tuple(out))


def Or(*args: Union[Term, Iterable[Term]]) -> Term:
    """N-ary disjunction.  Flattens nested disjunctions and folds constants."""
    flat = _flatten_bool_args(args, "or")
    out = []
    for term in flat:
        _require_bool(term, "Or")
        if term.is_true:
            return TRUE
        if term.is_false:
            continue
        out.append(term)
    if not out:
        return FALSE
    if len(out) == 1:
        return out[0]
    return Term("or", BOOL, tuple(out))


def _flatten_bool_args(args: Sequence, kind: str) -> Tuple[Term, ...]:
    """Accept both varargs and a single iterable; flatten same-kind nesting."""
    items = []
    for arg in args:
        if isinstance(arg, Term):
            items.append(arg)
        else:
            items.extend(arg)
    flat = []
    for term in items:
        if not isinstance(term, Term):
            raise SolverError(f"expected Term, got {term!r}")
        if term.kind == kind:
            flat.extend(term.args)
        else:
            flat.append(term)
    return tuple(flat)


def Implies(a: Term, b: Term) -> Term:
    """Implication ``a -> b``."""
    _require_bool(a, "Implies")
    _require_bool(b, "Implies")
    if a.is_true:
        return b
    if a.is_false or b.is_true:
        return TRUE
    if b.is_false:
        return Not(a)
    return Term("implies", BOOL, (a, b))


def Iff(a: Term, b: Term) -> Term:
    """Bi-implication ``a <-> b``."""
    _require_bool(a, "Iff")
    _require_bool(b, "Iff")
    if a.is_true:
        return b
    if b.is_true:
        return a
    if a.is_false:
        return Not(b)
    if b.is_false:
        return Not(a)
    if a == b:
        return TRUE
    return Term("iff", BOOL, (a, b))


def Xor(a: Term, b: Term) -> Term:
    """Exclusive or."""
    _require_bool(a, "Xor")
    _require_bool(b, "Xor")
    return Not(Iff(a, b))


def Ite(cond: Term, then: Term, other: Term) -> Term:
    """If-then-else.  ``then`` and ``other`` must have the same sort."""
    _require_bool(cond, "Ite")
    if then.sort != other.sort:
        raise SolverError(
            f"Ite branches must share a sort, got {then.sort} and {other.sort}"
        )
    if cond.is_true:
        return then
    if cond.is_false:
        return other
    if then == other:
        return then
    return Term("ite", then.sort, (cond, then, other))


# ---------------------------------------------------------------------------
# Constructors: equality and arithmetic
# ---------------------------------------------------------------------------


def Eq(a: Term, b: Term) -> Term:
    """Equality over any common sort, with constant folding."""
    if a.sort != b.sort:
        raise SolverError(f"Eq over different sorts: {a.sort} vs {b.sort}")
    if a == b:
        return TRUE
    if a.is_const and b.is_const:
        return BoolVal(a.value == b.value)
    return Term("eq", BOOL, (a, b))


def Ne(a: Term, b: Term) -> Term:
    """Disequality (negated equality)."""
    return Not(Eq(a, b))


def Distinct(*args: Union[Term, Iterable[Term]]) -> Term:
    """Pairwise distinctness of all arguments."""
    items: list = []
    for arg in args:
        if isinstance(arg, Term):
            items.append(arg)
        else:
            items.extend(arg)
    if len(items) <= 1:
        return TRUE
    conj = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            conj.append(Ne(items[i], items[j]))
    return And(conj)


def Le(a: Term, b: Term) -> Term:
    """``a <= b`` over Int."""
    _require_int(a, "Le")
    _require_int(b, "Le")
    if a.is_const and b.is_const:
        return BoolVal(a.value <= b.value)
    if a == b:
        return TRUE
    return Term("le", BOOL, (a, b))


def Lt(a: Term, b: Term) -> Term:
    """``a < b`` over Int."""
    _require_int(a, "Lt")
    _require_int(b, "Lt")
    if a.is_const and b.is_const:
        return BoolVal(a.value < b.value)
    if a == b:
        return FALSE
    return Term("lt", BOOL, (a, b))


def Ge(a: Term, b: Term) -> Term:
    """``a >= b`` (encoded as ``b <= a``)."""
    return Le(b, a)


def Gt(a: Term, b: Term) -> Term:
    """``a > b`` (encoded as ``b < a``)."""
    return Lt(b, a)


def Add(*args: Union[Term, Iterable[Term]]) -> Term:
    """N-ary integer addition with constant folding."""
    items: list = []
    for arg in args:
        if isinstance(arg, Term):
            items.append(arg)
        else:
            items.extend(arg)
    flat: list = []
    const = 0
    for term in items:
        _require_int(term, "Add")
        if term.kind == "intconst":
            const += term.value
        elif term.kind == "add":
            for sub in term.args:
                if sub.kind == "intconst":
                    const += sub.value
                else:
                    flat.append(sub)
        else:
            flat.append(term)
    if const != 0 or not flat:
        flat.append(IntVal(const))
    if len(flat) == 1:
        return flat[0]
    return Term("add", INT, tuple(flat))


def Neg(a: Term) -> Term:
    """Unary integer negation."""
    _require_int(a, "Neg")
    if a.kind == "intconst":
        return IntVal(-a.value)
    if a.kind == "neg":
        return a.args[0]
    return Term("neg", INT, (a,))


def Sub(a: Term, b: Term) -> Term:
    """Integer subtraction ``a - b``."""
    return Add(a, Neg(b))


def Mul(coeff: Union[int, Term], term: Union[int, Term]) -> Term:
    """Multiplication by a constant (linear arithmetic only).

    Exactly one side must be (or fold to) an integer constant; general
    non-linear multiplication is rejected.
    """
    a = IntVal(coeff) if isinstance(coeff, int) else coeff
    b = IntVal(term) if isinstance(term, int) else term
    _require_int(a, "Mul")
    _require_int(b, "Mul")
    if a.kind == "intconst" and b.kind == "intconst":
        return IntVal(a.value * b.value)
    if b.kind == "intconst":
        a, b = b, a
    if a.kind != "intconst":
        raise SolverError("Mul is restricted to linear terms (constant * term)")
    if a.value == 0:
        return IntVal(0)
    if a.value == 1:
        return b
    return Term("mul", INT, (a, b))


def App(func: Function, *args: Term) -> Term:
    """Application of an uninterpreted function (or constant)."""
    if len(args) != func.arity:
        raise SolverError(
            f"function {func.name} expects {func.arity} arguments, got {len(args)}"
        )
    for actual, expected in zip(args, func.domain):
        if actual.sort != expected:
            raise SolverError(
                f"argument of sort {actual.sort} where {expected} expected "
                f"in application of {func.name}"
            )
    return Term("app", func.codomain, tuple(args), name=func.name)


# ---------------------------------------------------------------------------
# Generic helpers over terms
# ---------------------------------------------------------------------------


def free_variables(term: Term) -> Dict[str, Sort]:
    """All variables occurring in ``term`` (name -> sort)."""
    out: Dict[str, Sort] = {}
    for node in term.walk():
        if node.is_var:
            out[node.name] = node.sort
    return out


def substitute(term: Term, mapping: Dict[Term, Term]) -> Term:
    """Simultaneously replace occurrences of keys of ``mapping`` in ``term``.

    Substitution is structural: any subterm equal to a key is replaced by the
    corresponding value (which must have the same sort).
    """
    for old, new in mapping.items():
        if old.sort != new.sort:
            raise SolverError(
                f"substitution changes sort: {old.sort} -> {new.sort}"
            )

    cache: Dict[int, Term] = {}

    def rebuild(node: Term) -> Term:
        if node in mapping:
            return mapping[node]
        if not node.args:
            return node
        key = id(node)
        if key in cache:
            return cache[key]
        new_args = tuple(rebuild(child) for child in node.args)
        if new_args == node.args:
            result = node
        else:
            result = Term(node.kind, node.sort, new_args, node.name, node.value)
        cache[key] = result
        return result

    return rebuild(term)


def term_size(term: Term) -> int:
    """Number of nodes in the term tree (DAG nodes counted once)."""
    return sum(1 for _ in term.walk())


def atoms_of(term: Term) -> Tuple[Term, ...]:
    """All distinct atoms occurring in a Boolean term, in discovery order."""
    seen = []
    seen_set = set()
    for node in term.walk():
        if node.is_atom and node.kind != "boolconst" and node not in seen_set:
            seen.append(node)
            seen_set.add(node)
    return tuple(seen)


# ---------------------------------------------------------------------------
# Printing (s-expression, SMT-LIB compatible operators)
# ---------------------------------------------------------------------------

_SMT_OPS = {
    "and": "and",
    "or": "or",
    "not": "not",
    "implies": "=>",
    "iff": "=",
    "ite": "ite",
    "eq": "=",
    "le": "<=",
    "lt": "<",
    "add": "+",
    "neg": "-",
    "mul": "*",
}


def _to_sexpr(term: Term) -> str:
    if term.kind == "var":
        return term.name  # type: ignore[return-value]
    if term.kind == "intconst":
        value = term.value
        return str(value) if value >= 0 else f"(- {-value})"
    if term.kind == "boolconst":
        return "true" if term.value else "false"
    if term.kind == "app":
        if not term.args:
            return term.name  # type: ignore[return-value]
        inner = " ".join(_to_sexpr(a) for a in term.args)
        return f"({term.name} {inner})"
    op = _SMT_OPS.get(term.kind, term.kind)
    inner = " ".join(_to_sexpr(a) for a in term.args)
    return f"({op} {inner})"
