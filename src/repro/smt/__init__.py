"""A self-contained SMT solving layer (QF_LIA / QF_IDL / QF_UF).

The paper solves its generated problems with Yices; since this reproduction
must be dependency-free, the package provides the full stack from scratch:

* :mod:`repro.smt.terms` — the term language and smart constructors,
* :mod:`repro.smt.simplify` — preprocessing rewrites,
* :mod:`repro.smt.cnf` — Tseitin conversion to CNF,
* :mod:`repro.smt.sat` — a CDCL SAT solver on flat arena storage (with an
  optional compiled propagation kernel, :mod:`repro.smt.satkernel`),
* :mod:`repro.smt.dimacs` — DIMACS CNF import feeding the SAT core,
* :mod:`repro.smt.theory` — difference logic, linear integer arithmetic and
  congruence closure theory solvers,
* :mod:`repro.smt.dpllt` — the lazy DPLL(T) loop (one-shot and incremental),
* :mod:`repro.smt.backend` — the :class:`SolverBackend` protocol, registry
  and the in-tree / external-process implementations,
* :mod:`repro.smt.solver` — the public :class:`Solver` facade,
* :mod:`repro.smt.smtlib` — SMT-LIB v2 export for cross-checking.
"""

from repro.smt.sorts import BOOL, INT, Sort, uninterpreted_sort
from repro.smt.terms import (
    Add,
    And,
    App,
    BoolVal,
    BoolVar,
    Distinct,
    Eq,
    FALSE,
    Function,
    Ge,
    Gt,
    Iff,
    Implies,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Term,
    TRUE,
    Var,
    Xor,
)
from repro.smt.dimacs import DimacsProblem, load_dimacs, parse_dimacs
from repro.smt.dpllt import THEORY_MODES
from repro.smt.models import Model
from repro.smt.backend import (
    DpllTBackend,
    SmtLibProcessBackend,
    SolverBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.smt.solver import CheckResult, Solver
from repro.smt.smtlib import to_smtlib

__all__ = [
    "BOOL",
    "INT",
    "Sort",
    "uninterpreted_sort",
    "Add",
    "And",
    "App",
    "BoolVal",
    "BoolVar",
    "Distinct",
    "Eq",
    "FALSE",
    "Function",
    "Ge",
    "Gt",
    "Iff",
    "Implies",
    "IntVal",
    "IntVar",
    "Ite",
    "Le",
    "Lt",
    "Mul",
    "Ne",
    "Neg",
    "Not",
    "Or",
    "Sub",
    "Term",
    "TRUE",
    "Var",
    "Xor",
    "Model",
    "DimacsProblem",
    "load_dimacs",
    "parse_dimacs",
    "CheckResult",
    "THEORY_MODES",
    "Solver",
    "SolverBackend",
    "DpllTBackend",
    "SmtLibProcessBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "to_smtlib",
]
