"""Tseitin conversion of a Boolean formula to CNF over a SAT variable space.

The converter builds the *Boolean abstraction* of an SMT formula: every atom
(arithmetic comparison, Boolean variable, Boolean-valued uninterpreted
application) is mapped to a propositional variable, and each compound
connective gets a fresh definition variable together with its defining
clauses.  The result is equisatisfiable with the input and only linearly
larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.smt.terms import Term
from repro.utils.errors import SolverError

__all__ = ["CnfResult", "TseitinConverter", "tseitin"]


@dataclass
class CnfResult:
    """The output of a Tseitin conversion.

    Attributes
    ----------
    clauses:
        CNF clauses; literals are non-zero ints, variable indices start at 1.
    num_vars:
        Highest variable index allocated.
    atom_to_var:
        Maps each *atom* term to its propositional variable.  Definition
        variables for internal connective nodes are not included.
    var_to_atom:
        Inverse of ``atom_to_var``.
    """

    clauses: List[List[int]] = field(default_factory=list)
    num_vars: int = 0
    atom_to_var: Dict[Term, int] = field(default_factory=dict)
    var_to_atom: Dict[int, Term] = field(default_factory=dict)

    def stats(self) -> Dict[str, int]:
        return {
            "clauses": len(self.clauses),
            "variables": self.num_vars,
            "atoms": len(self.atom_to_var),
            "literals": sum(len(c) for c in self.clauses),
        }


class TseitinConverter:
    """A stateful converter whose variable space and gate cache persist.

    One-shot conversion goes through :func:`tseitin`; the incremental
    DPLL(T) engine keeps a converter alive for the lifetime of a solver so
    that assertions added later share atom variables and gate definitions
    with everything encoded before.
    """

    def __init__(self) -> None:
        self.result = CnfResult()
        self._cache: Dict[Term, int] = {}

    # -- variable allocation -------------------------------------------------

    def fresh_var(self) -> int:
        """Allocate a fresh propositional variable (used for scope selectors)."""
        return self._fresh_var()

    def add_raw_clause(self, lits: List[int]) -> None:
        """Append an already-built clause over this converter's variables."""
        self.result.clauses.append(list(lits))

    def _fresh_var(self) -> int:
        self.result.num_vars += 1
        return self.result.num_vars

    def _atom_var(self, atom: Term) -> int:
        existing = self.result.atom_to_var.get(atom)
        if existing is not None:
            return existing
        var = self._fresh_var()
        self.result.atom_to_var[atom] = var
        self.result.var_to_atom[var] = atom
        return var

    def _clause(self, *lits: int) -> None:
        self.result.clauses.append(list(lits))

    # -- encoding --------------------------------------------------------------

    def encode_assertion(self, term: Term) -> None:
        """Assert ``term`` (add clauses forcing it to hold)."""
        if term.is_true:
            return
        if term.is_false:
            # An unsatisfiable assertion: encode as the empty-clause marker
            # by forcing a fresh variable both ways.
            var = self._fresh_var()
            self._clause(var)
            self._clause(-var)
            return
        # Top-level conjunctions are split, which avoids a definition
        # variable per conjunct and keeps the CNF small for the (heavily
        # conjunctive) trace encodings.
        if term.kind == "and":
            for child in term.args:
                self.encode_assertion(child)
            return
        lit = self.literal(term)
        self._clause(lit)

    def literal(self, term: Term) -> int:
        """Return a literal equivalent to ``term`` (defining it if needed)."""
        if not term.sort.is_bool:
            raise SolverError(f"expected Boolean term in CNF conversion: {term}")
        if term in self._cache:
            return self._cache[term]

        kind = term.kind
        if term.is_true or term.is_false:
            var = self._fresh_var()
            if term.is_true:
                self._clause(var)
            else:
                self._clause(-var)
            lit = var
        elif term.is_atom:
            lit = self._atom_var(term)
        elif kind == "not":
            lit = -self.literal(term.args[0])
        elif kind == "and":
            lit = self._define_and([self.literal(a) for a in term.args])
        elif kind == "or":
            lit = self._define_or([self.literal(a) for a in term.args])
        elif kind == "implies":
            a, b = term.args
            lit = self._define_or([-self.literal(a), self.literal(b)])
        elif kind == "iff":
            lit = self._define_iff(self.literal(term.args[0]), self.literal(term.args[1]))
        elif kind == "ite":
            cond, then, other = term.args
            lit = self._define_ite(
                self.literal(cond), self.literal(then), self.literal(other)
            )
        else:
            raise SolverError(f"unsupported Boolean connective {kind!r} in CNF conversion")

        self._cache[term] = lit
        return lit

    # -- gate definitions --------------------------------------------------------

    def _define_and(self, lits: List[int]) -> int:
        out = self._fresh_var()
        # out -> each lit
        for lit in lits:
            self._clause(-out, lit)
        # all lits -> out
        self._clause(out, *[-lit for lit in lits])
        return out

    def _define_or(self, lits: List[int]) -> int:
        out = self._fresh_var()
        # out -> some lit
        self._clause(-out, *lits)
        # each lit -> out
        for lit in lits:
            self._clause(-lit, out)
        return out

    def _define_iff(self, a: int, b: int) -> int:
        out = self._fresh_var()
        self._clause(-out, -a, b)
        self._clause(-out, a, -b)
        self._clause(out, a, b)
        self._clause(out, -a, -b)
        return out

    def _define_ite(self, cond: int, then: int, other: int) -> int:
        out = self._fresh_var()
        self._clause(-out, -cond, then)
        self._clause(-out, cond, other)
        self._clause(out, -cond, -then)
        self._clause(out, cond, -other)
        return out


def tseitin(assertions: List[Term]) -> CnfResult:
    """Convert a list of asserted Boolean terms into CNF.

    The returned clause set is satisfiable iff the conjunction of the
    assertions is satisfiable *as a propositional formula over its atoms*
    (the theory meaning of the atoms is handled by DPLL(T)).
    """
    converter = TseitinConverter()
    for term in assertions:
        converter.encode_assertion(term)
    return converter.result
