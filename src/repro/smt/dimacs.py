"""DIMACS CNF import: feed standard SAT benchmark files to the flat core.

The flat-memory :class:`~repro.smt.sat.SatSolver` consumes plain integer
clauses, which is exactly what the DIMACS CNF exchange format encodes, so
industrial benchmark instances (SATLIB, SAT Competition) drop straight
into the solver::

    problem = load_dimacs("uf20-01.cnf")
    solver = problem.solver()
    solver.solve()

The parser accepts the common dialect in full: ``c`` comment lines, the
``p cnf VARS CLAUSES`` problem line, clauses as 0-terminated integer
streams that may span or share lines, and the SATLIB ``%`` end-of-file
marker.  Malformed input raises :class:`~repro.utils.errors.SolverError`
with a line number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.smt.sat import SatSolver
from repro.utils.errors import SolverError

__all__ = ["DimacsProblem", "parse_dimacs", "load_dimacs"]


@dataclass
class DimacsProblem:
    """A parsed DIMACS CNF instance."""

    num_vars: int
    clauses: List[List[int]] = field(default_factory=list)

    def solver(self, **kwargs) -> SatSolver:
        """A :class:`SatSolver` loaded with this instance.

        ``kwargs`` are forwarded to the solver constructor (``reduce_db``,
        ``reduce_base``, ...).
        """
        solver = SatSolver(**kwargs)
        solver.ensure_vars(self.num_vars)
        solver.add_clauses(self.clauses)
        return solver


def parse_dimacs(text: str) -> DimacsProblem:
    """Parse DIMACS CNF ``text`` into a :class:`DimacsProblem`."""
    num_vars = -1
    declared_clauses = -1
    clauses: List[List[int]] = []
    current: List[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):  # SATLIB trailer: "%" then a lone "0"
            break
        if line.startswith("p"):
            if num_vars >= 0:
                raise SolverError(f"line {lineno}: duplicate problem line")
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise SolverError(
                    f"line {lineno}: malformed problem line {line!r} "
                    "(expected 'p cnf VARS CLAUSES')"
                )
            try:
                num_vars = int(fields[2])
                declared_clauses = int(fields[3])
            except ValueError:
                raise SolverError(
                    f"line {lineno}: non-numeric problem line {line!r}"
                ) from None
            if num_vars < 0 or declared_clauses < 0:
                raise SolverError(f"line {lineno}: negative counts in {line!r}")
            continue
        if num_vars < 0:
            raise SolverError(
                f"line {lineno}: clause before the 'p cnf' problem line"
            )
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise SolverError(
                    f"line {lineno}: invalid literal {token!r}"
                ) from None
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                if abs(lit) > num_vars:
                    raise SolverError(
                        f"line {lineno}: literal {lit} exceeds the declared "
                        f"{num_vars} variables"
                    )
                current.append(lit)
    if num_vars < 0:
        raise SolverError("no 'p cnf' problem line found")
    if current:
        # Tolerated in the wild: a final clause missing its terminating 0.
        clauses.append(current)
    if declared_clauses >= 0 and len(clauses) != declared_clauses:
        raise SolverError(
            f"problem line declares {declared_clauses} clauses "
            f"but {len(clauses)} were given"
        )
    return DimacsProblem(num_vars=num_vars, clauses=clauses)


def load_dimacs(path: str) -> DimacsProblem:
    """Parse the DIMACS CNF file at ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SolverError(f"cannot read DIMACS file {path!r}: {exc}") from exc
    return parse_dimacs(text)
