"""The lazy DPLL(T) engine combining the CDCL SAT core with theory solvers.

The engine follows the classic *lemmas-on-demand* loop:

1. build the Boolean abstraction of the (preprocessed) assertions,
2. ask the SAT core for a propositional model,
3. translate the model's asserted atoms into theory constraints and check
   them with the appropriate theory solver (integer difference logic when
   possible, otherwise general LIA; EUF for uninterpreted equalities),
4. if the theory agrees, a full model has been found; otherwise the theory's
   explanation is negated into a *blocking clause* and the loop repeats.

The loop terminates because each blocking clause removes at least one
propositional model and the abstraction has finitely many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import CnfResult, tseitin
from repro.smt.linear import LinearLe, atom_to_constraints
from repro.smt.models import Model
from repro.smt.sat import SatResult, SatSolver
from repro.smt.simplify import preprocess
from repro.smt.terms import Term, free_variables
from repro.smt.theory.euf import CongruenceClosure
from repro.smt.theory.idl import DifferenceLogicSolver
from repro.smt.theory.lia import LinearIntSolver
from repro.utils.errors import SolverError

__all__ = ["CheckResult", "DpllTEngine", "SmtStats"]


class CheckResult(Enum):
    """Outcome of an SMT ``check``."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SmtStats:
    """Statistics of one DPLL(T) run."""

    iterations: int = 0
    theory_conflicts: int = 0
    sat_clauses: int = 0
    sat_variables: int = 0
    atoms: int = 0
    arith_atoms: int = 0
    euf_atoms: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "iterations": self.iterations,
            "theory_conflicts": self.theory_conflicts,
            "sat_clauses": self.sat_clauses,
            "sat_variables": self.sat_variables,
            "atoms": self.atoms,
            "arith_atoms": self.arith_atoms,
            "euf_atoms": self.euf_atoms,
            "sat_decisions": self.sat_decisions,
            "sat_conflicts": self.sat_conflicts,
        }


_ARITH_KINDS = ("le", "lt")


def _classify_atom(atom: Term) -> str:
    """Classify an atom as ``bool``, ``arith`` or ``euf``."""
    if atom.kind == "var":
        return "bool"
    if atom.kind in _ARITH_KINDS:
        return "arith"
    if atom.kind == "eq":
        lhs = atom.args[0]
        if lhs.sort.is_int:
            return "arith"
        if lhs.sort.is_bool:
            return "bool_eq"
        return "euf"
    if atom.kind == "app":
        if not atom.args:
            return "bool"
        return "euf_pred"
    raise SolverError(f"unclassifiable atom: {atom}")


class DpllTEngine:
    """One-shot DPLL(T) check over a list of assertions.

    The engine is cheap to construct; :class:`repro.smt.solver.Solver`
    creates a fresh engine per ``check`` call, which keeps the public API
    simple (push/pop is handled at the assertion-stack level).
    """

    def __init__(
        self,
        assertions: Sequence[Term],
        max_iterations: int = 200_000,
    ) -> None:
        self._raw_assertions = list(assertions)
        self._max_iterations = max_iterations
        self.stats = SmtStats()
        self._model: Optional[Model] = None

    # ------------------------------------------------------------------ public

    def check(self) -> CheckResult:
        """Run the DPLL(T) loop to completion."""
        assertions = [preprocess(a) for a in self._raw_assertions]
        cnf = tseitin(assertions)
        self.stats.sat_clauses = len(cnf.clauses)
        self.stats.sat_variables = cnf.num_vars
        self.stats.atoms = len(cnf.atom_to_var)

        sat = SatSolver()
        sat.ensure_vars(cnf.num_vars)
        if not sat.add_clauses(cnf.clauses):
            return CheckResult.UNSAT

        arith_atoms: Dict[Term, int] = {}
        euf_atoms: Dict[Term, int] = {}
        for atom, var in cnf.atom_to_var.items():
            kind = _classify_atom(atom)
            if kind == "arith":
                arith_atoms[atom] = var
            elif kind in ("euf", "euf_pred"):
                if kind == "euf_pred":
                    raise SolverError(
                        "Boolean-valued uninterpreted predicates are not supported; "
                        "model them as equalities with a distinguished constant"
                    )
                euf_atoms[atom] = var
            elif kind == "bool_eq":
                raise SolverError(
                    "Boolean equality atoms should have been rewritten to iff "
                    "by preprocessing"
                )
        self.stats.arith_atoms = len(arith_atoms)
        self.stats.euf_atoms = len(euf_atoms)

        variables: Dict[str, object] = {}
        for assertion in assertions:
            variables.update(free_variables(assertion))

        while True:
            self.stats.iterations += 1
            if self.stats.iterations > self._max_iterations:
                return CheckResult.UNKNOWN
            result = sat.solve()
            self.stats.sat_decisions = sat.stats.decisions
            self.stats.sat_conflicts = sat.stats.conflicts
            if result is SatResult.UNSAT:
                return CheckResult.UNSAT
            if result is SatResult.UNKNOWN:  # pragma: no cover - no limit set
                return CheckResult.UNKNOWN

            bool_model = sat.model()
            conflict_lits = self._theory_check(
                arith_atoms, euf_atoms, bool_model, variables
            )
            if conflict_lits is None:
                # Theories agree: assemble the model.
                self._model = self._build_model(
                    cnf, bool_model, arith_atoms, euf_atoms, variables
                )
                return CheckResult.SAT

            self.stats.theory_conflicts += 1
            if not conflict_lits:
                # Theory inconsistency independent of any decision.
                return CheckResult.UNSAT
            if not sat.add_clause([-lit for lit in conflict_lits]):
                return CheckResult.UNSAT

    def model(self) -> Model:
        """The model found by the last successful :meth:`check`."""
        if self._model is None:
            raise SolverError("no model available (last check was not SAT)")
        return self._model

    # ------------------------------------------------------------------ theory glue

    def _theory_check(
        self,
        arith_atoms: Dict[Term, int],
        euf_atoms: Dict[Term, int],
        bool_model: Dict[int, bool],
        variables: Dict[str, object],
    ) -> Optional[List[int]]:
        """Check the candidate model against the theories.

        Returns ``None`` when consistent, otherwise the list of SAT literals
        (as asserted by the candidate model) whose conjunction is
        theory-inconsistent.
        """
        self._last_arith_model: Dict[str, int] = {}
        self._last_euf_model: Dict[str, int] = {}

        # ---- arithmetic ----
        constraints: List[LinearLe] = []
        origin_lits: List[int] = []
        for atom, var in arith_atoms.items():
            value = bool_model.get(var)
            if value is None:
                continue
            for constraint in atom_to_constraints(atom, value):
                constraints.append(constraint)
                origin_lits.append(var if value else -var)

        if constraints:
            if DifferenceLogicSolver.is_applicable(constraints):
                arith: object = DifferenceLogicSolver()
            else:
                arith = LinearIntSolver()
            arith.assert_all(constraints)  # type: ignore[attr-defined]
            outcome = arith.check()  # type: ignore[attr-defined]
            if not outcome.satisfiable:
                return sorted({origin_lits[i] for i in outcome.conflict or []})
            self._last_arith_model = outcome.model or {}

        # ---- EUF ----
        if euf_atoms:
            euf = CongruenceClosure()
            euf_origin: List[int] = []
            for atom, var in euf_atoms.items():
                value = bool_model.get(var)
                if value is None:
                    continue
                lhs, rhs = atom.args
                if value:
                    euf.assert_equal(lhs, rhs)
                else:
                    euf.assert_distinct(lhs, rhs)
                euf_origin.append(var if value else -var)
            outcome = euf.check()
            if not outcome.satisfiable:
                return sorted({euf_origin[i] for i in outcome.conflict or []})
            self._last_euf_model = outcome.model or {}

        return None

    def _build_model(
        self,
        cnf: CnfResult,
        bool_model: Dict[int, bool],
        arith_atoms: Dict[Term, int],
        euf_atoms: Dict[Term, int],
        variables: Dict[str, object],
    ) -> Model:
        values: Dict[str, object] = {}
        # Theory values first.
        values.update(self._last_arith_model)
        values.update(self._last_euf_model)
        # Boolean variables straight from the SAT model.
        for atom, var in cnf.atom_to_var.items():
            if atom.kind == "var" and atom.sort.is_bool:
                values[atom.name] = bool_model.get(var, False)
        # Defaults for anything the formula mentions but nothing constrained.
        for name, sort in variables.items():
            if name not in values:
                values[name] = False if getattr(sort, "is_bool", False) else 0
        return Model(values)  # type: ignore[arg-type]
