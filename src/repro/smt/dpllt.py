"""The lazy DPLL(T) engine combining the CDCL SAT core with theory solvers.

The engine follows the classic *lemmas-on-demand* loop:

1. build the Boolean abstraction of the (preprocessed) assertions,
2. ask the SAT core for a propositional model,
3. translate the model's asserted atoms into theory constraints and check
   them with the appropriate theory solver (integer difference logic when
   possible, otherwise general LIA; EUF for uninterpreted equalities),
4. if the theory agrees, a full model has been found; otherwise the theory's
   explanation is negated into a *blocking clause* and the loop repeats.

The loop terminates because each blocking clause removes at least one
propositional model and the abstraction has finitely many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import TseitinConverter, tseitin
from repro.smt.linear import LinearLe, atom_to_constraints
from repro.smt.models import Model
from repro.smt.sat import SatResult, SatSolver
from repro.smt.simplify import preprocess
from repro.smt.terms import Term, free_variables
from repro.smt.theory.euf import CongruenceClosure
from repro.smt.theory.idl import DifferenceLogicSolver
from repro.smt.theory.lia import LinearIntSolver
from repro.utils.errors import SolverError

__all__ = ["CheckResult", "DpllTEngine", "IncrementalDpllTEngine", "SmtStats"]


class CheckResult(Enum):
    """Outcome of an SMT ``check``."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SmtStats:
    """Statistics of one DPLL(T) run."""

    iterations: int = 0
    theory_conflicts: int = 0
    sat_clauses: int = 0
    sat_variables: int = 0
    atoms: int = 0
    arith_atoms: int = 0
    euf_atoms: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "iterations": self.iterations,
            "theory_conflicts": self.theory_conflicts,
            "sat_clauses": self.sat_clauses,
            "sat_variables": self.sat_variables,
            "atoms": self.atoms,
            "arith_atoms": self.arith_atoms,
            "euf_atoms": self.euf_atoms,
            "sat_decisions": self.sat_decisions,
            "sat_conflicts": self.sat_conflicts,
        }


_ARITH_KINDS = ("le", "lt")


def _classify_atom(atom: Term) -> str:
    """Classify an atom as ``bool``, ``arith`` or ``euf``."""
    if atom.kind == "var":
        return "bool"
    if atom.kind in _ARITH_KINDS:
        return "arith"
    if atom.kind == "eq":
        lhs = atom.args[0]
        if lhs.sort.is_int:
            return "arith"
        if lhs.sort.is_bool:
            return "bool_eq"
        return "euf"
    if atom.kind == "app":
        if not atom.args:
            return "bool"
        return "euf_pred"
    raise SolverError(f"unclassifiable atom: {atom}")


def _partition_atom(
    atom: Term,
    var: int,
    arith_atoms: Dict[Term, int],
    euf_atoms: Dict[Term, int],
) -> None:
    """Route ``atom`` into the arithmetic or EUF atom map (or reject it)."""
    kind = _classify_atom(atom)
    if kind == "arith":
        arith_atoms[atom] = var
    elif kind == "euf_pred":
        raise SolverError(
            "Boolean-valued uninterpreted predicates are not supported; "
            "model them as equalities with a distinguished constant"
        )
    elif kind == "euf":
        euf_atoms[atom] = var
    elif kind == "bool_eq":
        raise SolverError(
            "Boolean equality atoms should have been rewritten to iff "
            "by preprocessing"
        )


def _theory_consistency(
    arith_atoms: Dict[Term, int],
    euf_atoms: Dict[Term, int],
    bool_model: Dict[int, bool],
    constraint_cache: Optional[Dict[Tuple[int, bool], Tuple[LinearLe, ...]]] = None,
) -> Tuple[Optional[List[int]], Dict[str, int], Dict[str, int]]:
    """Check a candidate propositional model against the theories.

    Returns ``(conflict, arith_model, euf_model)``.  ``conflict`` is ``None``
    when the theories agree; otherwise it lists the SAT literals (as asserted
    by the candidate model) whose conjunction is theory-inconsistent.  When a
    theory fails to localise its inconsistency the full set of asserted
    literals of that theory is returned, which is always a valid (if coarse)
    explanation.

    ``constraint_cache`` memoises the pure atom-to-constraint translation
    keyed by ``(atom_var, polarity)``; across the many theory iterations of
    an enumeration workload this is the single hottest path.
    """
    arith_model: Dict[str, int] = {}
    euf_model: Dict[str, int] = {}

    # ---- arithmetic ----
    constraints: List[LinearLe] = []
    origin_lits: List[int] = []
    for atom, var in arith_atoms.items():
        value = bool_model.get(var)
        if value is None:
            continue
        if constraint_cache is None:
            translated: Tuple[LinearLe, ...] = tuple(atom_to_constraints(atom, value))
        else:
            key = (var, value)
            cached = constraint_cache.get(key)
            if cached is None:
                cached = tuple(atom_to_constraints(atom, value))
                constraint_cache[key] = cached
            translated = cached
        origin = var if value else -var
        for constraint in translated:
            constraints.append(constraint)
            origin_lits.append(origin)

    if constraints:
        if DifferenceLogicSolver.is_applicable(constraints):
            arith: object = DifferenceLogicSolver()
        else:
            arith = LinearIntSolver()
        arith.assert_all(constraints)  # type: ignore[attr-defined]
        outcome = arith.check()  # type: ignore[attr-defined]
        if not outcome.satisfiable:
            conflict = sorted({origin_lits[i] for i in outcome.conflict or []})
            return conflict or sorted(set(origin_lits)), arith_model, euf_model
        arith_model = outcome.model or {}

    # ---- EUF ----
    if euf_atoms:
        euf = CongruenceClosure()
        euf_origin: List[int] = []
        for atom, var in euf_atoms.items():
            value = bool_model.get(var)
            if value is None:
                continue
            lhs, rhs = atom.args
            if value:
                euf.assert_equal(lhs, rhs)
            else:
                euf.assert_distinct(lhs, rhs)
            euf_origin.append(var if value else -var)
        outcome = euf.check()
        if not outcome.satisfiable:
            conflict = sorted({euf_origin[i] for i in outcome.conflict or []})
            return conflict or sorted(set(euf_origin)), arith_model, euf_model
        euf_model = outcome.model or {}

    return None, arith_model, euf_model


def _assemble_model(
    atom_to_var: Dict[Term, int],
    bool_model: Dict[int, bool],
    variables: Dict[str, object],
    arith_model: Dict[str, int],
    euf_model: Dict[str, int],
) -> Model:
    """Combine theory models and the SAT assignment into a full model."""
    values: Dict[str, object] = {}
    # Theory values first.
    values.update(arith_model)
    values.update(euf_model)
    # Boolean variables straight from the SAT model.
    for atom, var in atom_to_var.items():
        if atom.kind == "var" and atom.sort.is_bool:
            values[atom.name] = bool_model.get(var, False)
    # Defaults for anything the formula mentions but nothing constrained.
    for name, sort in variables.items():
        if name not in values:
            values[name] = False if getattr(sort, "is_bool", False) else 0
    return Model(values)  # type: ignore[arg-type]


class DpllTEngine:
    """One-shot DPLL(T) check over a list of assertions.

    The engine is cheap to construct; :class:`repro.smt.solver.Solver`
    creates a fresh engine per ``check`` call, which keeps the public API
    simple (push/pop is handled at the assertion-stack level).
    """

    def __init__(
        self,
        assertions: Sequence[Term],
        max_iterations: int = 200_000,
    ) -> None:
        self._raw_assertions = list(assertions)
        self._max_iterations = max_iterations
        self.stats = SmtStats()
        self._model: Optional[Model] = None

    # ------------------------------------------------------------------ public

    def check(self) -> CheckResult:
        """Run the DPLL(T) loop to completion."""
        assertions = [preprocess(a) for a in self._raw_assertions]
        cnf = tseitin(assertions)
        self.stats.sat_clauses = len(cnf.clauses)
        self.stats.sat_variables = cnf.num_vars
        self.stats.atoms = len(cnf.atom_to_var)

        sat = SatSolver()
        sat.ensure_vars(cnf.num_vars)
        if not sat.add_clauses(cnf.clauses):
            return CheckResult.UNSAT

        arith_atoms: Dict[Term, int] = {}
        euf_atoms: Dict[Term, int] = {}
        for atom, var in cnf.atom_to_var.items():
            _partition_atom(atom, var, arith_atoms, euf_atoms)
        self.stats.arith_atoms = len(arith_atoms)
        self.stats.euf_atoms = len(euf_atoms)

        variables: Dict[str, object] = {}
        for assertion in assertions:
            variables.update(free_variables(assertion))

        constraint_cache: Dict[Tuple[int, bool], Tuple[LinearLe, ...]] = {}
        while True:
            self.stats.iterations += 1
            if self.stats.iterations > self._max_iterations:
                return CheckResult.UNKNOWN
            result = sat.solve()
            self.stats.sat_decisions = sat.stats.decisions
            self.stats.sat_conflicts = sat.stats.conflicts
            if result is SatResult.UNSAT:
                return CheckResult.UNSAT
            if result is SatResult.UNKNOWN:  # pragma: no cover - no limit set
                return CheckResult.UNKNOWN

            bool_model = sat.model()
            conflict_lits, arith_model, euf_model = _theory_consistency(
                arith_atoms, euf_atoms, bool_model, constraint_cache
            )
            if conflict_lits is None:
                # Theories agree: assemble the model.
                self._model = _assemble_model(
                    cnf.atom_to_var, bool_model, variables, arith_model, euf_model
                )
                return CheckResult.SAT

            self.stats.theory_conflicts += 1
            if not conflict_lits:
                # Theory inconsistency independent of any decision.
                return CheckResult.UNSAT
            if not sat.add_clause([-lit for lit in conflict_lits]):
                return CheckResult.UNSAT

    def model(self) -> Model:
        """The model found by the last successful :meth:`check`."""
        if self._model is None:
            raise SolverError("no model available (last check was not SAT)")
        return self._model


class IncrementalDpllTEngine:
    """A persistent DPLL(T) engine with add/push/pop and assumption checks.

    Where :class:`DpllTEngine` is rebuilt from scratch for every query, this
    engine keeps all solver state alive across ``check`` calls:

    * one :class:`~repro.smt.cnf.TseitinConverter` — atoms keep their
      propositional variables and gate definitions are shared, so asserting
      the same subformula twice costs nothing;
    * one :class:`~repro.smt.sat.SatSolver` — learned clauses, variable
      activities and saved phases survive between checks;
    * theory lemmas (blocking clauses) speak about the atom vocabulary, not
      about a particular assertion set, so they remain valid and persist.

    Scopes are implemented with *selector literals* in the MiniSat
    tradition: an assertion added after a :meth:`push` is encoded as
    ``selector -> assertion`` and every :meth:`check` assumes the selectors
    of the open scopes; :meth:`pop` retires a selector by asserting its
    negation, permanently satisfying the scope's clauses.  Per-call
    assumptions are Tseitin-encoded to literals and assumed the same way.
    This is what makes blocking-clause enumeration and reachability probes
    cheap: the clause database is never rebuilt, only extended.
    """

    def __init__(self, max_iterations: int = 200_000) -> None:
        self._converter = TseitinConverter()
        self._sat = SatSolver()
        self._max_iterations = max_iterations
        self._clauses_fed = 0
        self._atoms_seen = 0
        self._arith_atoms: Dict[Term, int] = {}
        self._euf_atoms: Dict[Term, int] = {}
        self._variables: Dict[str, object] = {}
        self._selectors: List[int] = []
        self._constraint_cache: Dict[Tuple[int, bool], Tuple[LinearLe, ...]] = {}
        self._model: Optional[Model] = None
        self._last_result: Optional[CheckResult] = None
        #: Statistics of the most recent :meth:`check`.
        self.stats = SmtStats()
        #: Number of ``check`` calls served by this engine instance.
        self.total_checks = 0

    # ------------------------------------------------------------------ assertions

    def add(self, term: Term) -> None:
        """Assert ``term`` in the current scope."""
        term = preprocess(term)
        self._variables.update(free_variables(term))
        self._invalidate()
        if self._selectors:
            self._encode_guarded(term, self._selectors[-1])
        else:
            self._converter.encode_assertion(term)
        self._flush()

    def push(self) -> None:
        """Open a scope: later assertions hold only while the scope is open.

        Opening a scope adds no constraints, so the model of the last check
        (if any) stays valid and available.
        """
        self._selectors.append(self._converter.fresh_var())

    def pop(self) -> None:
        """Close the innermost scope, retiring its assertions."""
        if not self._selectors:
            raise SolverError("pop without matching push")
        selector = self._selectors.pop()
        self._sat.ensure_vars(self._converter.result.num_vars)
        self._sat.add_clause([-selector])
        self._invalidate()

    @property
    def scope_depth(self) -> int:
        """Number of currently open scopes."""
        return len(self._selectors)

    # ------------------------------------------------------------------ solving

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the live assertions plus ``assumptions``.

        Assumptions are scoped to this single call; nothing learned from a
        previous call is forgotten.
        """
        self._model = None
        self.total_checks += 1
        assumption_lits: List[int] = []
        for term in assumptions:
            term = preprocess(term)
            self._variables.update(free_variables(term))
            assumption_lits.append(self._converter.literal(term))
        self._flush()

        stats = SmtStats()
        self.stats = stats
        stats.sat_clauses = self._sat.num_clauses
        stats.sat_variables = self._sat.num_vars
        stats.atoms = self._atoms_seen
        stats.arith_atoms = len(self._arith_atoms)
        stats.euf_atoms = len(self._euf_atoms)
        # The SAT core's counters are engine-lifetime; report per-check deltas.
        base_decisions = self._sat.stats.decisions
        base_conflicts = self._sat.stats.conflicts

        sat_assumptions = list(self._selectors) + assumption_lits
        while True:
            stats.iterations += 1
            if stats.iterations > self._max_iterations:
                return self._finish(CheckResult.UNKNOWN)
            result = self._sat.solve(sat_assumptions)
            stats.sat_decisions = self._sat.stats.decisions - base_decisions
            stats.sat_conflicts = self._sat.stats.conflicts - base_conflicts
            if result is SatResult.UNSAT:
                return self._finish(CheckResult.UNSAT)
            if result is SatResult.UNKNOWN:  # pragma: no cover - no limit set
                return self._finish(CheckResult.UNKNOWN)

            bool_model = self._sat.model()
            conflict_lits, arith_model, euf_model = _theory_consistency(
                self._arith_atoms, self._euf_atoms, bool_model, self._constraint_cache
            )
            if conflict_lits is None:
                self._model = _assemble_model(
                    self._converter.result.atom_to_var,
                    bool_model,
                    self._variables,
                    arith_model,
                    euf_model,
                )
                return self._finish(CheckResult.SAT)

            stats.theory_conflicts += 1
            if not conflict_lits:  # pragma: no cover - theories always explain
                return self._finish(CheckResult.UNSAT)
            # The lemma is theory-valid, so it may outlive scopes and
            # assumptions: this is the learned state reused across checks.
            if not self._sat.add_clause([-lit for lit in conflict_lits]):
                return self._finish(CheckResult.UNSAT)

    def model(self) -> Model:
        """The model of the last :meth:`check`, which must have returned SAT."""
        if self._model is None:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._model

    @property
    def last_result(self) -> Optional[CheckResult]:
        """Outcome of the most recent check (None after add/push/pop)."""
        return self._last_result

    # ------------------------------------------------------------------ internals

    def _finish(self, result: CheckResult) -> CheckResult:
        self._last_result = result
        return result

    def _invalidate(self) -> None:
        self._model = None
        self._last_result = None

    def _encode_guarded(self, term: Term, selector: int) -> None:
        """Encode ``selector -> term``, splitting top-level conjunctions."""
        if term.is_true:
            return
        if term.kind == "and":
            for child in term.args:
                self._encode_guarded(child, selector)
            return
        self._converter.add_raw_clause([-selector, self._converter.literal(term)])

    def _flush(self) -> None:
        """Feed clauses and atoms created since the last flush to the SAT core."""
        result = self._converter.result
        self._sat.ensure_vars(result.num_vars)
        clauses = result.clauses
        while self._clauses_fed < len(clauses):
            self._sat.add_clause(clauses[self._clauses_fed])
            self._clauses_fed += 1
        if len(result.atom_to_var) > self._atoms_seen:
            atom_items = list(result.atom_to_var.items())
            # Advance the counter per atom: if partitioning rejects one (e.g.
            # an unsupported Boolean predicate), atoms after it must not be
            # silently skipped — the next flush retries and re-raises.
            while self._atoms_seen < len(atom_items):
                atom, var = atom_items[self._atoms_seen]
                _partition_atom(atom, var, self._arith_atoms, self._euf_atoms)
                self._atoms_seen += 1
