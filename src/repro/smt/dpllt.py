"""The DPLL(T) engines combining the CDCL SAT core with theory solvers.

Two integration styles are provided, selected by ``theory_mode``:

**online** (the default) — the theories ride the SAT search itself through
the :class:`~repro.smt.sat.TheoryListener` hook: every literal the SAT core
asserts (decision or propagation) is streamed into incremental theory
solvers (:class:`~repro.smt.theory.euf.IncrementalCongruenceClosure`,
:class:`~repro.smt.theory.idl.IncrementalDifferenceLogic`,
:class:`~repro.smt.theory.lia.IncrementalLinearInt`), which keep
trail-backed undo stacks and retract in lockstep with SAT backjumps.
Theory conflicts are caught on *partial* assignments — after a handful of
literals instead of after a complete propositional model — and their
localized explanations are learned with ordinary first-UIP analysis.
Theory-implied literals (EUF entailments) are propagated back into the
Boolean search with lazily materialised reason clauses.

**offline** — the classic *lemmas-on-demand* loop kept for differential
testing and as the reference semantics:

1. ask the SAT core for a complete propositional model,
2. translate the model's asserted atoms into theory constraints and check
   them with freshly built batch theory solvers,
3. if a theory objects, negate its explanation into a blocking clause and
   repeat.

Both modes terminate: online inherits CDCL termination (theory conflicts
are learned clauses over a finite atom vocabulary), offline removes at
least one propositional model per blocking clause.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.smt.cnf import TseitinConverter, tseitin
from repro.smt.linear import LinearLe, atom_to_constraints
from repro.smt.models import Model
from repro.smt.sat import (
    DEFAULT_REDUCE_BASE,
    DEFAULT_THEORY_BUMP,
    SatResult,
    SatSolver,
    TheoryListener,
)
from repro.smt.simplify import preprocess
from repro.smt.terms import Term, free_variables
from repro.smt.theory.euf import CongruenceClosure, IncrementalCongruenceClosure
from repro.smt.theory.idl import (
    DifferenceLogicSolver,
    IncrementalDifferenceLogic,
    edge_groups,
)
from repro.smt.theory.lia import IncrementalLinearInt, LinearIntSolver
from repro.utils.errors import SolverError

__all__ = [
    "CheckResult",
    "DpllTEngine",
    "IncrementalDpllTEngine",
    "SmtStats",
    "TheoryCore",
    "THEORY_MODES",
]

#: Valid values of the ``theory_mode`` knob.
THEORY_MODES = ("online", "offline")


def _validate_theory_mode(mode: str) -> str:
    if mode not in THEORY_MODES:
        raise SolverError(
            f"unknown theory_mode {mode!r}; pick one of {THEORY_MODES}"
        )
    return mode


class CheckResult(Enum):
    """Outcome of an SMT ``check``."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SmtStats:
    """Statistics of one DPLL(T) run.

    ``iterations`` counts theory-interaction rounds: offline, the outer
    model-then-check loop; online, ``1 +`` the number of theory conflicts
    (each conflict plays the role one blocking-clause iteration used to).
    ``theory_partial_conflicts`` counts the theory conflicts raised on
    *partial* assignments — the online engine's whole point; offline it is
    always 0 because the theories only ever see complete models.
    ``explanations`` / ``explanation_literals`` measure the theory
    explanations produced (conflicts and lazy propagation reasons);
    ``as_dict`` derives the average explanation size from them.
    ``theory_propagations`` counts literals the SAT core actually
    *enqueued*; the per-theory split (``theory_propagations_euf`` /
    ``theory_propagations_idl``) counts entailments the theories
    *emitted*, so the split may exceed the aggregate when an entailment
    arrives for a literal the Boolean search already assigned.
    """

    iterations: int = 0
    theory_conflicts: int = 0
    sat_clauses: int = 0
    sat_variables: int = 0
    atoms: int = 0
    arith_atoms: int = 0
    euf_atoms: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0
    theory_propagations: int = 0
    theory_propagations_euf: int = 0
    theory_propagations_idl: int = 0
    theory_partial_conflicts: int = 0
    explanations: int = 0
    explanation_literals: int = 0
    reduce_db_rounds: int = 0
    clauses_deleted: int = 0
    max_live_learned: int = 0
    #: Flat-core arena gauges: compaction sweeps performed and the arena
    #: footprint (bytes) after the last one.  Both 0 on the legacy core.
    compactions: int = 0
    arena_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        avg_explanation = (
            round(self.explanation_literals / self.explanations, 2)
            if self.explanations
            else 0
        )
        return {
            "iterations": self.iterations,
            "theory_conflicts": self.theory_conflicts,
            "sat_clauses": self.sat_clauses,
            "sat_variables": self.sat_variables,
            "atoms": self.atoms,
            "arith_atoms": self.arith_atoms,
            "euf_atoms": self.euf_atoms,
            "sat_decisions": self.sat_decisions,
            "sat_conflicts": self.sat_conflicts,
            "theory_propagations": self.theory_propagations,
            "theory_propagations_euf": self.theory_propagations_euf,
            "theory_propagations_idl": self.theory_propagations_idl,
            "theory_partial_conflicts": self.theory_partial_conflicts,
            "avg_explanation_size": avg_explanation,
            "reduce_db_rounds": self.reduce_db_rounds,
            "clauses_deleted": self.clauses_deleted,
            "max_live_learned": self.max_live_learned,
            "compactions": self.compactions,
            "arena_bytes": self.arena_bytes,
        }


_ARITH_KINDS = ("le", "lt")


def _classify_atom(atom: Term) -> str:
    """Classify an atom as ``bool``, ``arith`` or ``euf``."""
    if atom.kind == "var":
        return "bool"
    if atom.kind in _ARITH_KINDS:
        return "arith"
    if atom.kind == "eq":
        lhs = atom.args[0]
        if lhs.sort.is_int:
            return "arith"
        if lhs.sort.is_bool:
            return "bool_eq"
        return "euf"
    if atom.kind == "app":
        if not atom.args:
            return "bool"
        return "euf_pred"
    raise SolverError(f"unclassifiable atom: {atom}")


def _reject_atom_kind(kind: str) -> None:
    if kind == "euf_pred":
        raise SolverError(
            "Boolean-valued uninterpreted predicates are not supported; "
            "model them as equalities with a distinguished constant"
        )
    if kind == "bool_eq":
        raise SolverError(
            "Boolean equality atoms should have been rewritten to iff "
            "by preprocessing"
        )


def _partition_atom(
    atom: Term,
    var: int,
    arith_atoms: Dict[Term, int],
    euf_atoms: Dict[Term, int],
) -> None:
    """Route ``atom`` into the arithmetic or EUF atom map (or reject it)."""
    kind = _classify_atom(atom)
    _reject_atom_kind(kind)
    if kind == "arith":
        arith_atoms[atom] = var
    elif kind == "euf":
        euf_atoms[atom] = var


def _theory_consistency(
    arith_atoms: Dict[Term, int],
    euf_atoms: Dict[Term, int],
    bool_model: Dict[int, bool],
    constraint_cache: Optional[Dict[Tuple[int, bool], Tuple[LinearLe, ...]]] = None,
) -> Tuple[Optional[List[int]], Dict[str, int], Dict[str, int]]:
    """Check a candidate propositional model against the theories (offline).

    Returns ``(conflict, arith_model, euf_model)``.  ``conflict`` is ``None``
    when the theories agree; otherwise it lists the SAT literals (as asserted
    by the candidate model) whose conjunction is theory-inconsistent.  When a
    theory fails to localise its inconsistency the full set of asserted
    literals of that theory is returned, which is always a valid (if coarse)
    explanation.

    ``constraint_cache`` memoises the pure atom-to-constraint translation
    keyed by ``(atom_var, polarity)``; across the many theory iterations of
    an enumeration workload this is the single hottest path.
    """
    arith_model: Dict[str, int] = {}
    euf_model: Dict[str, int] = {}

    # ---- arithmetic ----
    constraints: List[LinearLe] = []
    origin_lits: List[int] = []
    for atom, var in arith_atoms.items():
        value = bool_model.get(var)
        if value is None:
            continue
        if constraint_cache is None:
            translated: Tuple[LinearLe, ...] = tuple(atom_to_constraints(atom, value))
        else:
            key = (var, value)
            cached = constraint_cache.get(key)
            if cached is None:
                cached = tuple(atom_to_constraints(atom, value))
                constraint_cache[key] = cached
            translated = cached
        origin = var if value else -var
        for constraint in translated:
            constraints.append(constraint)
            origin_lits.append(origin)

    if constraints:
        if DifferenceLogicSolver.is_applicable(constraints):
            arith: object = DifferenceLogicSolver()
        else:
            arith = LinearIntSolver()
        arith.assert_all(constraints)  # type: ignore[attr-defined]
        outcome = arith.check()  # type: ignore[attr-defined]
        if not outcome.satisfiable:
            conflict = sorted({origin_lits[i] for i in outcome.conflict or []})
            return conflict or sorted(set(origin_lits)), arith_model, euf_model
        arith_model = outcome.model or {}

    # ---- EUF ----
    if euf_atoms:
        euf = CongruenceClosure()
        euf_origin: List[int] = []
        for atom, var in euf_atoms.items():
            value = bool_model.get(var)
            if value is None:
                continue
            lhs, rhs = atom.args
            if value:
                euf.assert_equal(lhs, rhs)
            else:
                euf.assert_distinct(lhs, rhs)
            euf_origin.append(var if value else -var)
        outcome = euf.check()
        if not outcome.satisfiable:
            conflict = sorted({euf_origin[i] for i in outcome.conflict or []})
            return conflict or sorted(set(euf_origin)), arith_model, euf_model
        euf_model = outcome.model or {}

    return None, arith_model, euf_model


def _assemble_model(
    atom_to_var: Dict[Term, int],
    bool_model: Dict[int, bool],
    variables: Dict[str, object],
    arith_model: Dict[str, int],
    euf_model: Dict[str, int],
) -> Model:
    """Combine theory models and the SAT assignment into a full model."""
    values: Dict[str, object] = {}
    # Theory values first.
    values.update(arith_model)
    values.update(euf_model)
    # Boolean variables straight from the SAT model.
    for atom, var in atom_to_var.items():
        if atom.kind == "var" and atom.sort.is_bool:
            values[atom.name] = bool_model.get(var, False)
    # Defaults for anything the formula mentions but nothing constrained.
    for name, sort in variables.items():
        if name not in values:
            values[name] = False if getattr(sort, "is_bool", False) else 0
    return Model(values)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Online theory core (the TheoryListener implementation)
# ---------------------------------------------------------------------------


class TheoryCore(TheoryListener):
    """Routes the SAT trail into the incremental theory solvers.

    One core owns one :class:`IncrementalCongruenceClosure` and one
    arithmetic solver (:class:`IncrementalDifferenceLogic` until the first
    non-difference constraint arrives, then transparently migrated to
    :class:`IncrementalLinearInt`).  Every streamed literal pushes one
    frame recording both theories' trail heights, so ``on_backjump`` can
    retract them in lockstep with the SAT trail regardless of which theory
    (if any) the literal belonged to.

    The atom vocabulary — which SAT variable means which theory atom — is
    registered up front (and extended incrementally by the persistent
    engine) and survives backjumps, restarts and check boundaries; only the
    asserted trail retracts.
    """

    def __init__(
        self,
        constraint_cache: Optional[Dict[Tuple[int, bool], Tuple[LinearLe, ...]]] = None,
        idl_propagation: bool = True,
    ) -> None:
        self._euf = IncrementalCongruenceClosure()
        self._idl_propagation = idl_propagation
        self._arith: Union[IncrementalDifferenceLogic, IncrementalLinearInt] = (
            IncrementalDifferenceLogic(propagate=idl_propagation)
        )
        self._arith_is_lia = False
        # After migrating to LIA, the retired IDL solver is kept (frozen)
        # so the lazy explanations of its still-live propagations resolve.
        self._idl_frozen: Optional[IncrementalDifferenceLogic] = None
        self._arith_vars: Dict[int, Term] = {}
        self._euf_vars: Dict[int, Term] = {}
        self._cache = constraint_cache if constraint_cache is not None else {}
        # Memoised "does asserting this phase of this atom force the LIA
        # migration?" — the check walks every constraint of the atom, and
        # on_assert is the single hottest theory entry point.
        self._needs_lia: Dict[Tuple[int, bool], bool] = {}
        # Memoised IDL edge groups per atom phase (see idl.edge_groups):
        # the graph edges of an assertion are a pure function of the atom
        # and its polarity, and re-deriving them dominated assert time.
        self._idl_edges: Dict[Tuple[int, bool], list] = {}
        # One (arith_height, euf_height) frame per streamed literal.
        self._frames: List[Tuple[int, int]] = []
        # EUF trail height at the time each propagation was emitted, so a
        # lazy explanation can be restricted to the antecedent prefix.
        self._prop_basis: Dict[int, int] = {}
        self._arith_model: Dict[str, int] = {}
        self._euf_model: Dict[str, int] = {}
        #: Explanation accounting (conflicts + lazy propagation reasons).
        self.explanations = 0
        self.explanation_literals = 0
        #: Propagations emitted, split by originating theory.
        self.euf_propagations = 0
        self.idl_propagations = 0

    # -- vocabulary -------------------------------------------------------------

    def register_atom(self, atom: Term, var: int) -> None:
        """Declare SAT variable ``var`` as theory atom ``atom``."""
        kind = _classify_atom(atom)
        _reject_atom_kind(kind)
        if kind == "arith":
            self._arith_vars[var] = atom
            if self._idl_propagation and not self._arith_is_lia:
                self._register_idl_atom(var)
        elif kind == "euf":
            self._euf_vars[var] = atom
            self._euf.register_atom(var, atom.args[0], atom.args[1])

    def set_idl_propagation(self, enabled: bool) -> None:
        """Pause/resume IDL bound propagation at a check boundary.

        Pausing only stops *new* emissions (already-reported literals keep
        their lazily materialisable explanations), so it is always sound.
        Resuming re-enables detection for the atoms registered while the
        lane was on — a core constructed with ``idl_propagation=False``
        never registered any, so the toggle is a no-op there.
        """
        self._idl_propagation = enabled
        if isinstance(self._arith, IncrementalDifferenceLogic):
            self._arith.set_propagation(enabled)

    def _register_idl_atom(self, var: int) -> None:
        """Register ``var`` for IDL bound propagation when both phases fit.

        Non-difference atoms (which will migrate the lane to LIA the moment
        they are asserted) and atoms whose negation is not a conjunctive
        constraint simply stay unregistered — propagation is an
        optimisation, never a requirement.
        """
        try:
            positive = self._constraints_for(var, True)
            negative = self._constraints_for(var, False)
        except SolverError:
            return
        if len(positive) != 1 or len(negative) != 1:
            return
        if not positive[0].is_difference or not negative[0].is_difference:
            return
        assert isinstance(self._arith, IncrementalDifferenceLogic)
        self._arith.register_atom(var, positive[0], negative[0])

    @property
    def num_arith_atoms(self) -> int:
        return len(self._arith_vars)

    @property
    def num_euf_atoms(self) -> int:
        return len(self._euf_vars)

    @property
    def arith_model(self) -> Dict[str, int]:
        """Arithmetic model captured by the last successful final check."""
        return self._arith_model

    @property
    def euf_model(self) -> Dict[str, int]:
        """EUF model captured by the last successful final check."""
        return self._euf_model

    def _constraints_for(self, var: int, positive: bool) -> Tuple[LinearLe, ...]:
        key = (var, positive)
        cached = self._cache.get(key)
        if cached is None:
            cached = tuple(atom_to_constraints(self._arith_vars[var], positive))
            self._cache[key] = cached
        return cached

    def _migrate_to_lia(self) -> None:
        """Replay the IDL trail into a LIA solver (first non-difference atom)."""
        lia = IncrementalLinearInt()
        for lit, constraints in self._arith.assertions:
            conflict = lia.assert_lit(lit, constraints)
            if conflict is not None:  # pragma: no cover - IDL-feasible prefix
                raise SolverError("LIA migration of a consistent IDL trail failed")
        # Freeze the IDL solver for lazy explanations of propagations it
        # already reported: a live propagated literal's explanation prefix
        # is exactly the frozen solver's edge prefix, which never mutates
        # again.  Undrained pending entailments are dropped — propagation
        # is best-effort and the LIA lane has no propagation of its own.
        assert isinstance(self._arith, IncrementalDifferenceLogic)
        self._arith.take_propagations()
        self._idl_frozen = self._arith
        self._arith = lia
        self._arith_is_lia = True

    # -- TheoryListener ---------------------------------------------------------

    def on_assert(self, lit: int) -> Optional[Sequence[int]]:
        var = abs(lit)
        self._frames.append((self._arith.num_asserted, self._euf.num_asserted))
        conflict: Optional[List[int]] = None
        if var in self._arith_vars:
            constraints = self._constraints_for(var, lit > 0)
            if not self._arith_is_lia:
                key = (var, lit > 0)
                needs_lia = self._needs_lia.get(key)
                if needs_lia is None:
                    needs_lia = any(not c.is_difference for c in constraints)
                    self._needs_lia[key] = needs_lia
                if needs_lia:
                    self._migrate_to_lia()
            if self._arith_is_lia:
                conflict = self._arith.assert_lit(lit, constraints)
            else:
                key = (var, lit > 0)
                edges = self._idl_edges.get(key)
                if edges is None:
                    edges = edge_groups(lit, constraints)
                    self._idl_edges[key] = edges
                conflict = self._arith.assert_lit(lit, constraints, edges)
        elif var in self._euf_vars:
            atom = self._euf_vars[var]
            conflict = self._euf.assert_lit(lit, atom.args[0], atom.args[1], lit > 0)
        if conflict is not None:
            self._record_explanation(conflict)
        return conflict

    def propagations(self) -> Sequence[int]:
        pending = self._euf.entailed()
        if pending:
            basis = self._euf.num_asserted
            for lit in pending:
                if lit not in self._prop_basis:
                    self.euf_propagations += 1
                self._prop_basis[lit] = basis
        if self._idl_propagation and not self._arith_is_lia:
            assert isinstance(self._arith, IncrementalDifferenceLogic)
            idl_pending = self._arith.take_propagations()
            if idl_pending:
                self.idl_propagations += len(idl_pending)
                pending = list(pending) + idl_pending
        return pending

    def explain(self, lit: int) -> Sequence[int]:
        if abs(lit) in self._arith_vars:
            solver = self._idl_frozen if self._arith_is_lia else self._arith
            assert isinstance(solver, IncrementalDifferenceLogic)
            explanation: Sequence[int] = solver.explain_entailed(lit)
        else:
            explanation = self._euf.explain(lit, limit=self._prop_basis.get(lit))
        self._record_explanation(explanation)
        return explanation

    def on_backjump(self, kept: int) -> None:
        if kept >= len(self._frames):
            return
        arith_height, euf_height = self._frames[kept]
        del self._frames[kept:]
        self._arith.retract_to(arith_height)
        self._euf.retract_to(euf_height)
        if self._prop_basis:
            self._prop_basis = {
                lit: basis
                for lit, basis in self._prop_basis.items()
                if basis <= euf_height
            }

    def on_final_check(self) -> Optional[Sequence[int]]:
        if self._arith_is_lia:
            result = self._arith.final_check()
            if not result.satisfiable:
                conflict = sorted(set(result.conflict or []))
                self._record_explanation(conflict)
                return conflict
            self._arith_model = result.model or {}
        else:
            self._arith_model = self._arith.model()
        self._euf_model = self._euf.model()
        return None

    # -- internals --------------------------------------------------------------

    def _record_explanation(self, lits: Sequence[int]) -> None:
        self.explanations += 1
        self.explanation_literals += len(lits)


class DpllTEngine:
    """One-shot DPLL(T) check over a list of assertions.

    The engine is cheap to construct; :class:`repro.smt.solver.Solver`
    creates a fresh engine per ``check`` call, which keeps the public API
    simple (push/pop is handled at the assertion-stack level).

    ``theory_mode="online"`` (default) wires the incremental theories into
    the SAT search; ``theory_mode="offline"`` runs the classic
    model-then-check lazy loop — kept as the reference semantics for
    differential testing.
    """

    def __init__(
        self,
        assertions: Sequence[Term],
        max_iterations: int = 200_000,
        theory_mode: str = "online",
        reduce_db: bool = True,
        reduce_base: int = DEFAULT_REDUCE_BASE,
        theory_bump: float = DEFAULT_THEORY_BUMP,
        idl_propagation: bool = True,
    ) -> None:
        self._raw_assertions = list(assertions)
        self._max_iterations = max_iterations
        self.theory_mode = _validate_theory_mode(theory_mode)
        self._reduce_db = reduce_db
        self._reduce_base = reduce_base
        self._theory_bump = theory_bump
        self._idl_propagation = idl_propagation
        self._deadline: Optional[float] = None
        self.stats = SmtStats()
        self._model: Optional[Model] = None

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Bound every later :meth:`check` by a ``time.monotonic`` instant.

        A check that runs past the deadline returns
        :data:`CheckResult.UNKNOWN` — the wall-clock twin of the
        ``max_iterations`` budget.  ``None`` clears the bound.
        """
        self._deadline = deadline

    def _make_sat_solver(self) -> SatSolver:
        return SatSolver(
            reduce_db=self._reduce_db,
            reduce_base=self._reduce_base,
            theory_bump=self._theory_bump,
        )

    # ------------------------------------------------------------------ public

    def check(self) -> CheckResult:
        """Run the DPLL(T) search to completion."""
        if self.theory_mode == "offline":
            return self._check_offline()
        return self._check_online()

    def model(self) -> Model:
        """The model found by the last successful :meth:`check`."""
        if self._model is None:
            raise SolverError("no model available (last check was not SAT)")
        return self._model

    # ------------------------------------------------------------------ online

    def _check_online(self) -> CheckResult:
        assertions = [preprocess(a) for a in self._raw_assertions]
        cnf = tseitin(assertions)
        self.stats.sat_clauses = len(cnf.clauses)
        self.stats.sat_variables = cnf.num_vars
        self.stats.atoms = len(cnf.atom_to_var)

        sat = self._make_sat_solver()
        sat.ensure_vars(cnf.num_vars)
        core = TheoryCore(idl_propagation=self._idl_propagation)
        sat.set_theory(core)
        for atom, var in cnf.atom_to_var.items():
            core.register_atom(atom, var)
        self.stats.arith_atoms = core.num_arith_atoms
        self.stats.euf_atoms = core.num_euf_atoms

        variables: Dict[str, object] = {}
        for assertion in assertions:
            variables.update(free_variables(assertion))

        try:
            if not sat.add_clauses(cnf.clauses):
                return CheckResult.UNSAT
            if self._max_iterations is not None and self._max_iterations < 1:
                return CheckResult.UNKNOWN
            # The iteration budget bounds *theory* conflicts (the online
            # analogue of offline's blocking-clause rounds); purely Boolean
            # search stays unbudgeted, exactly like the offline loop.
            result = sat.solve(
                theory_conflict_limit=self._max_iterations,
                deadline=self._deadline,
            )
            if result is SatResult.UNSAT:
                return CheckResult.UNSAT
            if result is SatResult.UNKNOWN:
                return CheckResult.UNKNOWN
            self._model = _assemble_model(
                cnf.atom_to_var,
                sat.model(),
                variables,
                core.arith_model,
                core.euf_model,
            )
            return CheckResult.SAT
        finally:
            # Single capture point: every exit path reports the same numbers.
            self.stats.sat_decisions = sat.stats.decisions
            self.stats.sat_conflicts = sat.stats.conflicts
            self.stats.theory_conflicts = sat.stats.theory_conflicts
            self.stats.theory_propagations = sat.stats.theory_propagations
            self.stats.theory_propagations_euf = core.euf_propagations
            self.stats.theory_propagations_idl = core.idl_propagations
            self.stats.theory_partial_conflicts = sat.stats.theory_partial_conflicts
            self.stats.iterations = 1 + sat.stats.theory_conflicts
            self.stats.explanations = core.explanations
            self.stats.explanation_literals = core.explanation_literals
            self.stats.reduce_db_rounds = sat.stats.reduce_db_rounds
            self.stats.clauses_deleted = sat.stats.clauses_deleted
            self.stats.max_live_learned = sat.stats.max_live_learned
            self.stats.compactions = getattr(sat.stats, "compactions", 0)
            self.stats.arena_bytes = getattr(sat.stats, "arena_bytes", 0)

    # ------------------------------------------------------------------ offline

    def _check_offline(self) -> CheckResult:
        assertions = [preprocess(a) for a in self._raw_assertions]
        cnf = tseitin(assertions)
        self.stats.sat_clauses = len(cnf.clauses)
        self.stats.sat_variables = cnf.num_vars
        self.stats.atoms = len(cnf.atom_to_var)

        sat = self._make_sat_solver()
        sat.ensure_vars(cnf.num_vars)

        arith_atoms: Dict[Term, int] = {}
        euf_atoms: Dict[Term, int] = {}
        for atom, var in cnf.atom_to_var.items():
            _partition_atom(atom, var, arith_atoms, euf_atoms)
        self.stats.arith_atoms = len(arith_atoms)
        self.stats.euf_atoms = len(euf_atoms)

        variables: Dict[str, object] = {}
        for assertion in assertions:
            variables.update(free_variables(assertion))

        constraint_cache: Dict[Tuple[int, bool], Tuple[LinearLe, ...]] = {}
        try:
            if not sat.add_clauses(cnf.clauses):
                return CheckResult.UNSAT
            while True:
                self.stats.iterations += 1
                if self.stats.iterations > self._max_iterations:
                    return CheckResult.UNKNOWN
                if self._deadline is not None and time.monotonic() >= self._deadline:
                    return CheckResult.UNKNOWN
                result = sat.solve(deadline=self._deadline)
                if result is SatResult.UNSAT:
                    return CheckResult.UNSAT
                if result is SatResult.UNKNOWN:  # pragma: no cover - no limit set
                    return CheckResult.UNKNOWN

                bool_model = sat.model()
                conflict_lits, arith_model, euf_model = _theory_consistency(
                    arith_atoms, euf_atoms, bool_model, constraint_cache
                )
                if conflict_lits is None:
                    # Theories agree: assemble the model.
                    self._model = _assemble_model(
                        cnf.atom_to_var, bool_model, variables, arith_model, euf_model
                    )
                    return CheckResult.SAT

                self.stats.theory_conflicts += 1
                if not conflict_lits:
                    # Theory inconsistency independent of any decision.
                    return CheckResult.UNSAT
                if not sat.add_clause([-lit for lit in conflict_lits]):
                    return CheckResult.UNSAT
        finally:
            # Single capture point: the UNSAT/UNKNOWN early returns used to
            # leave sat_decisions/sat_conflicts stale or zero.
            self.stats.sat_decisions = sat.stats.decisions
            self.stats.sat_conflicts = sat.stats.conflicts
            self.stats.reduce_db_rounds = sat.stats.reduce_db_rounds
            self.stats.clauses_deleted = sat.stats.clauses_deleted
            self.stats.max_live_learned = sat.stats.max_live_learned
            self.stats.compactions = getattr(sat.stats, "compactions", 0)
            self.stats.arena_bytes = getattr(sat.stats, "arena_bytes", 0)


class IncrementalDpllTEngine:
    """A persistent DPLL(T) engine with add/push/pop and assumption checks.

    Where :class:`DpllTEngine` is rebuilt from scratch for every query, this
    engine keeps all solver state alive across ``check`` calls:

    * one :class:`~repro.smt.cnf.TseitinConverter` — atoms keep their
      propositional variables and gate definitions are shared, so asserting
      the same subformula twice costs nothing;
    * one :class:`~repro.smt.sat.SatSolver` — learned clauses, variable
      activities and saved phases survive between checks;
    * one :class:`TheoryCore` (online mode) — the incremental theory
      solvers and their atom vocabulary persist alongside the SAT core;
      clauses learned from theory conflicts speak about the atom
      vocabulary, not a particular assertion set, so they remain valid and
      persist too (offline mode keeps the equivalent blocking clauses).

    Scopes are implemented with *selector literals* in the MiniSat
    tradition: an assertion added after a :meth:`push` is encoded as
    ``selector -> assertion`` and every :meth:`check` assumes the selectors
    of the open scopes; :meth:`pop` retires a selector by asserting its
    negation, permanently satisfying the scope's clauses.  Per-call
    assumptions are Tseitin-encoded to literals and assumed the same way.
    This is what makes blocking-clause enumeration and reachability probes
    cheap: the clause database is never rebuilt, only extended.
    """

    def __init__(
        self,
        max_iterations: int = 200_000,
        theory_mode: str = "online",
        reduce_db: bool = True,
        reduce_base: int = DEFAULT_REDUCE_BASE,
        theory_bump: float = DEFAULT_THEORY_BUMP,
        idl_propagation: bool = True,
    ) -> None:
        self._converter = TseitinConverter()
        self._sat = SatSolver(
            reduce_db=reduce_db,
            reduce_base=reduce_base,
            theory_bump=theory_bump,
        )
        self._max_iterations = max_iterations
        self.theory_mode = _validate_theory_mode(theory_mode)
        self._deadline: Optional[float] = None
        self._clauses_fed = 0
        self._atoms_seen = 0
        self._arith_atoms: Dict[Term, int] = {}
        self._euf_atoms: Dict[Term, int] = {}
        self._variables: Dict[str, object] = {}
        self._selectors: List[int] = []
        self._constraint_cache: Dict[Tuple[int, bool], Tuple[LinearLe, ...]] = {}
        self._core: Optional[TheoryCore] = None
        if self.theory_mode == "online":
            self._core = TheoryCore(
                self._constraint_cache, idl_propagation=idl_propagation
            )
            self._sat.set_theory(self._core)
        self._model: Optional[Model] = None
        self._last_result: Optional[CheckResult] = None
        #: Statistics of the most recent :meth:`check`.
        self.stats = SmtStats()
        #: Number of ``check`` calls served by this engine instance.
        self.total_checks = 0

    # ------------------------------------------------------------------ assertions

    def add(self, term: Term) -> None:
        """Assert ``term`` in the current scope."""
        term = preprocess(term)
        self._variables.update(free_variables(term))
        self._invalidate()
        if self._selectors:
            self._encode_guarded(term, self._selectors[-1])
        else:
            self._converter.encode_assertion(term)
        self._flush()

    def push(self) -> None:
        """Open a scope: later assertions hold only while the scope is open.

        Opening a scope adds no constraints, so the model of the last check
        (if any) stays valid and available.
        """
        self._selectors.append(self._converter.fresh_var())

    def pop(self) -> None:
        """Close the innermost scope, retiring its assertions."""
        if not self._selectors:
            raise SolverError("pop without matching push")
        selector = self._selectors.pop()
        self._sat.ensure_vars(self._converter.result.num_vars)
        self._sat.add_clause([-selector])
        self._invalidate()

    @property
    def scope_depth(self) -> int:
        """Number of currently open scopes."""
        return len(self._selectors)

    # ------------------------------------------------------------------ solving

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the live assertions plus ``assumptions``.

        Assumptions are scoped to this single call; nothing learned from a
        previous call is forgotten.
        """
        self._model = None
        self.total_checks += 1
        assumption_lits: List[int] = []
        for term in assumptions:
            term = preprocess(term)
            self._variables.update(free_variables(term))
            assumption_lits.append(self._converter.literal(term))
        self._flush()

        stats = SmtStats()
        self.stats = stats
        stats.sat_clauses = self._sat.num_clauses
        stats.sat_variables = self._sat.num_vars
        stats.atoms = self._atoms_seen
        if self._core is not None:
            stats.arith_atoms = self._core.num_arith_atoms
            stats.euf_atoms = self._core.num_euf_atoms
        else:
            stats.arith_atoms = len(self._arith_atoms)
            stats.euf_atoms = len(self._euf_atoms)

        sat_assumptions = list(self._selectors) + assumption_lits
        if self.theory_mode == "online":
            return self._check_online(stats, sat_assumptions)
        return self._check_offline(stats, sat_assumptions)

    def _check_online(
        self, stats: SmtStats, sat_assumptions: List[int]
    ) -> CheckResult:
        assert self._core is not None
        sat, core = self._sat, self._core
        # The SAT core's counters are engine-lifetime; report per-check deltas.
        base_decisions = sat.stats.decisions
        base_conflicts = sat.stats.conflicts
        base_theory_conflicts = sat.stats.theory_conflicts
        base_theory_propagations = sat.stats.theory_propagations
        base_partial = sat.stats.theory_partial_conflicts
        base_explanations = core.explanations
        base_explanation_lits = core.explanation_literals
        base_euf_props = core.euf_propagations
        base_idl_props = core.idl_propagations
        base_reduce_rounds = sat.stats.reduce_db_rounds
        base_deleted = sat.stats.clauses_deleted
        try:
            if self._max_iterations is not None and self._max_iterations < 1:
                return self._finish(CheckResult.UNKNOWN)
            # Budget theory conflicts only (see DpllTEngine._check_online).
            result = sat.solve(
                sat_assumptions,
                theory_conflict_limit=self._max_iterations,
                deadline=self._deadline,
            )
            if result is SatResult.UNSAT:
                return self._finish(CheckResult.UNSAT)
            if result is SatResult.UNKNOWN:
                return self._finish(CheckResult.UNKNOWN)
            self._model = _assemble_model(
                self._converter.result.atom_to_var,
                sat.model(),
                self._variables,
                core.arith_model,
                core.euf_model,
            )
            return self._finish(CheckResult.SAT)
        finally:
            stats.sat_decisions = sat.stats.decisions - base_decisions
            stats.sat_conflicts = sat.stats.conflicts - base_conflicts
            stats.theory_conflicts = (
                sat.stats.theory_conflicts - base_theory_conflicts
            )
            stats.theory_propagations = (
                sat.stats.theory_propagations - base_theory_propagations
            )
            stats.theory_partial_conflicts = (
                sat.stats.theory_partial_conflicts - base_partial
            )
            stats.iterations = 1 + stats.theory_conflicts
            stats.explanations = core.explanations - base_explanations
            stats.explanation_literals = (
                core.explanation_literals - base_explanation_lits
            )
            stats.theory_propagations_euf = core.euf_propagations - base_euf_props
            stats.theory_propagations_idl = core.idl_propagations - base_idl_props
            stats.reduce_db_rounds = (
                sat.stats.reduce_db_rounds - base_reduce_rounds
            )
            stats.clauses_deleted = sat.stats.clauses_deleted - base_deleted
            # A gauge, not a counter: the engine-lifetime peak is the number
            # that shows whether the live clause set stays bounded.
            stats.max_live_learned = sat.stats.max_live_learned
            stats.compactions = getattr(sat.stats, "compactions", 0)
            stats.arena_bytes = getattr(sat.stats, "arena_bytes", 0)

    def _check_offline(
        self, stats: SmtStats, sat_assumptions: List[int]
    ) -> CheckResult:
        # The SAT core's counters are engine-lifetime; report per-check deltas.
        base_decisions = self._sat.stats.decisions
        base_conflicts = self._sat.stats.conflicts
        base_reduce_rounds = self._sat.stats.reduce_db_rounds
        base_deleted = self._sat.stats.clauses_deleted
        try:
            while True:
                stats.iterations += 1
                if stats.iterations > self._max_iterations:
                    return self._finish(CheckResult.UNKNOWN)
                if (
                    self._deadline is not None
                    and time.monotonic() >= self._deadline
                ):
                    return self._finish(CheckResult.UNKNOWN)
                result = self._sat.solve(sat_assumptions, deadline=self._deadline)
                if result is SatResult.UNSAT:
                    return self._finish(CheckResult.UNSAT)
                if result is SatResult.UNKNOWN:  # pragma: no cover - no limit set
                    return self._finish(CheckResult.UNKNOWN)

                bool_model = self._sat.model()
                conflict_lits, arith_model, euf_model = _theory_consistency(
                    self._arith_atoms, self._euf_atoms, bool_model,
                    self._constraint_cache,
                )
                if conflict_lits is None:
                    self._model = _assemble_model(
                        self._converter.result.atom_to_var,
                        bool_model,
                        self._variables,
                        arith_model,
                        euf_model,
                    )
                    return self._finish(CheckResult.SAT)

                stats.theory_conflicts += 1
                if not conflict_lits:  # pragma: no cover - theories always explain
                    return self._finish(CheckResult.UNSAT)
                # The lemma is theory-valid, so it may outlive scopes and
                # assumptions: this is the learned state reused across checks.
                if not self._sat.add_clause([-lit for lit in conflict_lits]):
                    return self._finish(CheckResult.UNSAT)
        finally:
            stats.sat_decisions = self._sat.stats.decisions - base_decisions
            stats.sat_conflicts = self._sat.stats.conflicts - base_conflicts
            stats.reduce_db_rounds = (
                self._sat.stats.reduce_db_rounds - base_reduce_rounds
            )
            stats.clauses_deleted = self._sat.stats.clauses_deleted - base_deleted
            stats.max_live_learned = self._sat.stats.max_live_learned
            stats.compactions = getattr(self._sat.stats, "compactions", 0)
            stats.arena_bytes = getattr(self._sat.stats, "arena_bytes", 0)

    def model(self) -> Model:
        """The model of the last :meth:`check`, which must have returned SAT."""
        if self._model is None:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._model

    def set_idl_propagation(self, enabled: bool) -> None:
        """Pause/resume IDL bound propagation between checks (online mode).

        Model-enumeration loops toggle the lane off: streaming SAT models
        rarely profits from bound propagation, while the per-assertion
        entailment pass still costs two Dijkstras.  A no-op in offline mode.
        """
        if self._core is not None:
            self._core.set_idl_propagation(enabled)

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Bound every later :meth:`check` by a ``time.monotonic`` instant.

        A check that runs past the deadline returns
        :data:`CheckResult.UNKNOWN`; ``None`` clears the bound.  The
        deadline is a per-check *query* budget — learned clauses and theory
        state from a timed-out check survive, so a retry with a larger
        budget starts warm.
        """
        self._deadline = deadline

    @property
    def last_result(self) -> Optional[CheckResult]:
        """Outcome of the most recent check (None after add/push/pop)."""
        return self._last_result

    # ------------------------------------------------------------------ internals

    def _finish(self, result: CheckResult) -> CheckResult:
        self._last_result = result
        return result

    def _invalidate(self) -> None:
        self._model = None
        self._last_result = None

    def _encode_guarded(self, term: Term, selector: int) -> None:
        """Encode ``selector -> term``, splitting top-level conjunctions."""
        if term.is_true:
            return
        if term.kind == "and":
            for child in term.args:
                self._encode_guarded(child, selector)
            return
        self._converter.add_raw_clause([-selector, self._converter.literal(term)])

    def _flush(self) -> None:
        """Feed clauses and atoms created since the last flush to the SAT core."""
        result = self._converter.result
        self._sat.ensure_vars(result.num_vars)
        clauses = result.clauses
        while self._clauses_fed < len(clauses):
            self._sat.add_clause(clauses[self._clauses_fed])
            self._clauses_fed += 1
        if len(result.atom_to_var) > self._atoms_seen:
            atom_items = list(result.atom_to_var.items())
            # Advance the counter per atom: if partitioning rejects one (e.g.
            # an unsupported Boolean predicate), atoms after it must not be
            # silently skipped — the next flush retries and re-raises.
            while self._atoms_seen < len(atom_items):
                atom, var = atom_items[self._atoms_seen]
                if self._core is not None:
                    self._core.register_atom(atom, var)
                else:
                    _partition_atom(atom, var, self._arith_atoms, self._euf_atoms)
                self._atoms_seen += 1
