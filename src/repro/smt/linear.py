"""Normalisation of integer terms into linear forms.

The theory solvers work over *normalised atoms* of the shape

    sum_i  c_i * x_i   <=   k          (c_i, k integers)

This module converts arbitrary ``Int``-sorted terms built from ``Add``,
``Sub``, ``Neg``, ``Mul`` (by constants), variables and constants into a
:class:`LinearExpr`, and arithmetic atoms (``le``, ``lt``, ``eq``) into one
or two :class:`LinearLe` constraints.

Strictness over the integers is eliminated up-front:  ``a < b`` is exactly
``a <= b - 1``, and the negation of ``a <= b`` is ``b <= a - 1``.  This means
both the positive and the negative phase of every arithmetic atom is again a
single ``LinearLe`` — a property the lazy DPLL(T) loop relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.smt.terms import Term
from repro.utils.errors import SolverError

__all__ = ["LinearExpr", "LinearLe", "linearize", "atom_to_constraints"]


@dataclass(frozen=True)
class LinearExpr:
    """An integer-valued linear expression ``sum coeffs[x] * x + const``."""

    coeffs: Tuple[Tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def constant(value: int) -> "LinearExpr":
        return LinearExpr((), value)

    @staticmethod
    def variable(name: str) -> "LinearExpr":
        return LinearExpr(((name, 1),), 0)

    @staticmethod
    def from_dict(coeffs: Dict[str, int], const: int = 0) -> "LinearExpr":
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return LinearExpr(items, const)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def add(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = self.as_dict()
        for var, coeff in other.coeffs:
            coeffs[var] = coeffs.get(var, 0) + coeff
        return LinearExpr.from_dict(coeffs, self.const + other.const)

    def scale(self, factor: int) -> "LinearExpr":
        if factor == 0:
            return LinearExpr.constant(0)
        return LinearExpr.from_dict(
            {v: c * factor for v, c in self.coeffs}, self.const * factor
        )

    def negate(self) -> "LinearExpr":
        return self.scale(-1)

    def sub(self, other: "LinearExpr") -> "LinearExpr":
        return self.add(other.negate())

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a (total, for the mentioned variables) assignment."""
        total = self.const
        for var, coeff in self.coeffs:
            total += coeff * assignment[var]
        return total

    def __str__(self) -> str:
        parts = []
        for var, coeff in self.coeffs:
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class LinearLe:
    """The normalised constraint ``expr <= bound``.

    ``expr`` carries no constant part — it is folded into ``bound``.
    """

    expr: LinearExpr
    bound: int

    def negated(self) -> "LinearLe":
        """The integer negation: ``not (e <= b)``  ==  ``-e <= -b - 1``."""
        return LinearLe(self.expr.negate(), -self.bound - 1)

    @property
    def is_difference(self) -> bool:
        """True for difference-logic constraints ``x - y <= k``, ``x <= k``,
        ``-x <= k`` or constant constraints."""
        coeffs = [c for _, c in self.expr.coeffs]
        if len(coeffs) == 0:
            return True
        if len(coeffs) == 1:
            return coeffs[0] in (1, -1)
        if len(coeffs) == 2:
            return sorted(coeffs) == [-1, 1]
        return False

    @property
    def is_trivially_true(self) -> bool:
        return self.expr.is_constant and 0 <= self.bound

    @property
    def is_trivially_false(self) -> bool:
        return self.expr.is_constant and 0 > self.bound

    def holds(self, assignment: Dict[str, int]) -> bool:
        return self.expr.evaluate(assignment) <= self.bound

    def __str__(self) -> str:
        return f"{self.expr} <= {self.bound}"


def linearize(term: Term) -> LinearExpr:
    """Convert an ``Int``-sorted term into a :class:`LinearExpr`.

    Raises :class:`SolverError` for non-linear or non-arithmetic structure
    (e.g. integer ``ite`` — eliminate those with
    :func:`repro.smt.simplify.eliminate_ite` first).
    """
    if not term.sort.is_int:
        raise SolverError(f"linearize expects an Int term, got {term.sort}")
    kind = term.kind
    if kind == "intconst":
        return LinearExpr.constant(term.value)  # type: ignore[arg-type]
    if kind == "var":
        return LinearExpr.variable(term.name)  # type: ignore[arg-type]
    if kind == "app" and not term.args:
        # Nullary uninterpreted Int constant: treat as a variable named by
        # its function symbol.
        return LinearExpr.variable(term.name)  # type: ignore[arg-type]
    if kind == "add":
        acc = LinearExpr.constant(0)
        for child in term.args:
            acc = acc.add(linearize(child))
        return acc
    if kind == "neg":
        return linearize(term.args[0]).negate()
    if kind == "mul":
        coeff_term, other = term.args
        if coeff_term.kind != "intconst":
            raise SolverError("non-linear multiplication is not supported")
        return linearize(other).scale(coeff_term.value)  # type: ignore[arg-type]
    raise SolverError(f"cannot linearize term of kind {kind!r}: {term}")


def atom_to_constraints(atom: Term, positive: bool) -> Tuple[LinearLe, ...]:
    """Translate an arithmetic atom (or its negation) into ``LinearLe``s.

    * ``a <= b``  (positive)  ->  ``a - b <= 0``
    * ``a <= b``  (negative)  ->  ``b - a <= -1``
    * ``a < b``   (positive)  ->  ``a - b <= -1``
    * ``a < b``   (negative)  ->  ``b - a <= 0``
    * ``a = b``   (positive)  ->  ``a - b <= 0``  and  ``b - a <= 0``
    * ``a = b``   (negative)  ->  *not representable as a conjunction*;
      callers must eliminate negative integer equalities before reaching the
      theory (see :func:`repro.smt.simplify.eliminate_int_equalities`).
    """
    kind = atom.kind
    if kind not in ("le", "lt", "eq"):
        raise SolverError(f"not an arithmetic atom: {atom}")
    lhs, rhs = atom.args
    diff = linearize(lhs).sub(linearize(rhs))
    expr = LinearExpr(diff.coeffs, 0)
    offset = -diff.const

    if kind == "le":
        if positive:
            return (LinearLe(expr, offset),)
        return (LinearLe(expr, offset).negated(),)
    if kind == "lt":
        if positive:
            return (LinearLe(expr, offset - 1),)
        return (LinearLe(expr, offset - 1).negated(),)
    # Equality.
    if positive:
        return (LinearLe(expr, offset), LinearLe(expr.negate(), -offset))
    raise SolverError(
        "negated integer equality reached the theory layer; "
        "run simplify.eliminate_int_equalities() on the formula first"
    )
