"""Integer difference logic (IDL) theory solver.

A conjunction of constraints of the form ``x - y <= c``, ``x <= c`` and
``-x <= c`` is satisfiable over the integers iff the corresponding
*constraint graph* has no negative-weight cycle.  The graph has one node per
variable plus a distinguished ``ZERO`` node; the constraint ``x - y <= c``
becomes an edge ``y -> x`` with weight ``c`` (reading "dist(x) may exceed
dist(y) by at most c").

Satisfiability is decided with a Bellman-Ford relaxation from a virtual
source; when a relaxation still succeeds after ``|V|`` rounds, the
predecessor chain contains a negative cycle, and the constraints labelling
its edges form a minimal inconsistent subset — exactly the explanation the
DPLL(T) loop wants.

Because all constants are integers and coefficients are ±1, rational and
integer satisfiability coincide, so the produced model is integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.linear import LinearLe
from repro.utils.errors import SolverError

__all__ = ["DifferenceLogicSolver", "TheoryResult"]

#: Name of the implicit zero node (also usable by callers as a variable that
#: is pinned to 0 in every model).
ZERO = "$zero"


@dataclass
class TheoryResult:
    """Outcome of a theory consistency check."""

    satisfiable: bool
    #: Variable assignment when satisfiable.
    model: Optional[Dict[str, int]] = None
    #: Indices (into the asserted constraint list) of an inconsistent subset
    #: when unsatisfiable.
    conflict: Optional[List[int]] = None


@dataclass
class _Edge:
    src: str
    dst: str
    weight: int
    tag: int  # index of the originating constraint


class DifferenceLogicSolver:
    """Decides conjunctions of integer difference constraints.

    The solver is used in "batch" mode by the DPLL(T) loop: all constraints
    of a candidate assignment are asserted, :meth:`check` is called once, and
    the solver is thrown away.  Asserting is O(1); checking is O(V·E).
    """

    def __init__(self) -> None:
        self._edges: List[_Edge] = []
        self._constraints: List[LinearLe] = []
        self._vars: Dict[str, None] = {ZERO: None}

    # -- constraint entry --------------------------------------------------------

    def assert_constraint(self, constraint: LinearLe) -> int:
        """Assert ``constraint``; returns its index (used in explanations)."""
        index = len(self._constraints)
        self._constraints.append(constraint)
        for edge in self._constraint_edges(constraint, index):
            self._edges.append(edge)
            self._vars.setdefault(edge.src, None)
            self._vars.setdefault(edge.dst, None)
        return index

    def assert_all(self, constraints: Sequence[LinearLe]) -> None:
        for constraint in constraints:
            self.assert_constraint(constraint)

    def _constraint_edges(self, constraint: LinearLe, tag: int) -> List[_Edge]:
        if not constraint.is_difference:
            raise SolverError(
                f"not a difference constraint: {constraint} "
                "(use LinearIntSolver for general LIA)"
            )
        coeffs = dict(constraint.expr.coeffs)
        bound = constraint.bound
        if len(coeffs) == 0:
            if bound >= 0:
                return []
            # 0 <= bound < 0: inconsistent by itself.  Encode as a tiny
            # negative self-loop on ZERO so the cycle detector reports it.
            return [_Edge(ZERO, ZERO, bound, tag)]
        if len(coeffs) == 1:
            ((var, coeff),) = coeffs.items()
            if coeff == 1:  # x <= bound
                return [_Edge(ZERO, var, bound, tag)]
            return [_Edge(var, ZERO, bound, tag)]  # -x <= bound
        (pos_var,) = [v for v, c in coeffs.items() if c == 1]
        (neg_var,) = [v for v, c in coeffs.items() if c == -1]
        # pos - neg <= bound   ==>   edge neg -> pos with weight bound.
        return [_Edge(neg_var, pos_var, bound, tag)]

    # -- checking ----------------------------------------------------------------

    def check(self) -> TheoryResult:
        """Check satisfiability of everything asserted so far."""
        nodes = list(self._vars)
        index_of = {name: i for i, name in enumerate(nodes)}
        n = len(nodes)
        # Virtual super-source: distance 0 to every node.  Implemented by
        # initialising every distance to 0, which is equivalent to one
        # relaxation round from the source.
        dist = [0] * n
        pred_edge: List[Optional[_Edge]] = [None] * n

        edges = self._edges
        updated_node: Optional[int] = None
        # With every distance initialised to 0 (implicit super-source round),
        # shortest simple paths need at most ``n`` further relaxation rounds;
        # an update in round ``n + 1`` therefore witnesses a negative cycle.
        for _ in range(n + 1):
            updated_node = None
            for edge in edges:
                u = index_of[edge.src]
                v = index_of[edge.dst]
                if dist[u] + edge.weight < dist[v]:
                    dist[v] = dist[u] + edge.weight
                    pred_edge[v] = edge
                    updated_node = v
            if updated_node is None:
                break

        if updated_node is not None:
            cycle = self._extract_cycle(updated_node, nodes, index_of, pred_edge)
            return TheoryResult(satisfiable=False, conflict=sorted(set(cycle)))

        # Satisfiable: shift so that ZERO maps to exactly 0.
        shift = dist[index_of[ZERO]]
        model = {
            name: dist[i] - shift for i, name in enumerate(nodes) if name != ZERO
        }
        return TheoryResult(satisfiable=True, model=model)

    def _extract_cycle(
        self,
        start: int,
        nodes: List[str],
        index_of: Dict[str, int],
        pred_edge: List[Optional[_Edge]],
    ) -> List[int]:
        """Walk predecessor edges from a node relaxed in round |V| to find a cycle."""
        # Move onto the cycle: after n steps we are guaranteed to be on it.
        node = start
        for _ in range(len(nodes)):
            edge = pred_edge[node]
            assert edge is not None
            node = index_of[edge.src]
        # Collect the cycle.
        cycle_tags: List[int] = []
        cursor = node
        while True:
            edge = pred_edge[cursor]
            assert edge is not None
            cycle_tags.append(edge.tag)
            cursor = index_of[edge.src]
            if cursor == node:
                break
        return cycle_tags

    # -- convenience -------------------------------------------------------------

    @staticmethod
    def is_applicable(constraints: Sequence[LinearLe]) -> bool:
        """True if every constraint is in the difference fragment."""
        return all(c.is_difference for c in constraints)

    def __len__(self) -> int:
        return len(self._constraints)
