"""Integer difference logic (IDL) theory solver.

A conjunction of constraints of the form ``x - y <= c``, ``x <= c`` and
``-x <= c`` is satisfiable over the integers iff the corresponding
*constraint graph* has no negative-weight cycle.  The graph has one node per
variable plus a distinguished ``ZERO`` node; the constraint ``x - y <= c``
becomes an edge ``y -> x`` with weight ``c`` (reading "dist(x) may exceed
dist(y) by at most c").

Satisfiability is decided with a Bellman-Ford relaxation from a virtual
source; when a relaxation still succeeds after ``|V|`` rounds, the
predecessor chain contains a negative cycle, and the constraints labelling
its edges form a minimal inconsistent subset — exactly the explanation the
DPLL(T) loop wants.

Because all constants are integers and coefficients are ±1, rational and
integer satisfiability coincide, so the produced model is integral.

The incremental solver additionally performs *bound propagation* for the
online DPLL(T) engine: difference atoms registered up front
(:meth:`IncrementalDifferenceLogic.register_atom`) are reported as entailed
(:meth:`take_propagations`) when a shortest path through a newly inserted
edge proves their bound, turning what would be a full
conflict/analyze/backjump round trip into a unit propagation.  Explanations
(:meth:`explain_entailed`) are the literals labelling one entailing path,
restricted to the edges present when the propagation was emitted so lazily
materialised reasons stay sound for conflict analysis.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.linear import LinearLe
from repro.utils.errors import SolverError

__all__ = [
    "DifferenceLogicSolver",
    "IncrementalDifferenceLogic",
    "TheoryResult",
    "atom_edge",
    "edge_groups",
]

#: Name of the implicit zero node (also usable by callers as a variable that
#: is pinned to 0 in every model).
ZERO = "$zero"


@dataclass
class TheoryResult:
    """Outcome of a theory consistency check."""

    satisfiable: bool
    #: Variable assignment when satisfiable.
    model: Optional[Dict[str, int]] = None
    #: Indices (into the asserted constraint list) of an inconsistent subset
    #: when unsatisfiable.
    conflict: Optional[List[int]] = None


@dataclass(slots=True)
class _Edge:
    src: str
    dst: str
    weight: int
    tag: int  # index of the originating constraint


class DifferenceLogicSolver:
    """Decides conjunctions of integer difference constraints.

    The solver is used in "batch" mode by the DPLL(T) loop: all constraints
    of a candidate assignment are asserted, :meth:`check` is called once, and
    the solver is thrown away.  Asserting is O(1); checking is O(V·E).
    """

    def __init__(self) -> None:
        self._edges: List[_Edge] = []
        self._constraints: List[LinearLe] = []
        self._vars: Dict[str, None] = {ZERO: None}

    # -- constraint entry --------------------------------------------------------

    def assert_constraint(self, constraint: LinearLe) -> int:
        """Assert ``constraint``; returns its index (used in explanations)."""
        index = len(self._constraints)
        self._constraints.append(constraint)
        for edge in self._constraint_edges(constraint, index):
            self._edges.append(edge)
            self._vars.setdefault(edge.src, None)
            self._vars.setdefault(edge.dst, None)
        return index

    def assert_all(self, constraints: Sequence[LinearLe]) -> None:
        for constraint in constraints:
            self.assert_constraint(constraint)

    def _constraint_edges(self, constraint: LinearLe, tag: int) -> List[_Edge]:
        if not constraint.is_difference:
            raise SolverError(
                f"not a difference constraint: {constraint} "
                "(use LinearIntSolver for general LIA)"
            )
        coeffs = dict(constraint.expr.coeffs)
        bound = constraint.bound
        if len(coeffs) == 0:
            if bound >= 0:
                return []
            # 0 <= bound < 0: inconsistent by itself.  Encode as a tiny
            # negative self-loop on ZERO so the cycle detector reports it.
            return [_Edge(ZERO, ZERO, bound, tag)]
        if len(coeffs) == 1:
            ((var, coeff),) = coeffs.items()
            if coeff == 1:  # x <= bound
                return [_Edge(ZERO, var, bound, tag)]
            return [_Edge(var, ZERO, bound, tag)]  # -x <= bound
        (pos_var,) = [v for v, c in coeffs.items() if c == 1]
        (neg_var,) = [v for v, c in coeffs.items() if c == -1]
        # pos - neg <= bound   ==>   edge neg -> pos with weight bound.
        return [_Edge(neg_var, pos_var, bound, tag)]

    # -- checking ----------------------------------------------------------------

    def check(self) -> TheoryResult:
        """Check satisfiability of everything asserted so far."""
        nodes = list(self._vars)
        index_of = {name: i for i, name in enumerate(nodes)}
        n = len(nodes)
        # Virtual super-source: distance 0 to every node.  Implemented by
        # initialising every distance to 0, which is equivalent to one
        # relaxation round from the source.
        dist = [0] * n
        pred_edge: List[Optional[_Edge]] = [None] * n

        edges = self._edges
        updated_node: Optional[int] = None
        # With every distance initialised to 0 (implicit super-source round),
        # shortest simple paths need at most ``n`` further relaxation rounds;
        # an update in round ``n + 1`` therefore witnesses a negative cycle.
        for _ in range(n + 1):
            updated_node = None
            for edge in edges:
                u = index_of[edge.src]
                v = index_of[edge.dst]
                if dist[u] + edge.weight < dist[v]:
                    dist[v] = dist[u] + edge.weight
                    pred_edge[v] = edge
                    updated_node = v
            if updated_node is None:
                break

        if updated_node is not None:
            cycle = self._extract_cycle(updated_node, nodes, index_of, pred_edge)
            return TheoryResult(satisfiable=False, conflict=sorted(set(cycle)))

        # Satisfiable: shift so that ZERO maps to exactly 0.
        shift = dist[index_of[ZERO]]
        model = {
            name: dist[i] - shift for i, name in enumerate(nodes) if name != ZERO
        }
        return TheoryResult(satisfiable=True, model=model)

    def _extract_cycle(
        self,
        start: int,
        nodes: List[str],
        index_of: Dict[str, int],
        pred_edge: List[Optional[_Edge]],
    ) -> List[int]:
        """Walk predecessor edges from a node relaxed in round |V| to find a cycle."""
        # Move onto the cycle: after n steps we are guaranteed to be on it.
        node = start
        for _ in range(len(nodes)):
            edge = pred_edge[node]
            assert edge is not None
            node = index_of[edge.src]
        # Collect the cycle.
        cycle_tags: List[int] = []
        cursor = node
        while True:
            edge = pred_edge[cursor]
            assert edge is not None
            cycle_tags.append(edge.tag)
            cursor = index_of[edge.src]
            if cursor == node:
                break
        return cycle_tags

    # -- convenience -------------------------------------------------------------

    @staticmethod
    def is_applicable(constraints: Sequence[LinearLe]) -> bool:
        """True if every constraint is in the difference fragment."""
        return all(c.is_difference for c in constraints)

    def __len__(self) -> int:
        return len(self._constraints)


# ---------------------------------------------------------------------------
# Incremental difference logic for the online DPLL(T) engine
# ---------------------------------------------------------------------------


def _edges_of(constraint: LinearLe, tag: int) -> Optional[List[_Edge]]:
    """Edges of a difference constraint, or ``None`` for an infeasible constant.

    Mirrors :meth:`DifferenceLogicSolver._constraint_edges` but reports the
    ``0 <= negative`` case as ``None`` (immediate conflict) instead of a
    synthetic self-loop, which the incremental relaxation has no use for.
    """
    if not constraint.is_difference:
        raise SolverError(
            f"not a difference constraint: {constraint} "
            "(use the incremental LIA solver for general constraints)"
        )
    coeffs = dict(constraint.expr.coeffs)
    bound = constraint.bound
    if len(coeffs) == 0:
        if bound >= 0:
            return []
        return None
    if len(coeffs) == 1:
        ((var, coeff),) = coeffs.items()
        if coeff == 1:
            return [_Edge(ZERO, var, bound, tag)]
        return [_Edge(var, ZERO, bound, tag)]
    (pos_var,) = [v for v, c in coeffs.items() if c == 1]
    (neg_var,) = [v for v, c in coeffs.items() if c == -1]
    return [_Edge(neg_var, pos_var, bound, tag)]


def edge_groups(
    lit: int, constraints: Sequence[LinearLe]
) -> List[Optional[List[_Edge]]]:
    """Precomputed per-constraint edge groups for :meth:`assert_lit`.

    The graph edges of a constraint depend only on the constraint and the
    tagging literal, and the DPLL(T) core always asserts the same
    constraint tuple for a given literal — so callers on the hot path
    memoise this per ``(atom, phase)`` and hand the result to
    :meth:`IncrementalDifferenceLogic.assert_lit` via its ``edges``
    parameter.  Reusing the same :class:`_Edge` objects across assertions
    is safe: the undo stack removes edges by LIFO identity, and a literal
    is never on the trail twice.
    """
    return [_edges_of(constraint, lit) for constraint in constraints]


def atom_edge(constraint: LinearLe) -> Optional[Tuple[str, str, int]]:
    """The single ``(src, dst, weight)`` edge of a difference constraint.

    Returns ``None`` when the constraint does not reduce to exactly one
    graph edge (constant constraints and non-difference shapes) — such
    atoms are not eligible for bound propagation.
    """
    if not constraint.is_difference:
        return None
    edges = _edges_of(constraint, 0)
    if edges is None or len(edges) != 1:
        return None
    edge = edges[0]
    return (edge.src, edge.dst, edge.weight)


@dataclass(slots=True)
class _IdlFrame:
    """Undo record of one ``assert_lit`` call."""

    lit: int
    constraints: Tuple[LinearLe, ...]
    edges_before: int
    #: Potentials changed by this frame's relaxations: node -> value before.
    #: Allocated lazily — most assertions never violate an edge.
    old_pot: Optional[Dict[str, int]] = None


class IncrementalDifferenceLogic:
    """Trail-synchronised IDL: ``assert_lit`` / ``retract_to`` / ``explain``.

    The solver maintains a *feasible potential function* ``pot`` (a
    satisfying assignment): every edge ``u -> v`` of weight ``w`` satisfies
    ``pot(u) + w >= pot(v)``.  Asserting a constraint adds its edge(s) and,
    when an edge is violated, repairs the potentials with an incremental
    Bellman-Ford relaxation seeded at the edge's target (Cotton–Maler
    style).  If the relaxation propagates back to the *source* of the new
    edge, a negative cycle — necessarily through the new edge — exists; the
    predecessor chain of the relaxation names its edges, so the conflict
    explanation is exactly the constraint literals on one negative cycle
    (minimal, unlike the batch solver's full re-run).

    Every assertion pushes an undo frame recording the potentials it
    changed; ``retract_to(n)`` pops frames until only the first ``n``
    assertions remain, restoring the exact previous state.  This is what
    lets the online engine keep the theory warm across SAT backjumps
    instead of rebuilding the solver per candidate model.

    With ``propagate=True`` (the default) and difference atoms registered
    via :meth:`register_atom`, every edge insertion additionally runs a
    Cotton–Maler-style entailment pass: one forward and one backward
    Dijkstra over the *reduced* edge weights (non-negative, because the
    potential function is feasible) give the shortest paths through the new
    edge, and any registered, unasserted atom whose bound those paths prove
    is queued for :meth:`take_propagations`.
    """

    def __init__(self, propagate: bool = True) -> None:
        self._pot: Dict[str, int] = {ZERO: 0}
        self._out: Dict[str, List[_Edge]] = {ZERO: []}
        self._in: Dict[str, List[_Edge]] = {ZERO: []}
        self._edges: List[_Edge] = []
        self._frames: List[_IdlFrame] = []
        # Bound propagation state.
        self._propagate_enabled = propagate
        #: var -> (pos_edge, neg_edge); each phase is a (src, dst, weight)
        #: triple meaning "the phase holds iff dist(src -> dst) <= weight".
        self._atoms: Dict[
            int, Tuple[Optional[Tuple[str, str, int]], Optional[Tuple[str, str, int]]]
        ] = {}
        #: (src, dst) -> [(lit, bound), ...]: the propagation pass iterates
        #: reached node pairs when that is cheaper than scanning all atoms.
        self._atom_index: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        self._atom_phases = 0
        self._max_bound = 0  # max phase bound: caps the propagation search
        self._asserted_vars: set = set()
        #: Entailed-but-unreported literals with the edge-count basis their
        #: explanation is restricted to.
        self._pending: List[Tuple[int, int]] = []
        self._pending_lits: set = set()
        #: Reported literals -> explanation basis (pruned on retraction).
        self._prop_basis: Dict[int, int] = {}

    # -- trail ------------------------------------------------------------------

    @property
    def num_asserted(self) -> int:
        """Number of live assertions (the theory trail height)."""
        return len(self._frames)

    @property
    def assertions(self) -> List[Tuple[int, Tuple[LinearLe, ...]]]:
        """The live ``(lit, constraints)`` trail, oldest first."""
        return [(frame.lit, frame.constraints) for frame in self._frames]

    def assert_lit(
        self,
        lit: int,
        constraints: Sequence[LinearLe],
        edges: Optional[Sequence[Optional[List[_Edge]]]] = None,
    ) -> Optional[List[int]]:
        """Assert ``constraints`` under literal ``lit``.

        Returns ``None`` when the state stays consistent, else a minimal
        conflict: the literals labelling one negative cycle (always
        including ``lit``).  On conflict the frame remains on the trail —
        the caller is expected to retract past it while backjumping.

        ``edges`` optionally supplies the per-constraint edge groups
        precomputed by :func:`edge_groups` (hot callers memoise them per
        atom phase); when absent they are derived here.
        """
        frame = _IdlFrame(lit, tuple(constraints), len(self._edges))
        self._frames.append(frame)
        self._asserted_vars.add(abs(lit))
        if edges is None:
            edges = [_edges_of(c, lit) for c in frame.constraints]
        for group in edges:
            if group is None:
                return [lit]
            for edge in group:
                conflict = self._add_edge(edge, frame)
                if conflict is not None:
                    # Abort the half-finished repair: the potential function
                    # must stay feasible for the pre-frame edge set, because
                    # conflict analysis materialises lazy explanations (over
                    # exactly such edge prefixes) *before* the backjump
                    # retracts this frame.
                    if frame.old_pot:
                        for node, value in frame.old_pot.items():
                            self._pot[node] = value
                        frame.old_pot = None
                    return conflict
        if self._propagate_enabled and self._atoms and frame.old_pot:
            # Only edges that *tightened* the potential function can create
            # new entailments worth chasing: a non-relaxing edge is already
            # satisfied by ``pot``, so every registered atom it could prove
            # was provable before (in particular, edges asserted for
            # literals this solver itself propagated never re-trigger the
            # pass — their constraints are entailed, hence never violated).
            for edge in self._edges[frame.edges_before:]:
                self._propagate_through(edge)
        return None

    def retract_to(self, count: int) -> None:
        """Retract assertions until only the first ``count`` remain."""
        while len(self._frames) > count:
            frame = self._frames.pop()
            removed = self._edges[frame.edges_before:]
            for edge in reversed(removed):
                popped = self._out[edge.src].pop()
                if popped is not edge:  # pragma: no cover - structural invariant
                    raise SolverError("IDL undo stack out of sync")
                popped_in = self._in[edge.dst].pop()
                if popped_in is not edge:  # pragma: no cover - invariant
                    raise SolverError("IDL undo stack out of sync")
            del self._edges[frame.edges_before:]
            if frame.old_pot:
                for node, value in frame.old_pot.items():
                    self._pot[node] = value
            self._asserted_vars.discard(abs(frame.lit))
        if self._pending or self._prop_basis:
            # Propagations emitted above the surviving edge prefix are gone.
            live = len(self._edges)
            if self._pending:
                self._pending = [
                    (lit, basis) for lit, basis in self._pending if basis <= live
                ]
                self._pending_lits = {lit for lit, _ in self._pending}
            if self._prop_basis:
                self._prop_basis = {
                    lit: basis
                    for lit, basis in self._prop_basis.items()
                    if basis <= live
                }

    # -- bound propagation ------------------------------------------------------

    def register_atom(
        self,
        var: int,
        positive: Optional[LinearLe],
        negative: Optional[LinearLe],
    ) -> bool:
        """Register SAT variable ``var`` as a difference atom for propagation.

        ``positive`` / ``negative`` are the :class:`LinearLe` constraints of
        the two phases.  Returns ``True`` when at least one phase reduces to
        a single graph edge and the atom was registered.
        """
        pos = atom_edge(positive) if positive is not None else None
        neg = atom_edge(negative) if negative is not None else None
        if pos is None and neg is None:
            return False
        self._atoms[var] = (pos, neg)
        for lit, info in ((var, pos), (-var, neg)):
            if info is not None:
                src, dst, bound = info
                self._atom_index.setdefault((src, dst), []).append((lit, bound))
                if bound > self._max_bound:
                    self._max_bound = bound
                self._atom_phases += 1
        return True

    @property
    def num_registered_atoms(self) -> int:
        return len(self._atoms)

    def set_propagation(self, enabled: bool) -> None:
        """Pause or resume the entailment pass at a check boundary.

        Pausing drops pending (undrained) emissions; explanations of
        literals already reported stay materialisable.  Resuming restarts
        detection from the next edge insertion — propagation is
        best-effort, so entailments that arose while paused are simply not
        reported.
        """
        self._propagate_enabled = enabled
        if not enabled:
            self._pending = []
            self._pending_lits.clear()

    def take_propagations(self) -> List[int]:
        """Drain the entailed literals discovered since the last call.

        Every returned literal is remembered (with its explanation basis)
        so :meth:`explain_entailed` can lazily produce its reason clause.
        """
        if not self._pending:
            return []
        out: List[int] = []
        for lit, basis in self._pending:
            self._prop_basis[lit] = basis
            out.append(lit)
        self._pending = []
        self._pending_lits.clear()
        return out

    def explain_entailed(self, lit: int) -> List[int]:
        """Asserted literals whose constraints entail propagated ``lit``.

        The shortest entailing path is searched over the edges that were
        present when the propagation was emitted, so the explanation only
        names literals streamed *before* ``lit`` — the trail-order contract
        lazy reasons must satisfy.
        """
        basis = self._prop_basis.get(lit)
        if basis is None:
            raise SolverError(f"literal {lit} was not propagated by IDL")
        phases = self._atoms.get(abs(lit))
        info = None if phases is None else (phases[0] if lit > 0 else phases[1])
        if info is None:  # pragma: no cover - basis implies registration
            raise SolverError(f"literal {lit} is not a registered IDL atom")
        src, dst, bound = info
        tags = self._entailing_path(self._edges[:basis], src, dst, bound)
        return sorted(set(tags))

    def _entailing_path(
        self, edges: List[_Edge], src: str, dst: str, bound: int
    ) -> List[int]:
        """Tags of a shortest ``src ~> dst`` path of weight ``<= bound``.

        Unlike :meth:`_path_within` (Bellman-Ford, used for trail-literal
        entailment over arbitrary edge subsets), this runs Dijkstra over
        the *reduced* weights of the current potential function — feasible
        for every live edge, hence for any prefix of them — which makes
        the hot lazy-explanation path near-linear.
        """
        if src == dst and bound >= 0:
            return []
        pot = self._pot
        by_src: Dict[str, List[_Edge]] = {}
        for edge in edges:
            by_src.setdefault(edge.src, []).append(edge)
        dist: Dict[str, int] = {src: 0}
        pred: Dict[str, _Edge] = {}
        heap: List[Tuple[int, str]] = [(0, src)]
        while heap:
            base, node = heapq.heappop(heap)
            if base > dist.get(node, base):
                continue
            if node == dst:
                break
            for edge in by_src.get(node, ()):
                reduced = pot[edge.src] + edge.weight - pot[edge.dst]
                candidate = base + reduced
                if candidate < dist.get(edge.dst, candidate + 1):
                    dist[edge.dst] = candidate
                    pred[edge.dst] = edge
                    heapq.heappush(heap, (candidate, edge.dst))
        if dst not in dist:
            raise SolverError("IDL explain: literal is not entailed")
        # Undoing the potential shift recovers the real path weight.
        if dist[dst] - pot[src] + pot[dst] > bound:
            raise SolverError("IDL explain: literal is not entailed")
        tags: List[int] = []
        node = dst
        while node != src:
            edge = pred[node]
            tags.append(edge.tag)
            node = edge.src
        return tags

    def _propagate_through(self, new_edge: _Edge) -> None:
        """Queue registered atoms entailed by paths through ``new_edge``.

        Only paths using the new edge can *newly* satisfy a bound, so one
        forward Dijkstra from its target and one backward Dijkstra from its
        source (over the non-negative reduced weights induced by the
        feasible potentials) cover every fresh entailment.
        """
        pot = self._pot
        u, v, w = new_edge.src, new_edge.dst, new_edge.weight
        # Entailment needs rd_bwd(s) + rd_fwd(t) <= c + pot(s) - pot(t) - rw
        # for some registered phase (s, t, c); reduced distances are
        # non-negative, so an upper bound on the right-hand side caps both
        # searches (and a negative cap means no atom can possibly be
        # proven).  max(c) + pot-range is a cheap sound overestimate.
        reduced_weight = pot[u] + w - pot[v]
        values = pot.values()
        cap = self._max_bound + max(values) - min(values) - reduced_weight
        if cap < 0:
            return
        fwd = self._dijkstra(new_edge.dst, backward=False, cap=cap)
        bwd = self._dijkstra(new_edge.src, backward=True, cap=cap)
        basis = len(self._edges)
        # The reached regions are usually tiny (relaxations are local), so
        # iterating reached (src, dst) pairs against the atom index often
        # beats scanning every registered atom; pick whichever is smaller.
        candidates: List[Tuple[int, str, str, int]] = []
        if len(fwd) * len(bwd) <= self._atom_phases:
            index = self._atom_index
            for src in bwd:
                for dst in fwd:
                    for lit, bound in index.get((src, dst), ()):
                        candidates.append((lit, src, dst, bound))
        else:
            for var, (pos, neg) in self._atoms.items():
                for lit, info in ((var, pos), (-var, neg)):
                    if info is not None:
                        candidates.append((lit, info[0], info[1], info[2]))
        for lit, src, dst, bound in candidates:
            if abs(lit) in self._asserted_vars:
                continue
            if lit in self._pending_lits or lit in self._prop_basis:
                continue
            reduced_to_u = bwd.get(src)
            reduced_from_v = fwd.get(dst)
            if reduced_to_u is None or reduced_from_v is None:
                continue
            # Undo the potential shift: real = reduced - pot(a) + pot(b).
            distance = (
                (reduced_to_u - pot[src] + pot[u])
                + w
                + (reduced_from_v - pot[v] + pot[dst])
            )
            if distance <= bound:
                self._pending.append((lit, basis))
                self._pending_lits.add(lit)

    def _dijkstra(
        self, start: str, backward: bool, cap: Optional[int] = None
    ) -> Dict[str, int]:
        """Reduced-weight shortest distances from (or to) ``start``.

        The reduced weight of an edge ``a -> b`` is ``pot(a) + w - pot(b)``,
        non-negative whenever the potential function is feasible — which it
        is after every successful assertion.  ``cap`` prunes the search:
        nodes farther than it cannot contribute to any registered atom.
        """
        pot = self._pot
        adjacency = self._in if backward else self._out
        dist: Dict[str, int] = {start: 0}
        heap: List[Tuple[int, str]] = [(0, start)]
        while heap:
            base, node = heapq.heappop(heap)
            if base > dist.get(node, base):
                continue
            for edge in adjacency.get(node, ()):
                reduced = pot[edge.src] + edge.weight - pot[edge.dst]
                step = edge.src if backward else edge.dst
                candidate = base + reduced
                if cap is not None and candidate > cap:
                    continue
                if candidate < dist.get(step, candidate + 1):
                    dist[step] = candidate
                    heapq.heappush(heap, (candidate, step))
        return dist

    # -- queries ----------------------------------------------------------------

    def model(self) -> Dict[str, int]:
        """A satisfying assignment (potentials shifted so ZERO maps to 0)."""
        shift = self._pot[ZERO]
        return {
            name: value - shift
            for name, value in self._pot.items()
            if name != ZERO
        }

    def explain(self, lit: int) -> List[int]:
        """Literals of *other* assertions entailing ``lit``'s constraints.

        For every edge ``u -> v`` (weight ``w``) of ``lit``'s constraints, a
        shortest path ``u ~> v`` of weight ``<= w`` over the remaining
        edges is found; the union of the path labels is the explanation.
        Raises :class:`SolverError` when ``lit`` is not entailed.
        """
        for frame in self._frames:
            if frame.lit == lit:
                constraints = frame.constraints
                break
        else:
            raise SolverError(f"literal {lit} is not on the IDL trail")
        tags: List[int] = []
        edges = [edge for edge in self._edges if edge.tag != lit]
        for constraint in constraints:
            for edge in _edges_of(constraint, lit) or []:
                tags.extend(self._path_within(edges, edge.src, edge.dst, edge.weight))
        return sorted({tag for tag in tags if tag != lit})

    # -- internals --------------------------------------------------------------

    def _set_pot(self, node: str, value: int, frame: _IdlFrame) -> None:
        old_pot = frame.old_pot
        if old_pot is None:
            old_pot = frame.old_pot = {}
        if node not in old_pot:
            old_pot[node] = self._pot[node]
        self._pot[node] = value

    def _add_edge(self, edge: _Edge, frame: _IdlFrame) -> Optional[List[int]]:
        pot = self._pot
        for node in (edge.src, edge.dst):
            if node not in pot:
                pot[node] = 0
                self._out[node] = []
                self._in[node] = []
        self._out[edge.src].append(edge)
        self._in[edge.dst].append(edge)
        self._edges.append(edge)
        if pot[edge.src] + edge.weight >= pot[edge.dst]:
            return None
        return self._relax(edge, frame)

    def _relax(self, new_edge: _Edge, frame: _IdlFrame) -> Optional[List[int]]:
        """Repair the potential function after inserting a violated edge."""
        pot = self._pot
        pred: Dict[str, _Edge] = {new_edge.dst: new_edge}
        self._set_pot(new_edge.dst, pot[new_edge.src] + new_edge.weight, frame)
        queue = deque([new_edge.dst])
        budget = (len(pot) + 2) * (len(self._edges) + 2)
        while queue:
            node = queue.popleft()
            base = pot[node]
            for edge in self._out.get(node, ()):
                budget -= 1
                if budget < 0:  # pragma: no cover - convergence backstop
                    raise SolverError("IDL relaxation failed to converge")
                if base + edge.weight < pot[edge.dst]:
                    if edge.dst == new_edge.src:
                        # Relaxation reached the new edge's source: a
                        # negative cycle through new_edge exists.
                        return self._cycle_conflict(new_edge, edge, pred)
                    self._set_pot(edge.dst, base + edge.weight, frame)
                    pred[edge.dst] = edge
                    queue.append(edge.dst)
        return None

    def _cycle_conflict(
        self, new_edge: _Edge, closing_edge: _Edge, pred: Dict[str, _Edge]
    ) -> List[int]:
        tags = {new_edge.tag, closing_edge.tag}
        node = closing_edge.src
        for _ in range(len(self._pot) + 1):
            if node == new_edge.dst:
                return sorted(tags)
            edge = pred[node]
            tags.add(edge.tag)
            node = edge.src
        raise SolverError(  # pragma: no cover - pred chains are acyclic
            "IDL conflict cycle extraction failed"
        )

    def _path_within(
        self, edges: List[_Edge], src: str, dst: str, bound: int
    ) -> List[int]:
        """Tags of a shortest path ``src ~> dst`` of weight ``<= bound``."""
        if src == dst and bound >= 0:
            return []
        dist: Dict[str, int] = {src: 0}
        pred: Dict[str, _Edge] = {}
        by_src: Dict[str, List[_Edge]] = {}
        nodes = {src, dst}
        for edge in edges:
            by_src.setdefault(edge.src, []).append(edge)
            nodes.add(edge.src)
            nodes.add(edge.dst)
        # Bellman-Ford: |V|-1 relaxation rounds suffice (no negative cycles
        # can exist among entailing edges — the state is consistent).
        for _ in range(len(nodes)):
            changed = False
            for node, base in list(dist.items()):
                for edge in by_src.get(node, ()):
                    if base + edge.weight < dist.get(edge.dst, base + edge.weight + 1):
                        dist[edge.dst] = base + edge.weight
                        pred[edge.dst] = edge
                        changed = True
            if not changed:
                break
        if dst not in dist or dist[dst] > bound:
            raise SolverError("IDL explain: literal is not entailed")
        tags: List[int] = []
        node = dst
        while node != src:
            edge = pred[node]
            tags.append(edge.tag)
            node = edge.src
        return tags

    def __len__(self) -> int:
        return len(self._frames)
