"""Equality with uninterpreted functions (EUF) via congruence closure.

The solver receives asserted equalities and disequalities between terms
built from variables and uninterpreted function applications, and decides
whether the conjunction is satisfiable.  The algorithm is the classic
congruence closure:

1. collect every subterm as a node,
2. merge the equivalence classes of each asserted equality (union-find),
3. repeatedly merge classes of applications whose function symbols match and
   whose arguments are pairwise congruent, until a fixpoint,
4. the conjunction is unsatisfiable iff some asserted disequality relates two
   terms that ended up in the same class.

Explanations are *coarse*: the conflict returned is the set of all asserted
equalities plus the violated disequality, optionally minimised by a greedy
deletion loop (each equality is dropped and the closure re-run; if the
conflict persists the equality was irrelevant).  This is more than adequate
for the solver's role in this library — the MCAPI encoding itself is purely
arithmetic and EUF is exposed for users modelling opaque values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.terms import Term
from repro.smt.theory.idl import TheoryResult
from repro.utils.errors import SolverError
from repro.utils.unionfind import UnionFind

__all__ = ["CongruenceClosure"]


@dataclass(frozen=True)
class _Assertion:
    lhs: Term
    rhs: Term
    equal: bool
    tag: int


class CongruenceClosure:
    """Decides conjunctions of equalities/disequalities over uninterpreted terms."""

    def __init__(self, minimize_conflicts: bool = True) -> None:
        self._assertions: List[_Assertion] = []
        self._minimize = minimize_conflicts

    # -- assertion entry --------------------------------------------------------

    def assert_equal(self, lhs: Term, rhs: Term) -> int:
        """Assert ``lhs = rhs``; returns the assertion's index."""
        return self._assert(lhs, rhs, True)

    def assert_distinct(self, lhs: Term, rhs: Term) -> int:
        """Assert ``lhs != rhs``; returns the assertion's index."""
        return self._assert(lhs, rhs, False)

    def _assert(self, lhs: Term, rhs: Term, equal: bool) -> int:
        if lhs.sort != rhs.sort:
            raise SolverError(
                f"cannot relate terms of different sorts: {lhs.sort} vs {rhs.sort}"
            )
        tag = len(self._assertions)
        self._assertions.append(_Assertion(lhs, rhs, equal, tag))
        return tag

    def __len__(self) -> int:
        return len(self._assertions)

    # -- closure ----------------------------------------------------------------

    def check(self) -> TheoryResult:
        """Check satisfiability of all assertions made so far."""
        violated = self._violated_disequality(self._assertions)
        if violated is None:
            model = self._build_model(self._assertions)
            return TheoryResult(satisfiable=True, model=model)

        conflict_tags = [a.tag for a in self._assertions if a.equal]
        conflict_tags.append(violated.tag)
        if self._minimize:
            conflict_tags = self._minimize_conflict(violated, conflict_tags)
        return TheoryResult(satisfiable=False, conflict=sorted(set(conflict_tags)))

    def _minimize_conflict(
        self, violated: _Assertion, tags: List[int]
    ) -> List[int]:
        """Greedy deletion-based minimisation of the conflict set."""
        kept = [t for t in tags if t != violated.tag]
        changed = True
        while changed:
            changed = False
            for tag in list(kept):
                trial_tags = [t for t in kept if t != tag]
                trial = [self._assertions[t] for t in trial_tags] + [violated]
                if self._violated_disequality(trial) is not None:
                    kept = trial_tags
                    changed = True
                    break
        return kept + [violated.tag]

    def _violated_disequality(
        self, assertions: Sequence[_Assertion]
    ) -> Optional[_Assertion]:
        """Run congruence closure; return a violated disequality if any."""
        uf = UnionFind()
        subterms: List[Term] = []
        seen = set()

        def register(term: Term) -> None:
            if term in seen:
                return
            seen.add(term)
            subterms.append(term)
            uf.add(term)
            for child in term.args:
                register(child)

        for assertion in assertions:
            register(assertion.lhs)
            register(assertion.rhs)

        for assertion in assertions:
            if assertion.equal:
                uf.union(assertion.lhs, assertion.rhs)

        # Congruence propagation to fixpoint (naive quadratic loop; the term
        # sets involved here are small).
        apps = [t for t in subterms if t.kind == "app" and t.args]
        changed = True
        while changed:
            changed = False
            for i in range(len(apps)):
                for j in range(i + 1, len(apps)):
                    a, b = apps[i], apps[j]
                    if a.name != b.name or len(a.args) != len(b.args):
                        continue
                    if uf.same(a, b):
                        continue
                    if all(uf.same(x, y) for x, y in zip(a.args, b.args)):
                        uf.union(a, b)
                        changed = True

        for assertion in assertions:
            if not assertion.equal and uf.same(assertion.lhs, assertion.rhs):
                return assertion
        return None

    def _build_model(self, assertions: Sequence[_Assertion]) -> Dict[str, int]:
        """Assign each equivalence class a distinct small integer."""
        uf = UnionFind()
        terms: List[Term] = []
        seen = set()

        def register(term: Term) -> None:
            if term in seen:
                return
            seen.add(term)
            terms.append(term)
            uf.add(term)
            for child in term.args:
                register(child)

        for assertion in assertions:
            register(assertion.lhs)
            register(assertion.rhs)
        for assertion in assertions:
            if assertion.equal:
                uf.union(assertion.lhs, assertion.rhs)

        class_ids: Dict[Term, int] = {}
        model: Dict[str, int] = {}
        next_id = 0
        for term in terms:
            rep = uf.find(term)
            if rep not in class_ids:
                class_ids[rep] = next_id
                next_id += 1
            if term.kind == "var" or (term.kind == "app" and not term.args):
                model[term.name] = class_ids[rep]  # type: ignore[index]
        return model
