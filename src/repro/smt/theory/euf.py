"""Equality with uninterpreted functions (EUF) via congruence closure.

The solver receives asserted equalities and disequalities between terms
built from variables and uninterpreted function applications, and decides
whether the conjunction is satisfiable.  The algorithm is the classic
congruence closure:

1. collect every subterm as a node,
2. merge the equivalence classes of each asserted equality (union-find),
3. repeatedly merge classes of applications whose function symbols match and
   whose arguments are pairwise congruent, until a fixpoint,
4. the conjunction is unsatisfiable iff some asserted disequality relates two
   terms that ended up in the same class.

Explanations are *coarse*: the conflict returned is the set of all asserted
equalities plus the violated disequality, optionally minimised by a greedy
deletion loop (each equality is dropped and the closure re-run; if the
conflict persists the equality was irrelevant).  This is more than adequate
for the solver's role in this library — the MCAPI encoding itself is purely
arithmetic and EUF is exposed for users modelling opaque values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.terms import Term
from repro.smt.theory.idl import TheoryResult
from repro.utils.errors import SolverError
from repro.utils.unionfind import UnionFind

__all__ = ["CongruenceClosure", "IncrementalCongruenceClosure"]


@dataclass(frozen=True)
class _Assertion:
    lhs: Term
    rhs: Term
    equal: bool
    tag: int


class CongruenceClosure:
    """Decides conjunctions of equalities/disequalities over uninterpreted terms."""

    def __init__(self, minimize_conflicts: bool = True) -> None:
        self._assertions: List[_Assertion] = []
        self._minimize = minimize_conflicts

    # -- assertion entry --------------------------------------------------------

    def assert_equal(self, lhs: Term, rhs: Term) -> int:
        """Assert ``lhs = rhs``; returns the assertion's index."""
        return self._assert(lhs, rhs, True)

    def assert_distinct(self, lhs: Term, rhs: Term) -> int:
        """Assert ``lhs != rhs``; returns the assertion's index."""
        return self._assert(lhs, rhs, False)

    def _assert(self, lhs: Term, rhs: Term, equal: bool) -> int:
        if lhs.sort != rhs.sort:
            raise SolverError(
                f"cannot relate terms of different sorts: {lhs.sort} vs {rhs.sort}"
            )
        tag = len(self._assertions)
        self._assertions.append(_Assertion(lhs, rhs, equal, tag))
        return tag

    def __len__(self) -> int:
        return len(self._assertions)

    # -- closure ----------------------------------------------------------------

    def check(self) -> TheoryResult:
        """Check satisfiability of all assertions made so far."""
        violated = self._violated_disequality(self._assertions)
        if violated is None:
            model = self._build_model(self._assertions)
            return TheoryResult(satisfiable=True, model=model)

        conflict_tags = [a.tag for a in self._assertions if a.equal]
        conflict_tags.append(violated.tag)
        if self._minimize:
            conflict_tags = self._minimize_conflict(violated, conflict_tags)
        return TheoryResult(satisfiable=False, conflict=sorted(set(conflict_tags)))

    def _minimize_conflict(
        self, violated: _Assertion, tags: List[int]
    ) -> List[int]:
        """Greedy deletion-based minimisation of the conflict set."""
        kept = [t for t in tags if t != violated.tag]
        changed = True
        while changed:
            changed = False
            for tag in list(kept):
                trial_tags = [t for t in kept if t != tag]
                trial = [self._assertions[t] for t in trial_tags] + [violated]
                if self._violated_disequality(trial) is not None:
                    kept = trial_tags
                    changed = True
                    break
        return kept + [violated.tag]

    def _violated_disequality(
        self, assertions: Sequence[_Assertion]
    ) -> Optional[_Assertion]:
        """Run congruence closure; return a violated disequality if any."""
        uf = UnionFind()
        subterms: List[Term] = []
        seen = set()

        def register(term: Term) -> None:
            if term in seen:
                return
            seen.add(term)
            subterms.append(term)
            uf.add(term)
            for child in term.args:
                register(child)

        for assertion in assertions:
            register(assertion.lhs)
            register(assertion.rhs)

        for assertion in assertions:
            if assertion.equal:
                uf.union(assertion.lhs, assertion.rhs)

        # Congruence propagation to fixpoint (naive quadratic loop; the term
        # sets involved here are small).
        apps = [t for t in subterms if t.kind == "app" and t.args]
        changed = True
        while changed:
            changed = False
            for i in range(len(apps)):
                for j in range(i + 1, len(apps)):
                    a, b = apps[i], apps[j]
                    if a.name != b.name or len(a.args) != len(b.args):
                        continue
                    if uf.same(a, b):
                        continue
                    if all(uf.same(x, y) for x, y in zip(a.args, b.args)):
                        uf.union(a, b)
                        changed = True

        for assertion in assertions:
            if not assertion.equal and uf.same(assertion.lhs, assertion.rhs):
                return assertion
        return None

    def _build_model(self, assertions: Sequence[_Assertion]) -> Dict[str, int]:
        """Assign each equivalence class a distinct small integer."""
        uf = UnionFind()
        terms: List[Term] = []
        seen = set()

        def register(term: Term) -> None:
            if term in seen:
                return
            seen.add(term)
            terms.append(term)
            uf.add(term)
            for child in term.args:
                register(child)

        for assertion in assertions:
            register(assertion.lhs)
            register(assertion.rhs)
        for assertion in assertions:
            if assertion.equal:
                uf.union(assertion.lhs, assertion.rhs)

        class_ids: Dict[Term, int] = {}
        model: Dict[str, int] = {}
        next_id = 0
        for term in terms:
            rep = uf.find(term)
            if rep not in class_ids:
                class_ids[rep] = next_id
                next_id += 1
            if term.kind == "var" or (term.kind == "app" and not term.args):
                model[term.name] = class_ids[rep]  # type: ignore[index]
        return model


# ---------------------------------------------------------------------------
# Incremental congruence closure for the online DPLL(T) engine
# ---------------------------------------------------------------------------


def _greedy_minimize(entails, count: int) -> Optional[List[int]]:
    """Single-pass greedy deletion over candidate indices ``0..count-1``.

    Returns an irredundant subset still satisfying the (monotone) ``entails``
    predicate, or ``None`` when even the full set does not.  Linear in the
    number of candidates; irredundant because after one pass every survivor
    is necessary with respect to the final set.
    """
    kept = list(range(count))
    if not entails(kept):
        return None
    i = 0
    while i < len(kept):
        trial = kept[:i] + kept[i + 1:]
        if entails(trial):
            kept = trial
        else:
            i += 1
    return kept


@dataclass
class _CcFrame:
    """Undo record of one ``assert_lit`` call."""

    lit: int
    lhs: Term
    rhs: Term
    equal: bool
    diseqs_before: int
    #: Union operations performed by this frame: (kept_root, merged_root,
    #: rank_bumped) tuples, undone in reverse order.
    undo: List[Tuple[Term, Term, bool]] = field(default_factory=list)
    #: True when this frame ran the closure pass for newly registered
    #: applications — retracting it must re-arm that pass.
    reclosed: bool = False


class IncrementalCongruenceClosure:
    """Trail-synchronised EUF: ``assert_lit`` / ``retract_to`` / ``explain``.

    The union-find is kept *without* path compression so that every merge
    is a single reversible pointer write; each ``assert_lit`` pushes an
    undo frame recording exactly the unions (direct and congruence-derived)
    it caused, and ``retract_to(n)`` pops frames to restore any earlier
    trail state — the online engine retracts in lockstep with SAT
    backjumps instead of rebuilding the closure per candidate model.

    Congruence is maintained with a signature pass after every merge:
    applications whose (symbol, argument-class) signatures collide are
    unioned until a fixpoint.

    Atoms registered via :meth:`register_atom` power *theory propagation*:
    :meth:`entailed` reports unasserted atom literals the current closure
    already decides (positively via class equality, negatively via an
    asserted disequality between the classes), and :meth:`explain` produces
    a minimal explanation for such a literal by greedy deletion over the
    asserted equalities — localized, unlike the batch solver's
    whole-assertion-set fallback, and restrictable to a trail prefix so
    lazily materialised reasons stay sound for conflict analysis.
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        self._apps: List[Term] = []
        self._terms: List[Term] = []
        self._diseqs: List[Tuple[Term, Term, int]] = []
        self._frames: List[_CcFrame] = []
        self._atoms: Dict[int, Tuple[Term, Term]] = {}
        # Applications registered since the last congruence pass: arms the
        # up-front fixpoint in assert_lit (otherwise the trail state is
        # already congruence-closed and the pass is skipped).
        self._apps_dirty = False
        # Any state change since the last entailed() scan: arms propagation.
        self._entailed_dirty = True
        self._entailed_cache: List[int] = []

    # -- registration -----------------------------------------------------------

    def register_atom(self, var: int, lhs: Term, rhs: Term) -> None:
        """Declare SAT variable ``var`` as the equality atom ``lhs = rhs``."""
        if lhs.sort != rhs.sort:
            raise SolverError(
                f"cannot relate terms of different sorts: {lhs.sort} vs {rhs.sort}"
            )
        self._register(lhs)
        self._register(rhs)
        self._atoms[var] = (lhs, rhs)
        self._entailed_dirty = True

    def _register(self, term: Term) -> None:
        if term in self._parent:
            return
        for child in term.args:
            self._register(child)
        self._parent[term] = term
        self._rank[term] = 0
        self._terms.append(term)
        if term.kind == "app" and term.args:
            self._apps.append(term)
            self._apps_dirty = True
            self._entailed_dirty = True

    # -- trail ------------------------------------------------------------------

    @property
    def num_asserted(self) -> int:
        return len(self._frames)

    @property
    def assertions(self) -> List[Tuple[int, Term, Term, bool]]:
        return [(f.lit, f.lhs, f.rhs, f.equal) for f in self._frames]

    def assert_lit(
        self,
        lit: int,
        lhs: Term,
        rhs: Term,
        equal: Optional[bool] = None,
    ) -> Optional[List[int]]:
        """Assert ``lhs = rhs`` (or ``!=`` for ``equal=False``) under ``lit``.

        Returns ``None`` when consistent, else a localized conflict: the
        literals of a minimal subset of asserted equalities plus the
        violated disequality.  On conflict the frame stays on the trail for
        the caller to retract while backjumping.
        """
        if equal is None:
            equal = lit > 0
        if lhs.sort != rhs.sort:
            raise SolverError(
                f"cannot relate terms of different sorts: {lhs.sort} vs {rhs.sort}"
            )
        frame = _CcFrame(lit, lhs, rhs, equal, len(self._diseqs))
        self._frames.append(frame)
        self._register(lhs)
        self._register(rhs)
        self._entailed_dirty = True
        # Newly registered applications may be congruent to existing classes:
        # close before judging the new literal.  The trail state is otherwise
        # already closed (every frame closes before returning, and retraction
        # restores a closed state), so the pass only runs when armed.
        if self._apps_dirty:
            self._congruence_fixpoint(frame.undo)
            self._apps_dirty = False
            frame.reclosed = True
        if equal:
            self._merge(lhs, rhs, frame.undo)
            violated = self._first_violated()
            if violated is not None:
                a, b, diseq_lit = violated
                explanation = self._explain_equality(a, b, len(self._frames))
                return sorted(set(explanation) | {diseq_lit})
            return None
        self._diseqs.append((lhs, rhs, lit))
        if self._find(lhs) is self._find(rhs):
            explanation = self._explain_equality(lhs, rhs, len(self._frames))
            return sorted(set(explanation) | {lit})
        return None

    def retract_to(self, count: int) -> None:
        while len(self._frames) > count:
            frame = self._frames.pop()
            del self._diseqs[frame.diseqs_before:]
            for kept, merged, bumped in reversed(frame.undo):
                self._parent[merged] = merged
                if bumped:
                    self._rank[kept] -= 1
            if frame.reclosed:
                # The closure pass for newly registered applications was
                # undone with this frame: the next assertion must redo it.
                self._apps_dirty = True
            self._entailed_dirty = True

    # -- queries ----------------------------------------------------------------

    def entailed(self) -> List[int]:
        """Literals of unasserted registered atoms the closure decides.

        The scan is O(atoms x diseqs); it only reruns when the closure
        state changed since the last call (assert, retract or registration)
        — between changes the cached answer is returned, so streaming
        non-EUF literals costs nothing here.
        """
        if not self._entailed_dirty:
            return list(self._entailed_cache)
        out: List[int] = []
        asserted = {abs(frame.lit) for frame in self._frames}
        diseq_roots = [
            (self._find(a), self._find(b)) for a, b, _ in self._diseqs
        ]
        for var, (lhs, rhs) in self._atoms.items():
            if var in asserted:
                continue
            ra, rb = self._find(lhs), self._find(rhs)
            if ra is rb:
                out.append(var)
                continue
            for fa, fb in diseq_roots:
                if (fa is ra and fb is rb) or (fa is rb and fb is ra):
                    out.append(-var)
                    break
        self._entailed_cache = out
        self._entailed_dirty = False
        return list(out)

    def explain(self, lit: int, limit: Optional[int] = None) -> List[int]:
        """Asserted literals (within the first ``limit`` frames) implying ``lit``."""
        var = abs(lit)
        atom = self._atoms.get(var)
        if atom is None:
            raise SolverError(f"literal {lit} is not a registered EUF atom")
        lhs, rhs = atom
        frames = self._frames if limit is None else self._frames[:limit]
        if lit > 0:
            return sorted(self._explain_equality_over(frames, lhs, rhs))
        # Negative: some prefix disequality a != b with a ~ lhs and b ~ rhs
        # (or the swapped orientation) under the prefix equalities.
        equalities = [(f.lit, f.lhs, f.rhs) for f in frames if f.equal]
        for frame in frames:
            if frame.equal:
                continue
            for a, b in ((frame.lhs, frame.rhs), (frame.rhs, frame.lhs)):
                glue = self._joint_entailment(equalities, (a, lhs), (b, rhs))
                if glue is not None:
                    return sorted(set(glue) | {frame.lit})
        raise SolverError(f"EUF explain: literal {lit} is not entailed")

    def model(self) -> Dict[str, int]:
        """Assign each equivalence class a distinct small integer."""
        class_ids: Dict[Term, int] = {}
        model: Dict[str, int] = {}
        next_id = 0
        for term in self._terms:
            rep = self._find(term)
            if rep not in class_ids:
                class_ids[rep] = next_id
                next_id += 1
            if term.kind == "var" or (term.kind == "app" and not term.args):
                model[term.name] = class_ids[rep]  # type: ignore[index]
        return model

    # -- internals --------------------------------------------------------------

    def _find(self, term: Term) -> Term:
        node = self._parent[term]
        while True:
            parent = self._parent[node]
            if parent is node:
                return node
            node = parent

    def _union(self, a: Term, b: Term, undo: List[Tuple[Term, Term, bool]]) -> bool:
        ra, rb = self._find(a), self._find(b)
        if ra is rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        bumped = self._rank[ra] == self._rank[rb]
        self._parent[rb] = ra
        if bumped:
            self._rank[ra] += 1
        undo.append((ra, rb, bumped))
        return True

    def _merge(self, a: Term, b: Term, undo: List[Tuple[Term, Term, bool]]) -> None:
        if self._union(a, b, undo):
            self._congruence_fixpoint(undo)

    def _congruence_fixpoint(self, undo: List[Tuple[Term, Term, bool]]) -> None:
        changed = True
        while changed:
            changed = False
            signatures: Dict[Tuple, Term] = {}
            for app in self._apps:
                key = (app.name, tuple(self._find(arg) for arg in app.args))
                other = signatures.get(key)
                if other is None:
                    signatures[key] = app
                elif self._union(other, app, undo):
                    changed = True

    def _first_violated(self) -> Optional[Tuple[Term, Term, int]]:
        for a, b, lit in self._diseqs:
            if self._find(a) is self._find(b):
                return (a, b, lit)
        return None

    def _explain_equality(self, a: Term, b: Term, limit: int) -> List[int]:
        return self._explain_equality_over(self._frames[:limit], a, b)

    @staticmethod
    def _explain_equality_over(
        frames: Sequence[_CcFrame], a: Term, b: Term
    ) -> List[int]:
        """Minimal subset of prefix equality literals making ``a ~ b``.

        Greedy single-pass deletion over a scratch batch closure: linear in
        the number of candidate equalities, and the surviving set is
        irredundant (entailment is monotone).
        """
        equalities = [(f.lit, f.lhs, f.rhs) for f in frames if f.equal]

        def entails(indices: List[int]) -> bool:
            scratch = CongruenceClosure(minimize_conflicts=False)
            for i in indices:
                scratch.assert_equal(equalities[i][1], equalities[i][2])
            scratch.assert_distinct(a, b)
            return not scratch.check().satisfiable

        kept = _greedy_minimize(entails, len(equalities))
        if kept is None:
            raise SolverError("EUF explain: equality is not entailed")
        return [equalities[i][0] for i in kept]

    def _joint_entailment(
        self,
        equalities: List[Tuple[int, Term, Term]],
        first: Tuple[Term, Term],
        second: Tuple[Term, Term],
    ) -> Optional[List[int]]:
        """Minimal equality lits making both pairs equal, or None."""

        def entails(indices: List[int], pair: Tuple[Term, Term]) -> bool:
            scratch = CongruenceClosure(minimize_conflicts=False)
            for i in indices:
                scratch.assert_equal(equalities[i][1], equalities[i][2])
            scratch.assert_distinct(pair[0], pair[1])
            return not scratch.check().satisfiable

        def entails_both(indices: List[int]) -> bool:
            return entails(indices, first) and entails(indices, second)

        kept = _greedy_minimize(entails_both, len(equalities))
        if kept is None:
            return None
        return [equalities[i][0] for i in kept]

    def __len__(self) -> int:
        return len(self._frames)
