"""Theory solvers used by the DPLL(T) loop.

Each theory solver answers one question: *is a conjunction of theory
constraints satisfiable?*  If yes it produces a model (an assignment to the
theory variables); if no it produces an **explanation** — a subset of the
asserted constraints that is already inconsistent — which the DPLL(T) loop
turns into a blocking clause for the SAT core.

Available solvers:

* :class:`repro.smt.theory.idl.DifferenceLogicSolver` — integer difference
  logic (``x - y <= c``) via incremental negative-cycle detection.  This is
  the fragment the MCAPI trace encoding lives in.
* :class:`repro.smt.theory.lia.LinearIntSolver` — general linear integer
  arithmetic via exact (Fraction) simplex plus branch-and-bound.
* :class:`repro.smt.theory.euf.CongruenceClosure` — equality with
  uninterpreted functions.
"""

from repro.smt.theory.idl import DifferenceLogicSolver
from repro.smt.theory.lia import LinearIntSolver
from repro.smt.theory.euf import CongruenceClosure

__all__ = ["DifferenceLogicSolver", "LinearIntSolver", "CongruenceClosure"]
