"""Linear integer arithmetic (QF_LIA) theory solver.

The solver decides satisfiability of a conjunction of constraints

    sum_i c_i * x_i  <=  k        (c_i, k integers, x_i integer variables)

in two stages:

1. **Rational feasibility** by Fourier–Motzkin elimination with exact
   :class:`fractions.Fraction` arithmetic.  Every derived constraint carries
   the set of original constraint indices it was combined from, so an
   inconsistency (``0 <= negative``) immediately yields an explanation.
2. **Integer feasibility** by branch-and-bound: a rational model is rounded
   variable by variable; whenever a variable cannot take an integer value
   within its implied bounds, the solver branches on ``x <= floor`` versus
   ``x >= ceil`` and recurses.

The MCAPI trace encoding only produces difference constraints (handled by the
faster :class:`repro.smt.theory.idl.DifferenceLogicSolver`), but the general
solver keeps the SMT layer complete for arbitrary QF_LIA inputs, e.g. user
properties that sum message payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.smt.linear import LinearLe
from repro.smt.theory.idl import TheoryResult
from repro.utils.errors import SolverError

__all__ = ["LinearIntSolver"]

#: Safety cap on branch-and-bound nodes; beyond this the solver gives up
#: (reported as a SolverError rather than a wrong answer).
_MAX_BB_NODES = 20_000


@dataclass(frozen=True)
class _Row:
    """A rational constraint ``sum coeffs[x] * x <= bound`` with provenance."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    bound: Fraction
    tags: FrozenSet[int]

    def coeff_of(self, var: str) -> Fraction:
        for name, coeff in self.coeffs:
            if name == var:
                return coeff
        return Fraction(0)

    def drop(self, var: str) -> Tuple[Tuple[str, Fraction], ...]:
        return tuple((n, c) for n, c in self.coeffs if n != var)


def _make_row(constraint: LinearLe, tag: int) -> _Row:
    coeffs = tuple(
        (name, Fraction(coeff)) for name, coeff in constraint.expr.coeffs if coeff != 0
    )
    return _Row(coeffs, Fraction(constraint.bound), frozenset([tag]))


class LinearIntSolver:
    """Decides conjunctions of linear integer constraints."""

    def __init__(self) -> None:
        self._constraints: List[LinearLe] = []

    def assert_constraint(self, constraint: LinearLe) -> int:
        index = len(self._constraints)
        self._constraints.append(constraint)
        return index

    def assert_all(self, constraints: Sequence[LinearLe]) -> None:
        for constraint in constraints:
            self.assert_constraint(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------ checking

    def check(self) -> TheoryResult:
        """Check integer satisfiability of everything asserted so far."""
        rows = [_make_row(c, i) for i, c in enumerate(self._constraints)]
        self._bb_nodes = 0
        return self._check_rows(rows)

    def _check_rows(self, rows: List[_Row]) -> TheoryResult:
        self._bb_nodes += 1
        if self._bb_nodes > _MAX_BB_NODES:
            raise SolverError("LIA branch-and-bound node limit exceeded")

        feasible, model_or_conflict = self._rational_check(rows)
        if not feasible:
            return TheoryResult(satisfiable=False, conflict=sorted(model_or_conflict))

        model: Dict[str, Fraction] = model_or_conflict
        fractional = [v for v, value in model.items() if value.denominator != 1]
        if not fractional:
            return TheoryResult(
                satisfiable=True, model={v: int(value) for v, value in model.items()}
            )

        # Branch on the first fractional variable.
        var = sorted(fractional)[0]
        value = model[var]
        floor_value = math.floor(value)

        low_branch = rows + [
            _Row(((var, Fraction(1)),), Fraction(floor_value), frozenset())
        ]
        result = self._check_rows(low_branch)
        if result.satisfiable:
            return result

        high_branch = rows + [
            _Row(((var, Fraction(-1)),), Fraction(-(floor_value + 1)), frozenset())
        ]
        result = self._check_rows(high_branch)
        if result.satisfiable:
            return result

        # Neither branch is integer-feasible.  The union of both explanations,
        # restricted to original constraint tags, is a valid explanation (the
        # branching cuts themselves carry no tags).
        return TheoryResult(
            satisfiable=False,
            conflict=sorted({t for t in range(len(self._constraints))}),
        )

    # ------------------------------------------------------------------ rational LP

    def _rational_check(self, rows: List[_Row]):
        """Fourier–Motzkin feasibility over the rationals.

        Returns ``(True, model)`` or ``(False, conflict_tags)``.
        """
        variables = sorted({name for row in rows for name, _ in row.coeffs})
        # systems[k] is the constraint system *before* eliminating variables[k].
        systems: List[List[_Row]] = []
        current = list(rows)

        for var in variables:
            systems.append(current)
            current = self._eliminate(current, var)
            conflict = self._find_conflict(current)
            if conflict is not None:
                return False, conflict

        conflict = self._find_conflict(current)
        if conflict is not None:
            return False, conflict

        # Back-substitute to build a model.
        model: Dict[str, Fraction] = {}
        for var, system in zip(reversed(variables), reversed(systems)):
            lower: Optional[Fraction] = None
            upper: Optional[Fraction] = None
            for row in system:
                coeff = row.coeff_of(var)
                if coeff == 0:
                    continue
                rest = row.bound
                for name, c in row.coeffs:
                    if name != var:
                        rest -= c * model.get(name, Fraction(0))
                limit = rest / coeff
                if coeff > 0:
                    upper = limit if upper is None else min(upper, limit)
                else:
                    lower = limit if lower is None else max(lower, limit)
            model[var] = self._pick_value(lower, upper)
        return True, model

    @staticmethod
    def _pick_value(lower: Optional[Fraction], upper: Optional[Fraction]) -> Fraction:
        """Choose a value within [lower, upper], preferring integers."""
        if lower is None and upper is None:
            return Fraction(0)
        if lower is None:
            candidate = Fraction(math.floor(upper))
            return candidate if candidate <= upper else upper
        if upper is None:
            candidate = Fraction(math.ceil(lower))
            return candidate if candidate >= lower else lower
        # Both bounds present (lower <= upper is guaranteed by FM feasibility).
        candidate = Fraction(math.ceil(lower))
        if lower <= candidate <= upper:
            return candidate
        return lower

    @staticmethod
    def _find_conflict(rows: List[_Row]) -> Optional[FrozenSet[int]]:
        for row in rows:
            if not row.coeffs and row.bound < 0:
                return row.tags
        return None

    @staticmethod
    def _eliminate(rows: List[_Row], var: str) -> List[_Row]:
        """One Fourier–Motzkin elimination step for ``var``."""
        uppers: List[_Row] = []   # coeff > 0  ->  var <= ...
        lowers: List[_Row] = []   # coeff < 0  ->  var >= ...
        others: List[_Row] = []
        for row in rows:
            coeff = row.coeff_of(var)
            if coeff > 0:
                uppers.append(row)
            elif coeff < 0:
                lowers.append(row)
            else:
                others.append(row)

        new_rows = list(others)
        for up in uppers:
            cu = up.coeff_of(var)
            for lo in lowers:
                cl = -lo.coeff_of(var)
                # Combine: cl * up + cu * lo eliminates var.
                coeffs: Dict[str, Fraction] = {}
                for name, c in up.drop(var):
                    coeffs[name] = coeffs.get(name, Fraction(0)) + cl * c
                for name, c in lo.drop(var):
                    coeffs[name] = coeffs.get(name, Fraction(0)) + cu * c
                bound = cl * up.bound + cu * lo.bound
                new_rows.append(
                    _Row(
                        tuple(sorted((n, c) for n, c in coeffs.items() if c != 0)),
                        bound,
                        up.tags | lo.tags,
                    )
                )
        return new_rows
