"""Linear integer arithmetic (QF_LIA) theory solver.

The solver decides satisfiability of a conjunction of constraints

    sum_i c_i * x_i  <=  k        (c_i, k integers, x_i integer variables)

in two stages:

1. **Rational feasibility** by Fourier–Motzkin elimination with exact
   :class:`fractions.Fraction` arithmetic.  Every derived constraint carries
   the set of original constraint tags it was combined from, so an
   inconsistency (``0 <= negative``) immediately yields an explanation.
2. **Integer feasibility** by branch-and-bound: a rational model is rounded
   variable by variable; whenever a variable cannot take an integer value
   within its implied bounds, the solver branches on ``x <= floor`` versus
   ``x >= ceil`` and recurses.

Two front ends share that machinery: the batch :class:`LinearIntSolver`
(used by the offline lazy loop, one throwaway instance per candidate model)
and the trail-backed :class:`IncrementalLinearInt` (used by the online
DPLL(T) engine: ``assert_lit`` / ``retract_to`` / ``explain`` with a bounded
rational re-check per assertion and the full integer check deferred to the
final-check hook).

The MCAPI trace encoding only produces difference constraints (handled by
the faster :class:`repro.smt.theory.idl.DifferenceLogicSolver`), but the
general solver keeps the SMT layer complete for arbitrary QF_LIA inputs,
e.g. user properties that sum message payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.smt.linear import LinearLe
from repro.smt.theory.idl import TheoryResult
from repro.utils.errors import SolverError

__all__ = ["LinearIntSolver", "IncrementalLinearInt"]

#: Safety cap on branch-and-bound nodes; beyond this the solver gives up
#: (reported as a SolverError rather than a wrong answer).
_MAX_BB_NODES = 20_000


@dataclass(frozen=True)
class _Row:
    """A rational constraint ``sum coeffs[x] * x <= bound`` with provenance."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    bound: Fraction
    tags: FrozenSet[int]

    def coeff_of(self, var: str) -> Fraction:
        for name, coeff in self.coeffs:
            if name == var:
                return coeff
        return Fraction(0)

    def drop(self, var: str) -> Tuple[Tuple[str, Fraction], ...]:
        return tuple((n, c) for n, c in self.coeffs if n != var)


def _make_row(constraint: LinearLe, tag: int) -> _Row:
    coeffs = tuple(
        (name, Fraction(coeff)) for name, coeff in constraint.expr.coeffs if coeff != 0
    )
    return _Row(coeffs, Fraction(constraint.bound), frozenset([tag]))


# ---------------------------------------------------------------------------
# Shared rational / integer checking over tagged rows
# ---------------------------------------------------------------------------


def _pick_value(lower: Optional[Fraction], upper: Optional[Fraction]) -> Fraction:
    """Choose a value within [lower, upper], preferring integers."""
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        candidate = Fraction(math.floor(upper))
        return candidate if candidate <= upper else upper
    if upper is None:
        candidate = Fraction(math.ceil(lower))
        return candidate if candidate >= lower else lower
    # Both bounds present (lower <= upper is guaranteed by FM feasibility).
    candidate = Fraction(math.ceil(lower))
    if lower <= candidate <= upper:
        return candidate
    return lower


def _find_conflict(rows: List[_Row]) -> Optional[FrozenSet[int]]:
    for row in rows:
        if not row.coeffs and row.bound < 0:
            return row.tags
    return None


def _eliminate(rows: List[_Row], var: str) -> List[_Row]:
    """One Fourier–Motzkin elimination step for ``var``."""
    uppers: List[_Row] = []   # coeff > 0  ->  var <= ...
    lowers: List[_Row] = []   # coeff < 0  ->  var >= ...
    others: List[_Row] = []
    for row in rows:
        coeff = row.coeff_of(var)
        if coeff > 0:
            uppers.append(row)
        elif coeff < 0:
            lowers.append(row)
        else:
            others.append(row)

    new_rows = list(others)
    for up in uppers:
        cu = up.coeff_of(var)
        for lo in lowers:
            cl = -lo.coeff_of(var)
            # Combine: cl * up + cu * lo eliminates var.
            coeffs: Dict[str, Fraction] = {}
            for name, c in up.drop(var):
                coeffs[name] = coeffs.get(name, Fraction(0)) + cl * c
            for name, c in lo.drop(var):
                coeffs[name] = coeffs.get(name, Fraction(0)) + cu * c
            bound = cl * up.bound + cu * lo.bound
            new_rows.append(
                _Row(
                    tuple(sorted((n, c) for n, c in coeffs.items() if c != 0)),
                    bound,
                    up.tags | lo.tags,
                )
            )
    return new_rows


def _rational_check(rows: List[_Row]):
    """Fourier–Motzkin feasibility over the rationals.

    Returns ``(True, model)`` or ``(False, conflict_tags)``.
    """
    variables = sorted({name for row in rows for name, _ in row.coeffs})
    # systems[k] is the constraint system *before* eliminating variables[k].
    systems: List[List[_Row]] = []
    current = list(rows)

    for var in variables:
        systems.append(current)
        current = _eliminate(current, var)
        conflict = _find_conflict(current)
        if conflict is not None:
            return False, conflict

    conflict = _find_conflict(current)
    if conflict is not None:
        return False, conflict

    # Back-substitute to build a model.
    model: Dict[str, Fraction] = {}
    for var, system in zip(reversed(variables), reversed(systems)):
        lower: Optional[Fraction] = None
        upper: Optional[Fraction] = None
        for row in system:
            coeff = row.coeff_of(var)
            if coeff == 0:
                continue
            rest = row.bound
            for name, c in row.coeffs:
                if name != var:
                    rest -= c * model.get(name, Fraction(0))
            limit = rest / coeff
            if coeff > 0:
                upper = limit if upper is None else min(upper, limit)
            else:
                lower = limit if lower is None else max(lower, limit)
        model[var] = _pick_value(lower, upper)
    return True, model


class _RowChecker:
    """Branch-and-bound integer feasibility over tagged rows."""

    def __init__(self, fallback_tags: Iterable[int]) -> None:
        self._fallback = sorted(set(fallback_tags))
        self._nodes = 0

    def check(self, rows: List[_Row]) -> TheoryResult:
        self._nodes += 1
        if self._nodes > _MAX_BB_NODES:
            raise SolverError("LIA branch-and-bound node limit exceeded")

        feasible, model_or_conflict = _rational_check(rows)
        if not feasible:
            return TheoryResult(satisfiable=False, conflict=sorted(model_or_conflict))

        model: Dict[str, Fraction] = model_or_conflict
        fractional = [v for v, value in model.items() if value.denominator != 1]
        if not fractional:
            return TheoryResult(
                satisfiable=True, model={v: int(value) for v, value in model.items()}
            )

        # Branch on the first fractional variable.
        var = sorted(fractional)[0]
        value = model[var]
        floor_value = math.floor(value)

        low_branch = rows + [
            _Row(((var, Fraction(1)),), Fraction(floor_value), frozenset())
        ]
        result = self.check(low_branch)
        if result.satisfiable:
            return result

        high_branch = rows + [
            _Row(((var, Fraction(-1)),), Fraction(-(floor_value + 1)), frozenset())
        ]
        result = self.check(high_branch)
        if result.satisfiable:
            return result

        # Neither branch is integer-feasible.  The union of both explanations,
        # restricted to original constraint tags, is a valid explanation (the
        # branching cuts themselves carry no tags), but localising it is
        # subtle; fall back to the full tag set.
        return TheoryResult(satisfiable=False, conflict=list(self._fallback))


class LinearIntSolver:
    """Decides conjunctions of linear integer constraints (batch mode)."""

    def __init__(self) -> None:
        self._constraints: List[LinearLe] = []

    def assert_constraint(self, constraint: LinearLe) -> int:
        index = len(self._constraints)
        self._constraints.append(constraint)
        return index

    def assert_all(self, constraints: Sequence[LinearLe]) -> None:
        for constraint in constraints:
            self.assert_constraint(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    def check(self) -> TheoryResult:
        """Check integer satisfiability of everything asserted so far."""
        rows = [_make_row(c, i) for i, c in enumerate(self._constraints)]
        checker = _RowChecker(range(len(self._constraints)))
        return checker.check(rows)


# ---------------------------------------------------------------------------
# Incremental LIA for the online DPLL(T) engine
# ---------------------------------------------------------------------------


class IncrementalLinearInt:
    """Trail-backed LIA: ``assert_lit`` / ``retract_to`` / ``explain``.

    Rows are tagged with the asserting SAT literal, so rational conflicts
    explain themselves directly in trail vocabulary.  Each assertion runs a
    *bounded* incremental re-check: rational (Fourier–Motzkin) feasibility
    only, and only while the row count stays under ``recheck_rows_limit`` —
    catching most conflicts on small partial assignments without paying FM
    on every assertion of a large trail.  Full integer feasibility
    (branch-and-bound) runs once per complete assignment via
    :meth:`final_check`, exactly like an SMT final-check hook.
    """

    def __init__(self, recheck_rows_limit: int = 64) -> None:
        self._recheck_rows_limit = recheck_rows_limit
        self._rows: List[_Row] = []
        # (lit, constraints, rows_before) per assert_lit call.
        self._frames: List[Tuple[int, Tuple[LinearLe, ...], int]] = []

    # -- trail ------------------------------------------------------------------

    @property
    def num_asserted(self) -> int:
        return len(self._frames)

    @property
    def assertions(self) -> List[Tuple[int, Tuple[LinearLe, ...]]]:
        return [(lit, constraints) for lit, constraints, _ in self._frames]

    def assert_lit(
        self, lit: int, constraints: Sequence[LinearLe]
    ) -> Optional[List[int]]:
        """Assert ``constraints`` under ``lit``; returns conflict lits or None."""
        rows_before = len(self._rows)
        self._frames.append((lit, tuple(constraints), rows_before))
        for constraint in constraints:
            if not constraint.expr.coeffs and constraint.bound < 0:
                return [lit]
            self._rows.append(_make_row(constraint, lit))
        if rows_before < len(self._rows) and len(self._rows) <= self._recheck_rows_limit:
            feasible, conflict = _rational_check(self._rows)
            if not feasible:
                return sorted(set(conflict) | {lit})
        return None

    def retract_to(self, count: int) -> None:
        while len(self._frames) > count:
            _, _, rows_before = self._frames.pop()
            del self._rows[rows_before:]

    # -- queries ----------------------------------------------------------------

    def final_check(self) -> TheoryResult:
        """Full integer feasibility of the current trail (model on success)."""
        checker = _RowChecker(lit for lit, _, _ in self._frames)
        return checker.check(list(self._rows))

    def model(self) -> Dict[str, int]:
        result = self.final_check()
        if not result.satisfiable:
            raise SolverError("model() requires a satisfiable LIA trail")
        return result.model or {}

    def explain(self, lit: int) -> List[int]:
        """Literals of *other* assertions rationally entailing ``lit``.

        Checks that the remaining rows plus the negation of each of
        ``lit``'s constraints are rationally infeasible; the union of the
        FM conflict tags is the explanation.  Integer-only entailments are
        not captured (they would need a cutting-plane proof).
        """
        for frame_lit, constraints, _ in self._frames:
            if frame_lit == lit:
                break
        else:
            raise SolverError(f"literal {lit} is not on the LIA trail")
        others = [row for row in self._rows if lit not in row.tags]
        tags: set = set()
        for constraint in constraints:
            negated_row = _Row(
                tuple((n, Fraction(c)) for n, c in constraint.negated().expr.coeffs),
                Fraction(constraint.negated().bound),
                frozenset(),
            )
            feasible, conflict = _rational_check(others + [negated_row])
            if feasible:
                raise SolverError("LIA explain: literal is not (rationally) entailed")
            tags |= set(conflict)
        tags.discard(lit)
        return sorted(tags)

    def __len__(self) -> int:
        return len(self._frames)
