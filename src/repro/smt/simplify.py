"""Formula preprocessing passes.

The DPLL(T) loop requires its input to be *theory-clean*:

* no integer ``ite`` terms inside atoms (lifted to Boolean structure),
* no integer equalities (rewritten to conjunctions of ``<=``),
* no Boolean equalities (rewritten to ``iff``).

These passes are pure term-to-term rewrites and preserve equivalence, so
they can be applied regardless of the polarity of the rewritten subterm.
"""

from __future__ import annotations

from typing import Dict

from repro.smt.terms import (
    And,
    Eq,
    FALSE,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    Term,
)
from repro.utils.errors import SolverError

__all__ = ["preprocess", "eliminate_int_ite", "eliminate_int_equalities", "rewrite_bool_eq", "simplify_constants"]


def preprocess(term: Term) -> Term:
    """Run all preprocessing passes in the canonical order."""
    term = eliminate_int_ite(term)
    term = rewrite_bool_eq(term)
    term = eliminate_int_equalities(term)
    term = simplify_constants(term)
    return term


# ---------------------------------------------------------------------------
# Integer if-then-else lifting
# ---------------------------------------------------------------------------


def eliminate_int_ite(term: Term) -> Term:
    """Lift integer-sorted ``ite`` nodes out of atoms.

    An atom ``P[ite(c, t, e)]`` becomes ``(c and P[t]) or (not c and P[e])``.
    The rewrite is applied innermost-first until no integer ``ite`` remains.
    """
    if not term.sort.is_bool:
        raise SolverError("eliminate_int_ite expects a Boolean formula")
    return _lift_ite(term)


def _find_int_ite(term: Term) -> Term | None:
    for node in term.walk():
        if node.kind == "ite" and node.sort.is_int:
            return node
    return None


def _replace(term: Term, old: Term, new: Term) -> Term:
    if term == old:
        return new
    if not term.args:
        return term
    new_args = tuple(_replace(a, old, new) for a in term.args)
    if new_args == term.args:
        return term
    return Term(term.kind, term.sort, new_args, term.name, term.value)


def _lift_ite(term: Term) -> Term:
    if term.kind in ("and", "or", "not", "implies", "iff"):
        new_args = tuple(_lift_ite(a) for a in term.args)
        if new_args == term.args:
            return term
        return Term(term.kind, term.sort, new_args, term.name, term.value)
    if term.kind == "ite" and term.sort.is_bool:
        cond, then, other = (_lift_ite(a) for a in term.args)
        return Ite(cond, then, other)
    # Atom (or Boolean leaf): lift any integer ite found inside.
    ite_node = _find_int_ite(term)
    if ite_node is None:
        return term
    cond, then, other = ite_node.args
    then_branch = _replace(term, ite_node, then)
    else_branch = _replace(term, ite_node, other)
    return Or(
        And(_lift_ite(cond), _lift_ite(then_branch)),
        And(Not(_lift_ite(cond)), _lift_ite(else_branch)),
    )


# ---------------------------------------------------------------------------
# Equality elimination
# ---------------------------------------------------------------------------


def eliminate_int_equalities(term: Term) -> Term:
    """Rewrite every integer equality ``a = b`` into ``a <= b  and  b <= a``.

    After this pass no ``eq`` atom over Int remains, so the theory layer
    never sees a *negated* integer equality (which is not a conjunctive
    constraint).
    """
    if term.kind == "eq" and term.args[0].sort.is_int:
        a, b = (eliminate_int_equalities(x) for x in term.args)
        return And(Le(a, b), Le(b, a))
    if not term.args:
        return term
    new_args = tuple(eliminate_int_equalities(a) for a in term.args)
    if new_args == term.args:
        return term
    return Term(term.kind, term.sort, new_args, term.name, term.value)


def rewrite_bool_eq(term: Term) -> Term:
    """Rewrite equality between Boolean terms into ``iff``."""
    if term.kind == "eq" and term.args[0].sort.is_bool:
        a, b = (rewrite_bool_eq(x) for x in term.args)
        return Iff(a, b)
    if not term.args:
        return term
    new_args = tuple(rewrite_bool_eq(a) for a in term.args)
    if new_args == term.args:
        return term
    return Term(term.kind, term.sort, new_args, term.name, term.value)


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------


def simplify_constants(term: Term) -> Term:
    """Bottom-up constant folding using the smart constructors.

    The constructors in :mod:`repro.smt.terms` already fold constants, so a
    single bottom-up rebuild propagates ``true`` / ``false`` / numerals as far
    as they will go.
    """
    if not term.args:
        return term
    args = tuple(simplify_constants(a) for a in term.args)
    kind = term.kind
    if kind == "and":
        return And(args)
    if kind == "or":
        return Or(args)
    if kind == "not":
        return Not(args[0])
    if kind == "implies":
        return Implies(args[0], args[1])
    if kind == "iff":
        return Iff(args[0], args[1])
    if kind == "ite":
        return Ite(args[0], args[1], args[2])
    if kind == "eq":
        return Eq(args[0], args[1])
    if kind == "le":
        return Le(args[0], args[1])
    if kind == "lt":
        return Lt(args[0], args[1])
    if args == term.args:
        return term
    return Term(kind, term.sort, args, term.name, term.value)
