"""Sorts (types) for the SMT term language.

The encoding of MCAPI traces needs only two interpreted sorts — ``Bool`` and
``Int`` — plus uninterpreted sorts for the EUF theory used in tests and by
library users who want to model opaque message identities symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """A sort (type) in the SMT language.

    Two sorts are equal iff their names are equal; the two interpreted sorts
    are exposed as the module-level singletons :data:`BOOL` and :data:`INT`.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_bool(self) -> bool:
        return self.name == "Bool"

    @property
    def is_int(self) -> bool:
        return self.name == "Int"

    @property
    def is_uninterpreted(self) -> bool:
        return not (self.is_bool or self.is_int)


#: The Boolean sort.
BOOL = Sort("Bool")

#: The integer sort (mathematical integers, as in SMT-LIB ``Int``).
INT = Sort("Int")


def uninterpreted_sort(name: str) -> Sort:
    """Declare an uninterpreted sort.

    >>> s = uninterpreted_sort("Msg")
    >>> s.is_uninterpreted
    True
    """
    if name in ("Bool", "Int"):
        raise ValueError(f"{name!r} is a reserved interpreted sort name")
    return Sort(name)
