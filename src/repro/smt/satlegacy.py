"""The pre-arena CDCL SAT solver, kept as the differential reference.

This is the object-graph implementation the flat-memory core in
:mod:`repro.smt.sat` replaced: clauses are Python :class:`_Clause` objects
chased through dict-of-list watch tables.  It is retained verbatim (only
renamed) so the differential harness can assert that the arena core is
*search-order identical* — same verdicts, same models, same conflict /
decision / propagation counts — on random CNFs, incremental assumption
streams and the 300-formula mixed-theory corpus.

Do not use this solver outside tests; it is the slow path by design.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.smt.sat import (
    DEFAULT_CLAUSE_DECAY,
    DEFAULT_REDUCE_BASE,
    DEFAULT_REDUCE_GROWTH,
    DEFAULT_THEORY_BUMP,
    SatResult,
    SatStats,
    TheoryListener,
    luby,
)
from repro.utils.errors import SolverError

__all__ = ["LegacySatSolver"]


class _TheoryReason:
    """Placeholder reason for a theory-propagated literal.

    Materialised into a real clause by :meth:`SatSolver._reason_for` only
    when conflict analysis needs it — that is what makes theory
    explanations lazy.
    """

    __slots__ = ("lit",)

    def __init__(self, lit: int) -> None:
        self.lit = lit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TheoryReason({self.lit})"


def _dedupe(lits: Iterable[int]) -> List[int]:
    seen = set()
    out: List[int] = []
    for lit in lits:
        if lit not in seen:
            seen.add(lit)
            out.append(lit)
    return out


class _Clause:
    """A clause with its first two literal slots acting as watches.

    ``pinned`` marks learned clauses :meth:`SatSolver.reduce_db` must never
    delete (theory lemmas kept under ``pin_theory_lemmas``); ``deleted``
    marks victims of a reduction while they are being unlinked from the
    watch lists; ``lbd`` is the literal-block distance at learn time (the
    number of distinct decision levels in the clause — "glue" clauses with
    a small LBD are kept through reductions, Glucose-style).
    """

    __slots__ = ("lits", "learned", "activity", "pinned", "deleted", "lbd")

    def __init__(
        self, lits: List[int], learned: bool = False, pinned: bool = False
    ) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.pinned = pinned
        self.deleted = False
        self.lbd = len(lits)

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clause({self.lits})"


class LegacySatSolver:
    """CDCL SAT solver with assumptions.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SatResult.SAT
        assert solver.value(b) is True
    """

    _UNASSIGNED = 0

    def __init__(
        self,
        restart_base: int = 100,
        decay: float = 0.95,
        clause_decay: float = DEFAULT_CLAUSE_DECAY,
        reduce_db: bool = True,
        reduce_base: int = DEFAULT_REDUCE_BASE,
        reduce_growth: float = DEFAULT_REDUCE_GROWTH,
        theory_bump: float = DEFAULT_THEORY_BUMP,
        pin_theory_lemmas: bool = False,
    ) -> None:
        if reduce_base < 1:
            raise SolverError(f"reduce_base must be >= 1, got {reduce_base}")
        if reduce_growth < 1.0:
            raise SolverError(f"reduce_growth must be >= 1, got {reduce_growth}")
        self._num_vars = 0
        self._clauses: List[_Clause] = []       # problem clauses
        self._learned: List[_Clause] = []       # learned clauses (reducible)
        self._watches: Dict[int, List[_Clause]] = {}
        # Assignment state; index 0 unused.
        self._assign: List[int] = [0]          # 0 unassigned, 1 true, -1 false
        self._level: List[int] = [0]
        # Reasons are clauses, or _TheoryReason placeholders that
        # _reason_for materialises on demand.
        self._reason: List[Optional[object]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        # Decision heuristic.
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._var_inc = 1.0
        self._decay = decay
        self._heap: List[Tuple[float, int]] = []
        # Learned-clause database reduction.
        self._cla_inc = 1.0
        self._clause_decay = clause_decay
        self._reduce_enabled = reduce_db
        self._reduce_base = reduce_base
        self._reduce_limit = reduce_base
        self._reduce_growth = reduce_growth
        self._reduce_conflict_floor = max(1, reduce_base // 6)
        # Theory-aware branching / theory lemma pinning.
        self._theory_bump = theory_bump
        self._pin_theory_lemmas = pin_theory_lemmas
        self._conflict_from_theory = False
        # Restarts.
        self._restart_base = restart_base
        # Bookkeeping.
        self._ok = True
        self.stats = SatStats()
        self._conflict_limit: Optional[int] = None
        # Online theory integration.
        self._theory: Optional[TheoryListener] = None
        self._theory_head = 0  # trail literals already streamed to the theory

    def set_theory(self, listener: Optional[TheoryListener]) -> None:
        """Attach (or detach) the online theory listener.

        Must be done before solving; literals already on the trail are
        streamed at the next ``solve`` call.
        """
        self._theory = listener
        self._theory_head = 0

    # ------------------------------------------------------------------ setup

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assign.append(self._UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        var = self._num_vars
        self._watches.setdefault(var, [])
        self._watches.setdefault(-var, [])
        heapq.heappush(self._heap, (0.0, var))
        return var

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self._num_vars < count:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses) + len(self._learned)

    @property
    def num_learned(self) -> int:
        """Live learned clauses (the population :meth:`reduce_db` bounds)."""
        return len(self._learned)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became trivially unsat.

        Clauses may be added at any time; clauses added between ``solve``
        calls are handled incrementally (the solver backtracks to level 0).
        """
        if not self._ok:
            return False
        self._backtrack(0)
        unique: List[int] = []
        seen = set()
        for lit in lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            var = abs(lit)
            self.ensure_vars(var)
            if lit in seen:
                continue
            if -lit in seen:
                return True  # tautology
            seen.add(lit)
            unique.append(lit)

        # Remove literals already false at level 0; detect satisfied clauses.
        filtered: List[int] = []
        for lit in unique:
            val = self._lit_value(lit)
            if val is True and self._level[abs(lit)] == 0:
                return True
            if val is False and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)

        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True

        clause = _Clause(filtered)
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    # ------------------------------------------------------------------ values

    def _lit_value(self, lit: int) -> Optional[bool]:
        val = self._assign[abs(lit)]
        if val == self._UNASSIGNED:
            return None
        return (val > 0) == (lit > 0)

    def value(self, var: int) -> Optional[bool]:
        """The value of a variable in the last model (None if unassigned)."""
        if var <= 0 or var > self._num_vars:
            raise SolverError(f"unknown variable {var}")
        val = self._assign[var]
        return None if val == self._UNASSIGNED else val > 0

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful ``solve``."""
        return {v: self._assign[v] > 0 for v in range(1, self._num_vars + 1)
                if self._assign[v] != self._UNASSIGNED}

    # ------------------------------------------------------------------ solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        theory_conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> SatResult:
        """Determine satisfiability under the given assumption literals.

        Returns :data:`SatResult.UNKNOWN` only when ``conflict_limit``
        (total conflicts), ``theory_conflict_limit`` (theory conflicts
        only — purely Boolean search stays unbudgeted, mirroring the
        offline lazy loop's iteration bound) or ``deadline`` (a
        ``time.monotonic`` instant, polled every few hundred search steps
        so the clock read stays off the propagation hot path) is hit.
        """
        if not self._ok:
            return SatResult.UNSAT
        self._conflict_limit = conflict_limit
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult.UNSAT

        conflicts_total = 0
        theory_conflicts_base = self.stats.theory_conflicts
        restart_count = 0
        restart_budget = self._restart_base * luby(1)
        # Poll on the first iteration (an already-lapsed deadline must win
        # even on trivial instances), then every 256 search steps.
        deadline_poll = 255

        while True:
            if deadline is not None:
                deadline_poll += 1
                if deadline_poll >= 256:
                    deadline_poll = 0
                    if time.monotonic() >= deadline:
                        self._backtrack(0)
                        return SatResult.UNKNOWN
            conflict = self._propagate()
            if conflict is None:
                conflict = self._theory_sync()
            if conflict is None:
                # No conflict: apply assumptions first, then decide.
                if self._decision_level() < len(assumptions):
                    lit = assumptions[self._decision_level()]
                    val = self._lit_value(lit)
                    if val is True:
                        # Already satisfied: open an empty decision level so
                        # the assumption indexing stays aligned.
                        self._new_decision_level()
                        continue
                    if val is False:
                        return SatResult.UNSAT
                    self._new_decision_level()
                    self._enqueue(lit, None)
                    continue

                lit = self._pick_branch_literal()
                if lit is not None:
                    self.stats.decisions += 1
                    self._new_decision_level()
                    self._enqueue(lit, None)
                    continue
                conflict = self._theory_final()
                if conflict is None:
                    return SatResult.SAT

            # Conflict handling (Boolean and theory conflicts alike).
            self.stats.conflicts += 1
            conflicts_total += 1
            from_theory = self._conflict_from_theory
            self._conflict_from_theory = False
            conflict_level = 0
            for lit in conflict.lits:
                level = self._level[abs(lit)]
                if level > conflict_level:
                    conflict_level = level
            if not conflict.lits or conflict_level == 0:
                self._ok = False
                return SatResult.UNSAT
            if conflict_level < self._decision_level():
                # Theory conflicts may surface only after the offending
                # literals' level is already left behind (e.g. a final-check
                # conflict over early assignments): re-anchor analysis at the
                # deepest level actually mentioned by the clause.
                self._backtrack(conflict_level)
            learned, backtrack_level, lbd = self._analyze(conflict)
            self._backtrack(backtrack_level)
            self._learn(learned, lbd, theory_lemma=from_theory)
            self._decay_activities()
            if (
                self._reduce_enabled
                and len(self._learned) >= self._reduce_limit
                and conflicts_total >= self._reduce_conflict_floor
            ):
                # The conflict floor keeps warm incremental checks (a few
                # conflicts against a hot clause set) from shedding exactly
                # the lemmas that make them cheap; only a search that is
                # actually struggling pays a reduction.
                self.reduce_db()
                self._reduce_limit = max(
                    int(self._reduce_limit * self._reduce_growth),
                    self._reduce_limit + 1,
                )
            if (
                self._conflict_limit is not None
                and conflicts_total >= self._conflict_limit
            ):
                self._backtrack(0)
                return SatResult.UNKNOWN
            if (
                theory_conflict_limit is not None
                and self.stats.theory_conflicts - theory_conflicts_base
                >= theory_conflict_limit
            ):
                self._backtrack(0)
                return SatResult.UNKNOWN
            if conflicts_total >= restart_budget:
                restart_count += 1
                self.stats.restarts += 1
                restart_budget = conflicts_total + self._restart_base * luby(
                    restart_count + 1
                )
                self._backtrack(0)
                if self._theory is not None:
                    self._theory.on_restart()

    # ------------------------------------------------------------------ theory

    def _theory_conflict_clause(self, conflict: Sequence[int]) -> _Clause:
        """Turn a theory explanation (true literals) into an all-false clause."""
        return _Clause(_dedupe(-lit for lit in conflict))

    def _theory_sync(self) -> Optional[_Clause]:
        """Stream new trail literals to the theory and absorb its feedback.

        Alternates between feeding the unstreamed trail suffix, enqueuing
        theory propagations, and Boolean propagation until a fixpoint (or a
        conflict).  Called whenever unit propagation reaches a fixpoint.
        """
        theory = self._theory
        if theory is None:
            return None
        while True:
            while self._theory_head < len(self._trail):
                lit = self._trail[self._theory_head]
                self._theory_head += 1
                conflict = theory.on_assert(lit)
                if conflict is not None:
                    return self._count_theory_conflict(
                        self._theory_conflict_clause(conflict)
                    )
            enqueued = False
            for lit in theory.propagations():
                value = self._lit_value(lit)
                if value is True:
                    continue
                if value is False:
                    # The theory implies a literal the Boolean search already
                    # negated: explanation -> lit is a conflict clause.
                    explanation = [e for e in theory.explain(lit) if e != lit]
                    clause = _Clause(_dedupe([lit] + [-e for e in explanation]))
                    return self._count_theory_conflict(clause)
                self.stats.theory_propagations += 1
                self._bump_var_theory(abs(lit))
                self._enqueue(lit, _TheoryReason(lit))
                enqueued = True
            if not enqueued:
                return None
            # A conflict here comes from ordinary clause propagation (merely
            # triggered by a theory-implied literal): it is a Boolean
            # conflict and must not be counted against the theory budget.
            conflict = self._propagate()
            if conflict is not None:
                return conflict

    def _theory_final(self) -> Optional[_Clause]:
        """Give the theory its completeness check on the full assignment."""
        if self._theory is None:
            return None
        conflict = self._theory_final_check()
        if conflict is None:
            return None
        return self._count_theory_conflict(self._theory_conflict_clause(conflict))

    def _theory_final_check(self) -> Optional[Sequence[int]]:
        assert self._theory is not None
        return self._theory.on_final_check()

    def _count_theory_conflict(self, clause: _Clause) -> _Clause:
        self.stats.theory_conflicts += 1
        self._conflict_from_theory = True
        if len(self._trail) < self._num_vars:
            self.stats.theory_partial_conflicts += 1
        # Theory-aware branching: the atoms a theory explanation names are
        # exactly the "almost conflicting" ones — bias decisions toward them.
        for lit in clause.lits:
            self._bump_var_theory(abs(lit))
        return clause

    def _reason_for(self, var: int):
        """The reason clause of ``var``, materialising lazy theory reasons."""
        reason = self._reason[var]
        if type(reason) is _TheoryReason:
            assert self._theory is not None
            lit = reason.lit
            explanation = [e for e in self._theory.explain(lit) if e != lit]
            clause = _Clause(_dedupe([lit] + [-e for e in explanation]))
            self._reason[var] = clause
            return clause
        return reason

    # ------------------------------------------------------------------ internals

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        self.stats.max_decision_level = max(
            self.stats.max_decision_level, self._decision_level()
        )

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self._watches[false_lit]
            new_watch_list: List[_Clause] = []
            conflict: Optional[_Clause] = None
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Normalise so that the false literal is in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) is True:
                    new_watch_list.append(clause)
                    continue
                # Look for a replacement watch.
                replacement = None
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) is not False:
                        replacement = k
                        break
                if replacement is not None:
                    lits[1], lits[replacement] = lits[replacement], lits[1]
                    self._watches[lits[1]].append(clause)
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(clause)
                if self._lit_value(first) is False:
                    # Conflict: keep the remaining clauses watched and stop.
                    while i < len(watch_list):
                        new_watch_list.append(watch_list[i])
                        i += 1
                    conflict = clause
                else:
                    self._enqueue(first, clause)
            self._watches[false_lit] = new_watch_list
            if conflict is not None:
                self._queue_head = len(self._trail)
                return conflict
        return None

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first), the level to
        backtrack to, and the clause's literal-block distance (computed
        here, while every literal is still assigned its conflict level).
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if lit is None else 1
            for p in reason.lits[start:] if lit is not None and reason.lits[0] == lit else reason.lits:
                var = abs(p)
                if p == lit:
                    continue
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(p)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reason_for(var)
        learned[0] = -lit

        # Compute the backtrack level (second highest level in the clause).
        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backtrack_level = self._level[abs(learned[1])]
        lbd = len({self._level[abs(lit)] for lit in learned})
        return learned, backtrack_level, lbd

    def _learn(
        self, learned: List[int], lbd: Optional[int] = None,
        theory_lemma: bool = False,
    ) -> None:
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        clause = _Clause(
            list(learned),
            learned=True,
            pinned=theory_lemma and self._pin_theory_lemmas,
        )
        if lbd is not None:
            clause.lbd = lbd
        clause.activity = self._cla_inc
        self._attach(clause)
        self._learned.append(clause)
        if len(self._learned) > self.stats.max_live_learned:
            self.stats.max_live_learned = len(self._learned)
        self._enqueue(learned[0], clause)

    def reduce_db(self) -> int:
        """Drop the coldest half of the deletable learned clauses.

        A learned clause is *not* deletable when it is binary (cheap to keep,
        expensive to relearn), a glue clause (LBD <= 3: it connects few
        decision levels and re-deriving it is what drives the conflict-count
        blow-up naive reduction suffers), pinned (a theory lemma under
        ``pin_theory_lemmas``), or reason-locked (currently the reason of a
        trail literal — deleting it would corrupt conflict analysis).
        Victims are unlinked from the watch lists in one sweep.  Returns the
        number of clauses deleted.
        """
        locked = set()
        for lit in self._trail:
            reason = self._reason[abs(lit)]
            if type(reason) is _Clause:
                locked.add(id(reason))
        deletable = [
            clause
            for clause in self._learned
            if len(clause.lits) > 2
            and clause.lbd > 3
            and not clause.pinned
            and id(clause) not in locked
        ]
        victims = sorted(deletable, key=lambda c: c.activity)
        victims = victims[: len(victims) // 2]
        if not victims:
            return 0
        for clause in victims:
            clause.deleted = True
        for lit, watchers in self._watches.items():
            if any(clause.deleted for clause in watchers):
                self._watches[lit] = [c for c in watchers if not c.deleted]
        self._learned = [c for c in self._learned if not c.deleted]
        self.stats.reduce_db_rounds += 1
        self.stats.clauses_deleted += len(victims)
        return len(victims)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = self._UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)
        if self._theory is not None and self._theory_head > len(self._trail):
            self._theory_head = len(self._trail)
            self._theory.on_backjump(self._theory_head)

    def _pick_branch_literal(self) -> Optional[int]:
        while self._heap:
            neg_activity, var = heapq.heappop(self._heap)
            if self._assign[var] != self._UNASSIGNED:
                continue
            if -neg_activity != self._activity[var]:
                # Stale duplicate: the variable was bumped after this entry
                # was pushed, so a fresher entry is (or was) in the heap.
                continue
            return var if self._phase[var] else -var
        # Fall back to a linear scan (the heap should never run dry — every
        # unassigned variable owns a current entry — but stay safe).
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == self._UNASSIGNED:
                return var if self._phase[var] else -var
        return None

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_var_activities()
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_var_theory(self, var: int) -> None:
        """Extra activity for atoms named by theory conflicts/propagations."""
        if self._theory_bump <= 0.0 or var > self._num_vars:
            return
        self._activity[var] += self._var_inc * self._theory_bump
        if self._activity[var] > 1e100:
            self._rescale_var_activities()
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _rescale_var_activities(self) -> None:
        for v in range(1, self._num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_inc *= 1e-100
        # Every heap entry is now stale; rebuild instead of letting
        # _pick_branch_literal drain a heap full of duplicates.
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assign[v] == self._UNASSIGNED
        ]
        heapq.heapify(self._heap)

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._decay
        self._cla_inc /= self._clause_decay
