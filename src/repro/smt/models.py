"""Models (satisfying assignments) returned by the SMT solver."""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.smt.terms import Term
from repro.utils.errors import SolverError

__all__ = ["Model"]

Value = Union[int, bool]


class Model:
    """A satisfying assignment mapping variable names to values.

    Variables the solver never had to constrain are given default values
    (``0`` for Int, ``False`` for Bool) so that :meth:`eval` is total over
    the variables of the original formula.
    """

    def __init__(self, values: Optional[Dict[str, Value]] = None) -> None:
        self._values: Dict[str, Value] = dict(values or {})

    # -- raw access --------------------------------------------------------------

    def value_of(self, name: str, default: Optional[Value] = None) -> Optional[Value]:
        """The raw value bound to ``name`` (or ``default``)."""
        return self._values.get(name, default)

    def assign(self, name: str, value: Value) -> None:
        """Extend / override the model (used when decoding witnesses)."""
        self._values[name] = value

    def as_dict(self) -> Dict[str, Value]:
        return dict(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({items})"

    # -- evaluation --------------------------------------------------------------

    def eval(self, term: Term) -> Value:
        """Evaluate ``term`` under this model.

        Unbound variables default to ``0`` / ``False``; uninterpreted-sort
        variables evaluate to the integer class identifier chosen by the EUF
        solver (or 0).
        """
        kind = term.kind
        if kind == "intconst":
            return term.value  # type: ignore[return-value]
        if kind == "boolconst":
            return term.value  # type: ignore[return-value]
        if kind == "var" or (kind == "app" and not term.args):
            default: Value = False if term.sort.is_bool else 0
            return self._values.get(term.name, default)  # type: ignore[arg-type]
        if kind == "add":
            return sum(self.eval(a) for a in term.args)
        if kind == "neg":
            return -self.eval(term.args[0])
        if kind == "mul":
            coeff, other = term.args
            return self.eval(coeff) * self.eval(other)
        if kind == "le":
            return self.eval(term.args[0]) <= self.eval(term.args[1])
        if kind == "lt":
            return self.eval(term.args[0]) < self.eval(term.args[1])
        if kind == "eq":
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind == "not":
            return not self.eval(term.args[0])
        if kind == "and":
            return all(self.eval(a) for a in term.args)
        if kind == "or":
            return any(self.eval(a) for a in term.args)
        if kind == "implies":
            return (not self.eval(term.args[0])) or self.eval(term.args[1])
        if kind == "iff":
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind == "ite":
            cond, then, other = term.args
            return self.eval(then) if self.eval(cond) else self.eval(other)
        if kind == "app":
            raise SolverError(
                f"cannot evaluate application of non-nullary function {term.name!r}"
            )
        raise SolverError(f"cannot evaluate term of kind {kind!r}")

    def satisfies(self, term: Term) -> bool:
        """True if the Boolean ``term`` evaluates to true under this model."""
        value = self.eval(term)
        if not isinstance(value, bool):
            raise SolverError("satisfies() expects a Boolean term")
        return value
