"""A CDCL SAT solver with an online theory hook, on flat typed memory.

This is a conflict-driven clause-learning solver in the MiniSat lineage:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity decision heuristic with phase saving,
* Luby-sequence restarts,
* incremental solving under assumptions (used by DPLL(T) and by the
  verification layer to enumerate multiple witnesses),
* learned-clause database reduction with arena compaction (see below),
* theory-aware branching, and an online :class:`TheoryListener` hook:
  every trail literal is streamed to an attached theory, which may veto
  the partial assignment with a conflict explanation, inject
  theory-implied literals (with lazily materialised reason clauses), and
  is told about backjumps and restarts so its internal state stays
  trail-synchronised.

Flat-memory layout
------------------

The hot path holds no per-clause Python objects.  All clause storage is a
single contiguous ``array('i')`` **arena** of int32 words; a clause is an
integer offset into it (a *cref*) addressing the record::

    [ header | lbd | activity-slot | lit0 | lit1 | ... | lit_{n-1} ]

``header`` packs the literal count and flag bits (``size << 4 | flags``);
``lbd`` is the learn-time literal-block distance; ``activity-slot``
indexes a parallel float list holding the clause activity (-1 when the
clause has none).  The first two literal slots are the watched literals,
exactly as in the object core this replaced.

Watch lists are flat per-literal Python lists of ``(ref, blocker)`` int
pairs stored inline (``[ref0, blk0, ref1, blk1, ...]``), indexed by
``2*var`` for the positive and ``2*var + 1`` for the negative literal.
The *blocker* is a cached copy of the clause's other watched literal: the
propagation inner loop tests it against the flat ``_assign`` array and
skips the clause without touching the arena when it is already true.  To
stay search-order identical with the reference core the fast path only
fires when the blocker is *fresh* (still the clause's first watched
literal — one extra arena read); a stale-but-true blocker falls through
to the full path, which behaves exactly like the object core did.

Binary clauses never touch the propagation path's arena reads: their
watch entries carry a **negative** ref (``-cref``) and the blocker *is*
the other literal, so unit propagation over a binary clause is a pure
watch-list operation.  (The record still exists in the arena so that
conflict analysis, activity bumping and reduceDB treat all clauses
uniformly.)

Assignments, decision levels, reasons, saved phases and the trail are
flat arrays indexed by variable (plain Python lists of small ints — on
CPython, list indexing outruns ``array('b')``/``array('i')`` element
access because the latter box a fresh int per read).  ``_assign`` holds
``0`` unassigned / ``1`` true / ``-1`` false, so the truth value of a
literal is one index plus one sign flip, inlined into every hot loop.
``_reason`` holds ``0`` (decision / none), a positive cref, or ``-1``
for a lazy theory reason that :meth:`SatSolver._materialize_reason`
turns into a real arena record only when conflict analysis needs it.

:meth:`SatSolver.reduce_db` is an **arena compaction**: victims are
flagged, live records (problem clauses, surviving learned clauses, and
reason-locked lazily-materialised theory explanations) are copied into a
fresh arena, and watch lists, reason refs and the learned-clause index
are remapped in one sweep.  ``stats.compactions`` counts the sweeps and
``stats.arena_bytes`` tracks the arena footprint.

Literals are non-zero Python ints: variable ``v`` is the positive literal
``v`` and its negation is ``-v``.  Variables are 1-based.
"""

from __future__ import annotations

import ctypes
import heapq
import time
from array import array
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults
from repro.smt import satkernel
from repro.utils.errors import SolverError

__all__ = [
    "SatResult",
    "SatSolver",
    "SatStats",
    "TheoryListener",
    "DEFAULT_REDUCE_BASE",
    "DEFAULT_REDUCE_GROWTH",
    "DEFAULT_CLAUSE_DECAY",
    "DEFAULT_THEORY_BUMP",
]

#: Default learned-clause budget before the first :meth:`SatSolver.reduce_db`.
DEFAULT_REDUCE_BASE = 600
#: Default geometric growth factor of the learned-clause budget.
DEFAULT_REDUCE_GROWTH = 1.5
#: Default clause-activity decay (mirrors the variable-activity decay).
DEFAULT_CLAUSE_DECAY = 0.999
#: Default extra activity factor for variables named by theory feedback.
DEFAULT_THEORY_BUMP = 2.0

# Arena record header flags (low nibble; the size sits above them).
_FLAG_LEARNED = 1
_FLAG_PINNED = 2
_FLAG_DELETED = 4   # marked victim during a reduce_db sweep
_FLAG_REASON = 8    # materialised theory explanation: live only while locked
_SIZE_SHIFT = 4

#: ``_reason`` sentinel for a theory-propagated literal whose explanation
#: has not been materialised yet.
_THEORY_REASON = -1


class SatResult(Enum):
    """Outcome of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatStats:
    """Counters describing the work a :class:`SatSolver` performed."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    theory_propagations: int = 0
    theory_conflicts: int = 0
    theory_partial_conflicts: int = 0
    reduce_db_rounds: int = 0
    clauses_deleted: int = 0
    max_live_learned: int = 0
    compactions: int = 0
    arena_bytes: int = 0
    kernel_faults: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "max_decision_level": self.max_decision_level,
            "theory_propagations": self.theory_propagations,
            "theory_conflicts": self.theory_conflicts,
            "theory_partial_conflicts": self.theory_partial_conflicts,
            "reduce_db_rounds": self.reduce_db_rounds,
            "clauses_deleted": self.clauses_deleted,
            "max_live_learned": self.max_live_learned,
            "compactions": self.compactions,
            "arena_bytes": self.arena_bytes,
            "kernel_faults": self.kernel_faults,
        }


class TheoryListener:
    """Callback interface through which a theory rides the SAT search.

    The solver streams every trail literal to :meth:`on_assert` — decisions
    and Boolean propagations alike — in trail order.  The listener may:

    * **veto** the partial assignment by returning a conflict: a list of
      previously streamed literals (including the one just asserted) whose
      conjunction is theory-inconsistent.  The solver turns it into a
      conflict clause and resolves it with normal first-UIP analysis, so
      theory conflicts are learned exactly like Boolean ones;
    * **propagate**: :meth:`propagations` returns theory-implied literals.
      They are enqueued with a *lazy* reason — :meth:`explain` is only
      called if conflict analysis actually needs the antecedents;
    * **track the trail**: :meth:`on_backjump` announces that only the
      first ``kept`` streamed literals survive, :meth:`on_restart` that the
      search restarted (after the corresponding backjump to level 0);
    * **finish**: :meth:`on_final_check` runs once a full assignment is
      reached, for theories that only do a bounded check per assertion
      (e.g. rational-only LIA filtering) and must complete it before the
      solver may answer SAT.

    All methods are optional; the defaults make an attached listener a
    no-op.  Explanations returned by :meth:`on_assert` / :meth:`explain`
    must only mention literals streamed *before* the literal they explain —
    the solver relies on trail order during conflict analysis.
    """

    def on_assert(self, lit: int) -> Optional[Sequence[int]]:
        """Literal ``lit`` was appended to the trail; return a conflict or None."""
        return None

    def propagations(self) -> Sequence[int]:
        """Theory-implied literals to enqueue (may include already-true ones)."""
        return ()

    def explain(self, lit: int) -> Sequence[int]:
        """Streamed literals whose conjunction implies propagated ``lit``."""
        raise SolverError(f"theory cannot explain literal {lit}")

    def on_backjump(self, kept: int) -> None:
        """Only the first ``kept`` literals streamed via on_assert survive."""

    def on_restart(self) -> None:
        """The search restarted (state was already retracted via on_backjump)."""

    def on_final_check(self) -> Optional[Sequence[int]]:
        """Full assignment reached; return a final conflict or None."""
        return None


def _dedupe(lits: Iterable[int]) -> List[int]:
    seen = set()
    out: List[int] = []
    for lit in lits:
        if lit not in seen:
            seen.add(lit)
            out.append(lit)
    return out


def luby(i: int) -> int:
    """The ``i``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if i < 1:
        raise SolverError("luby is defined for i >= 1")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


class SatSolver:
    """CDCL SAT solver with assumptions, on an int32 clause arena.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SatResult.SAT
        assert solver.value(b) is True

    Clause identity is an integer *cref* (arena offset).  The inspection
    helpers (:meth:`problem_refs`, :meth:`learned_refs`,
    :meth:`clause_lits`, :meth:`clause_info`, :meth:`watch_entries`,
    :meth:`reason_ref`) expose the flat structures to tests and tools
    without leaking the raw arena.
    """

    _UNASSIGNED = 0

    def __init__(
        self,
        restart_base: int = 100,
        decay: float = 0.95,
        clause_decay: float = DEFAULT_CLAUSE_DECAY,
        reduce_db: bool = True,
        reduce_base: int = DEFAULT_REDUCE_BASE,
        reduce_growth: float = DEFAULT_REDUCE_GROWTH,
        theory_bump: float = DEFAULT_THEORY_BUMP,
        pin_theory_lemmas: bool = False,
        use_kernel: Optional[bool] = None,
    ) -> None:
        if reduce_base < 1:
            raise SolverError(f"reduce_base must be >= 1, got {reduce_base}")
        if reduce_growth < 1.0:
            raise SolverError(f"reduce_growth must be >= 1, got {reduce_growth}")
        self._num_vars = 0
        # Clause arena: word 0 is a sentinel so cref 0 can mean "no reason".
        self._arena = array("i", [0])
        self._clause_refs: List[int] = []   # problem clause crefs
        self._learned_refs: List[int] = []  # learned clause crefs (reducible)
        self._cla_activity: List[float] = []  # activity slots (learned only)
        # Watch lists: watches[2v] for literal v, watches[2v+1] for -v.
        # Each is a flat [ref, blocker, ref, blocker, ...] pair list; a
        # negative ref is an inlined binary clause (|ref| is its cref).
        # With the native kernel loaded, the lists live in C instead
        # (self._cwt) and this table stays None.
        self._watches: Optional[List[List[int]]] = None
        # Assignment state; index 0 unused.  int32 columns so the native
        # kernel indexes the same memory the Python loop does.
        self._assign = array("i", [0])   # 0 unassigned, 1 true, -1 false
        self._level = array("i", [0])
        # Reasons: 0 none, cref > 0, or _THEORY_REASON for a lazy theory
        # explanation materialised by _materialize_reason on demand.
        self._reason = array("i", [0])
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        # Decision heuristic.
        self._activity: List[float] = [0.0]
        self._phase = array("i", [0])  # saved polarity per var, 0/1
        self._var_inc = 1.0
        self._decay = decay
        self._heap: List[Tuple[float, int]] = []
        # Learned-clause database reduction.
        self._cla_inc = 1.0
        self._clause_decay = clause_decay
        self._reduce_enabled = reduce_db
        self._reduce_base = reduce_base
        self._reduce_limit = reduce_base
        self._reduce_growth = reduce_growth
        self._reduce_conflict_floor = max(1, reduce_base // 6)
        # Theory-aware branching / theory lemma pinning.
        self._theory_bump = theory_bump
        self._pin_theory_lemmas = pin_theory_lemmas
        self._conflict_from_theory = False
        # Restarts.
        self._restart_base = restart_base
        # Bookkeeping.
        self._ok = True
        self.stats = SatStats()
        self.stats.arena_bytes = self._arena.itemsize
        self._conflict_limit: Optional[int] = None
        # Online theory integration.
        self._theory: Optional[TheoryListener] = None
        self._theory_head = 0  # trail literals already streamed to the theory
        # Native propagation kernel (optional).  When available, the watch
        # lists live in C (self._cwt) and _propagate dispatches to the
        # compiled loop; otherwise self._watches holds them as Python lists
        # and the pure-Python reference loop runs.  Both paths are
        # bit-identical in every observable.
        self._cwt = None
        self._kernel = satkernel.load() if use_kernel in (None, True) else None
        if use_kernel and self._kernel is None:
            raise SolverError(
                f"native SAT kernel unavailable: {satkernel.unavailable_reason()}"
            )
        if self._kernel is not None:
            self._cwt = self._kernel.sk_wt_new(2)
            self._ctx = satkernel.PropCtx()
            self._qbuf = array("i", [0] * 16)
        else:
            self._watches = [[], []]

    def set_theory(self, listener: Optional[TheoryListener]) -> None:
        """Attach (or detach) the online theory listener.

        Must be done before solving; literals already on the trail are
        streamed at the next ``solve`` call.
        """
        self._theory = listener
        self._theory_head = 0

    @property
    def kernel_active(self) -> bool:
        """Whether the compiled propagation kernel backs this solver."""
        return self._cwt is not None

    def __del__(self) -> None:
        cwt = getattr(self, "_cwt", None)
        if cwt is not None:
            try:
                self._kernel.sk_wt_free(cwt)
            except Exception:  # interpreter shutdown: library may be gone
                pass
            self._cwt = None

    # ------------------------------------------------------------------ setup

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assign.append(self._UNASSIGNED)
        self._level.append(0)
        self._reason.append(0)
        self._activity.append(0.0)
        self._phase.append(0)
        # Watch slots are allocated here, once per variable, so clause
        # loading never touches a dict (the old core paid a
        # _watches.setdefault per literal per add_clause).
        if self._cwt is not None:
            self._kernel.sk_wt_ensure(self._cwt, 2 * self._num_vars + 2)
        else:
            self._watches.append([])
            self._watches.append([])
        var = self._num_vars
        heapq.heappush(self._heap, (0.0, var))
        return var

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self._num_vars < count:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clause_refs) + len(self._learned_refs)

    @property
    def num_learned(self) -> int:
        """Live learned clauses (the population :meth:`reduce_db` bounds)."""
        return len(self._learned_refs)

    # ------------------------------------------------------------------ arena

    def _alloc(
        self,
        lits: Sequence[int],
        learned: bool = False,
        pinned: bool = False,
        reason_record: bool = False,
    ) -> int:
        """Append a clause record to the arena; returns its cref."""
        arena = self._arena
        ref = len(arena)
        flags = 0
        if learned:
            flags |= _FLAG_LEARNED
            slot = len(self._cla_activity)
            self._cla_activity.append(0.0)
        else:
            slot = -1
        if pinned:
            flags |= _FLAG_PINNED
        if reason_record:
            flags |= _FLAG_REASON
        arena.append((len(lits) << _SIZE_SHIFT) | flags)
        arena.append(len(lits))  # lbd defaults to the clause size
        arena.append(slot)
        arena.extend(lits)
        self.stats.arena_bytes = len(arena) * arena.itemsize
        return ref

    def _attach(self, ref: int) -> None:
        """Watch a clause on its first two literals.

        Binary clauses are inlined: the watch entries carry ``-ref`` and
        the blocker *is* the other literal, so propagation never reads the
        record.
        """
        arena = self._arena
        l0 = arena[ref + 3]
        l1 = arena[ref + 4]
        wref = -ref if (arena[ref] >> _SIZE_SHIFT) == 2 else ref
        if self._cwt is not None:
            push = self._kernel.sk_wt_push
            push(self._cwt, l0 + l0 if l0 > 0 else 1 - l0 - l0, wref, l1)
            push(self._cwt, l1 + l1 if l1 > 0 else 1 - l1 - l1, wref, l0)
            return
        wl = self._watches[l0 + l0 if l0 > 0 else 1 - l0 - l0]
        wl.append(wref)
        wl.append(l1)
        wl = self._watches[l1 + l1 if l1 > 0 else 1 - l1 - l1]
        wl.append(wref)
        wl.append(l0)

    # ------------------------------------------------------------- inspection

    def problem_refs(self) -> Tuple[int, ...]:
        """Crefs of the live problem clauses, in load order."""
        return tuple(self._clause_refs)

    def learned_refs(self) -> Tuple[int, ...]:
        """Crefs of the live learned clauses, in learn order."""
        return tuple(self._learned_refs)

    def clause_lits(self, ref: int) -> List[int]:
        """The literals of clause ``ref`` (current watch order)."""
        arena = self._arena
        base = ref + 3
        return arena[base : base + (arena[ref] >> _SIZE_SHIFT)].tolist()

    def clause_info(self, ref: int) -> Dict[str, object]:
        """Record metadata for clause ``ref`` (size, lbd, flags, activity)."""
        header = self._arena[ref]
        slot = self._arena[ref + 2]
        return {
            "size": header >> _SIZE_SHIFT,
            "lbd": self._arena[ref + 1],
            "learned": bool(header & _FLAG_LEARNED),
            "pinned": bool(header & _FLAG_PINNED),
            "reason_record": bool(header & _FLAG_REASON),
            "activity": self._cla_activity[slot] if slot >= 0 else 0.0,
        }

    def watch_entries(self, lit: int) -> List[Tuple[int, int]]:
        """``(ref, blocker)`` pairs examined when ``lit`` becomes false.

        A negative ref is an inlined binary clause whose cref is ``-ref``.
        """
        index = lit + lit if lit > 0 else 1 - lit - lit
        if self._cwt is not None:
            length = self._kernel.sk_wt_len(self._cwt, index)
            buf = array("i", bytes(4 * length))
            if length:
                self._kernel.sk_wt_copy(self._cwt, index, buf.buffer_info()[0])
            wl: Sequence[int] = buf
        else:
            wl = self._watches[index]
        return [(wl[i], wl[i + 1]) for i in range(0, len(wl), 2)]

    def reason_ref(self, var: int) -> int:
        """The reason cref of ``var`` (0: decision/none, -1: lazy theory)."""
        return self._reason[var]

    @property
    def arena_words(self) -> int:
        """Current arena length in int32 words (including dead records)."""
        return len(self._arena)

    def arena_live_words(self) -> int:
        """Words owned by live records (problem + learned + locked reasons)."""
        live = 0
        arena = self._arena
        for ref in self._iter_live_refs():
            live += 3 + (arena[ref] >> _SIZE_SHIFT)
        return live

    def _iter_live_refs(self) -> Iterable[int]:
        locked = {r for r in self._reason if r > 0}
        seen = set(self._clause_refs)
        seen.update(self._learned_refs)
        seen.update(locked)
        return sorted(seen)

    # ------------------------------------------------------------------ loading

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became trivially unsat.

        Clauses may be added at any time; clauses added between ``solve``
        calls are handled incrementally (the solver backtracks to level 0).
        """
        if not self._ok:
            return False
        self._backtrack(0)
        unique: List[int] = []
        seen = set()
        for lit in lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            var = abs(lit)
            self.ensure_vars(var)
            if lit in seen:
                continue
            if -lit in seen:
                return True  # tautology
            seen.add(lit)
            unique.append(lit)

        # Remove literals already false at level 0; detect satisfied clauses.
        filtered: List[int] = []
        assign = self._assign
        level = self._level
        for lit in unique:
            val = assign[lit] if lit > 0 else -assign[-lit]
            if val > 0 and level[abs(lit)] == 0:
                return True
            if val < 0 and level[abs(lit)] == 0:
                continue
            filtered.append(lit)

        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], 0):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True

        ref = self._alloc(filtered)
        self._attach(ref)
        self._clause_refs.append(ref)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    # ------------------------------------------------------------------ values

    def _lit_value(self, lit: int) -> Optional[bool]:
        val = self._assign[abs(lit)]
        if val == 0:
            return None
        return (val > 0) == (lit > 0)

    def value(self, var: int) -> Optional[bool]:
        """The value of a variable in the last model (None if unassigned)."""
        if var <= 0 or var > self._num_vars:
            raise SolverError(f"unknown variable {var}")
        val = self._assign[var]
        return None if val == 0 else val > 0

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful ``solve``."""
        assign = self._assign
        return {v: assign[v] > 0 for v in range(1, self._num_vars + 1)
                if assign[v] != 0}

    # ------------------------------------------------------------------ solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        theory_conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> SatResult:
        """Determine satisfiability under the given assumption literals.

        Returns :data:`SatResult.UNKNOWN` only when ``conflict_limit``
        (total conflicts), ``theory_conflict_limit`` (theory conflicts
        only — purely Boolean search stays unbudgeted, mirroring the
        offline lazy loop's iteration bound) or ``deadline`` (a
        ``time.monotonic`` instant, polled every few hundred search steps
        so the clock read stays off the propagation hot path) is hit.
        """
        if not self._ok:
            return SatResult.UNSAT
        self._conflict_limit = conflict_limit
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return SatResult.UNSAT

        conflicts_total = 0
        theory_conflicts_base = self.stats.theory_conflicts
        restart_count = 0
        restart_budget = self._restart_base * luby(1)
        level = self._level
        # Poll on the first iteration (an already-lapsed deadline must win
        # even on trivial instances), then every 256 search steps.
        deadline_poll = 255

        while True:
            if deadline is not None:
                deadline_poll += 1
                if deadline_poll >= 256:
                    deadline_poll = 0
                    if time.monotonic() >= deadline:
                        self._backtrack(0)
                        return SatResult.UNKNOWN
            conflict = self._propagate()
            if conflict is None:
                conflict = self._theory_sync()
            if conflict is None:
                # No conflict: apply assumptions first, then decide.
                if len(self._trail_lim) < len(assumptions):
                    lit = assumptions[len(self._trail_lim)]
                    val = self._lit_value(lit)
                    if val is True:
                        # Already satisfied: open an empty decision level so
                        # the assumption indexing stays aligned.
                        self._new_decision_level()
                        continue
                    if val is False:
                        return SatResult.UNSAT
                    self._new_decision_level()
                    self._enqueue(lit, 0)
                    continue

                lit = self._pick_branch_literal()
                if lit is not None:
                    self.stats.decisions += 1
                    self._new_decision_level()
                    self._enqueue(lit, 0)
                    continue
                conflict = self._theory_final()
                if conflict is None:
                    return SatResult.SAT

            # Conflict handling (Boolean and theory conflicts alike).
            self.stats.conflicts += 1
            conflicts_total += 1
            from_theory = self._conflict_from_theory
            self._conflict_from_theory = False
            conflict_lits, conflict_ref = conflict
            conflict_level = 0
            for lit in conflict_lits:
                lit_level = level[lit if lit > 0 else -lit]
                if lit_level > conflict_level:
                    conflict_level = lit_level
            if not conflict_lits or conflict_level == 0:
                self._ok = False
                return SatResult.UNSAT
            if conflict_level < len(self._trail_lim):
                # Theory conflicts may surface only after the offending
                # literals' level is already left behind (e.g. a final-check
                # conflict over early assignments): re-anchor analysis at the
                # deepest level actually mentioned by the clause.
                self._backtrack(conflict_level)
            learned, backtrack_level, lbd = self._analyze(conflict_lits, conflict_ref)
            self._backtrack(backtrack_level)
            self._learn(learned, lbd, theory_lemma=from_theory)
            self._decay_activities()
            if (
                self._reduce_enabled
                and len(self._learned_refs) >= self._reduce_limit
                and conflicts_total >= self._reduce_conflict_floor
            ):
                # The conflict floor keeps warm incremental checks (a few
                # conflicts against a hot clause set) from shedding exactly
                # the lemmas that make them cheap; only a search that is
                # actually struggling pays a reduction.
                self.reduce_db()
                self._reduce_limit = max(
                    int(self._reduce_limit * self._reduce_growth),
                    self._reduce_limit + 1,
                )
            if (
                self._conflict_limit is not None
                and conflicts_total >= self._conflict_limit
            ):
                self._backtrack(0)
                return SatResult.UNKNOWN
            if (
                theory_conflict_limit is not None
                and self.stats.theory_conflicts - theory_conflicts_base
                >= theory_conflict_limit
            ):
                self._backtrack(0)
                return SatResult.UNKNOWN
            if conflicts_total >= restart_budget:
                restart_count += 1
                self.stats.restarts += 1
                restart_budget = conflicts_total + self._restart_base * luby(
                    restart_count + 1
                )
                self._backtrack(0)
                if self._theory is not None:
                    self._theory.on_restart()

    # ------------------------------------------------------------------ theory

    def _theory_sync(self) -> Optional[Tuple[List[int], int]]:
        """Stream new trail literals to the theory and absorb its feedback.

        Alternates between feeding the unstreamed trail suffix, enqueuing
        theory propagations, and Boolean propagation until a fixpoint (or a
        conflict).  Called whenever unit propagation reaches a fixpoint.
        """
        theory = self._theory
        if theory is None:
            return None
        trail = self._trail
        on_assert = theory.on_assert
        while True:
            head = self._theory_head
            while head < len(trail):
                lit = trail[head]
                head += 1
                self._theory_head = head
                conflict = on_assert(lit)
                if conflict is not None:
                    return self._count_theory_conflict(
                        _dedupe(-lit for lit in conflict)
                    )
            enqueued = False
            for lit in theory.propagations():
                value = self._lit_value(lit)
                if value is True:
                    continue
                if value is False:
                    # The theory implies a literal the Boolean search already
                    # negated: explanation -> lit is a conflict clause.
                    explanation = [e for e in theory.explain(lit) if e != lit]
                    lits = _dedupe([lit] + [-e for e in explanation])
                    return self._count_theory_conflict(lits)
                self.stats.theory_propagations += 1
                self._bump_var_theory(abs(lit))
                self._enqueue(lit, _THEORY_REASON)
                enqueued = True
            if not enqueued:
                return None
            # A conflict here comes from ordinary clause propagation (merely
            # triggered by a theory-implied literal): it is a Boolean
            # conflict and must not be counted against the theory budget.
            conflict = self._propagate()
            if conflict is not None:
                return conflict

    def _theory_final(self) -> Optional[Tuple[List[int], int]]:
        """Give the theory its completeness check on the full assignment."""
        if self._theory is None:
            return None
        conflict = self._theory_final_check()
        if conflict is None:
            return None
        return self._count_theory_conflict(_dedupe(-lit for lit in conflict))

    def _theory_final_check(self) -> Optional[Sequence[int]]:
        assert self._theory is not None
        return self._theory.on_final_check()

    def _count_theory_conflict(self, lits: List[int]) -> Tuple[List[int], int]:
        self.stats.theory_conflicts += 1
        self._conflict_from_theory = True
        if len(self._trail) < self._num_vars:
            self.stats.theory_partial_conflicts += 1
        # Theory-aware branching: the atoms a theory explanation names are
        # exactly the "almost conflicting" ones — bias decisions toward them.
        for lit in lits:
            self._bump_var_theory(abs(lit))
        return lits, 0

    def _materialize_reason(self, var: int) -> int:
        """Turn ``var``'s lazy theory reason into an arena record.

        The record carries the ``_FLAG_REASON`` flag: it is never watched
        and never enters the learned index — compaction keeps it alive
        exactly while it is reason-locked.
        """
        assert self._theory is not None
        lit = var if self._assign[var] > 0 else -var
        explanation = [e for e in self._theory.explain(lit) if e != lit]
        ref = self._alloc(
            _dedupe([lit] + [-e for e in explanation]), reason_record=True
        )
        self._reason[var] = ref
        return ref

    # ------------------------------------------------------------------ internals

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        if len(self._trail_lim) > self.stats.max_decision_level:
            self.stats.max_decision_level = len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._lit_value(lit)
        if val is not None:
            return val
        var = lit if lit > 0 else -lit
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[Tuple[List[int], int]]:
        """Unit propagation; returns ``(conflict_lits, conflict_ref)`` or None.

        Dispatches to the compiled kernel when it is loaded, else to the
        pure-Python reference loop.  The two are maintained in lockstep and
        are bit-identical in every observable (assignments, trail order,
        watch-list evolution, conflict choice) — only the wall clock
        differs.
        """
        if self._cwt is not None:
            if (
                faults.ACTIVE is not None
                and faults.draw("kernel.propagate") is not None
            ):
                # Injected before the C call so both the arena and the C
                # watch table are pristine when we copy them back out.
                self._degrade_kernel()
                return self._propagate_py()
            try:
                return self._propagate_c()
            except OSError:
                # A genuinely faulting kernel call: fall back for good.
                self._degrade_kernel()
                return self._propagate_py()
        return self._propagate_py()

    def _degrade_kernel(self) -> None:
        """Mid-flight kernel → pure-Python degradation.

        The C watch table is read back into Python lists (the two loops
        share every other piece of state — the arena and the flat columns
        are ``array('i')`` on both sides), the kernel handle is dropped,
        and every future :meth:`_propagate` runs the reference loop.  The
        search continues exactly where it was; only the wall clock changes.
        """
        watches: List[List[int]] = []
        for index in range(2 * self._num_vars + 2):
            length = self._kernel.sk_wt_len(self._cwt, index)
            buf = array("i", bytes(4 * length))
            if length:
                self._kernel.sk_wt_copy(self._cwt, index, buf.buffer_info()[0])
            watches.append(buf.tolist())
        self._kernel.sk_wt_free(self._cwt)
        self._cwt = None
        self._kernel = None
        self._watches = watches
        self.stats.kernel_faults += 1

    def _propagate_c(self) -> Optional[Tuple[List[int], int]]:
        """Kernel propagation: marshal buffer pointers, run, unmarshal.

        The pending trail suffix is staged into a scratch int32 queue the C
        loop both consumes and extends; newly enqueued literals are copied
        back onto the Python trail afterwards.  Buffer addresses are
        re-read on every call because ``array`` storage moves as it grows.
        """
        trail = self._trail
        qhead = self._queue_head
        pending = len(trail) - qhead
        qbuf = self._qbuf
        need = self._num_vars + pending + 1
        if len(qbuf) < need:
            qbuf.extend([0] * (need - len(qbuf)))
        for offset in range(pending):
            qbuf[offset] = trail[qhead + offset]
        ctx = self._ctx
        ctx.arena = self._arena.buffer_info()[0]
        ctx.assign = self._assign.buffer_info()[0]
        ctx.level = self._level.buffer_info()[0]
        ctx.reason = self._reason.buffer_info()[0]
        ctx.phase = self._phase.buffer_info()[0]
        ctx.queue = qbuf.buffer_info()[0]
        ctx.queue_len = pending
        ctx.qhead = 0
        ctx.dl = len(self._trail_lim)
        entry = self._kernel.sk_propagate(self._cwt, ctypes.byref(ctx))
        self.stats.propagations += ctx.props
        if ctx.queue_len > pending:
            trail.extend(qbuf[pending : ctx.queue_len].tolist())
        self._queue_head = len(trail)
        if entry == 0:
            return None
        arena = self._arena
        false_lit = ctx.conflict_flit
        if entry < 0:
            # Inlined binary conflict: [other-literal, falsified-literal],
            # matching the Python loop's [blocker, false_lit] order.
            ref = -entry
            l0 = arena[ref + 3]
            other = arena[ref + 4] if l0 == false_lit else l0
            return [other, false_lit], ref
        base = entry + 3
        lits = arena[base : base + (arena[entry] >> _SIZE_SHIFT)].tolist()
        return lits, entry

    def _propagate_py(self) -> Optional[Tuple[List[int], int]]:
        """Pure-Python unit propagation (the kernel's reference semantics).

        This is the solver's innermost loop: everything is inlined — literal
        values come straight off the flat ``_assign`` column, watch lists
        are edited in place with a read/write cursor pair, binary clauses
        never touch the arena, and a fresh true blocker skips a clause with
        a single arena read.
        """
        trail = self._trail
        assign = self._assign
        level = self._level
        phase = self._phase
        reason = self._reason
        arena = self._arena
        watches = self._watches
        qhead = self._queue_head
        props = 0
        dl = len(self._trail_lim)
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = -lit
            # watches[index of false_lit]: entries examined when it went false.
            wl = watches[lit + lit + 1] if lit > 0 else watches[-lit - lit]
            i = 0
            n = len(wl)
            conflict_lits: Optional[List[int]] = None
            conflict_ref = 0
            # Write cursor for in-place compaction.  Entries only leave the
            # list when a watch moves, which is rare next to keeps, so the
            # walk starts in "clean" mode (j < 0: every entry stays where it
            # is, nothing is copied) and drops to copy mode at the first
            # dropped entry.
            j = -1
            while i < n:
                ref = wl[i]
                blocker = wl[i + 1]
                i += 2
                bv = assign[blocker] if blocker > 0 else -assign[-blocker]
                if ref < 0:
                    # Inlined binary clause: the blocker IS the other literal.
                    if j >= 0:
                        wl[j] = ref
                        wl[j + 1] = blocker
                        j += 2
                    if bv > 0:
                        continue
                    if bv == 0:
                        var = blocker if blocker > 0 else -blocker
                        assign[var] = 1 if blocker > 0 else -1
                        level[var] = dl
                        reason[var] = -ref
                        phase[var] = blocker > 0
                        trail.append(blocker)
                        continue
                    conflict_lits = [blocker, false_lit]
                    conflict_ref = -ref
                    break
                base = ref + 3
                if bv > 0 and arena[base] == blocker:
                    # Fresh blocker: the clause's other watch is true — skip
                    # without reading the rest of the record.  (A stale true
                    # blocker falls through so watch-list evolution stays
                    # identical to the reference core.)
                    if j >= 0:
                        wl[j] = ref
                        wl[j + 1] = blocker
                        j += 2
                    continue
                l0 = arena[base]
                if l0 == false_lit:
                    l0 = arena[base + 1]
                    arena[base] = l0
                    arena[base + 1] = false_lit
                fv = assign[l0] if l0 > 0 else -assign[-l0]
                if fv > 0:
                    if j >= 0:
                        wl[j] = ref
                        wl[j + 1] = l0
                        j += 2
                    else:
                        wl[i - 1] = l0  # refresh the blocker in place
                    continue
                # Look for a replacement watch.
                end = base + (arena[ref] >> _SIZE_SHIFT)
                k = base + 2
                while k < end:
                    lk = arena[k]
                    if (assign[lk] if lk > 0 else -assign[-lk]) >= 0:
                        break
                    k += 1
                if k < end:
                    arena[base + 1] = lk
                    arena[k] = false_lit
                    nwl = watches[lk + lk] if lk > 0 else watches[1 - lk - lk]
                    nwl.append(ref)
                    nwl.append(l0)
                    if j < 0:
                        j = i - 2  # first dropped entry: switch to copy mode
                    continue
                # Clause is unit or conflicting.
                if j >= 0:
                    wl[j] = ref
                    wl[j + 1] = l0
                    j += 2
                else:
                    wl[i - 1] = l0
                if fv == 0:
                    var = l0 if l0 > 0 else -l0
                    assign[var] = 1 if l0 > 0 else -1
                    level[var] = dl
                    reason[var] = ref
                    phase[var] = l0 > 0
                    trail.append(l0)
                    continue
                conflict_lits = arena[base:end].tolist()
                conflict_ref = ref
                break
            if conflict_lits is not None:
                # Conflict: keep the remaining clauses watched and stop.
                if j >= 0:
                    while i < n:
                        wl[j] = wl[i]
                        wl[j + 1] = wl[i + 1]
                        i += 2
                        j += 2
                    del wl[j:]
                self._queue_head = len(trail)
                self.stats.propagations += props
                return conflict_lits, conflict_ref
            if j >= 0:
                del wl[j:]
        self._queue_head = qhead
        self.stats.propagations += props
        return None

    def _analyze(
        self, conflict_lits: Sequence[int], conflict_ref: int
    ) -> Tuple[List[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first), the level to
        backtrack to, and the clause's literal-block distance (computed
        here, while every literal is still assigned its conflict level).
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self._num_vars + 1)
        level = self._level
        trail = self._trail
        arena = self._arena
        reason = self._reason
        counter = 0
        lit = 0  # 0 is never a literal: first round processes every lit
        reason_lits: Sequence[int] = conflict_lits
        ref = conflict_ref
        index = len(trail) - 1
        current_level = len(self._trail_lim)

        while True:
            if ref > 0 and arena[ref] & _FLAG_LEARNED:
                self._bump_clause_slot(arena[ref + 2])
            for p in reason_lits:
                if p == lit:
                    continue
                var = p if p > 0 else -p
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = 1
                self._bump_var(var)
                if level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(p)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(trail[index])]:
                index -= 1
            lit = trail[index]
            var = abs(lit)
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
            ref = reason[var]
            if ref == _THEORY_REASON:
                ref = self._materialize_reason(var)
            base = ref + 3
            reason_lits = arena[base : base + (arena[ref] >> _SIZE_SHIFT)]
        learned[0] = -lit

        # Compute the backtrack level (second highest level in the clause).
        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if level[abs(learned[i])] > level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backtrack_level = level[abs(learned[1])]
        lbd = len({level[abs(lit)] for lit in learned})
        return learned, backtrack_level, lbd

    def _learn(
        self, learned: List[int], lbd: Optional[int] = None,
        theory_lemma: bool = False,
    ) -> None:
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            self._enqueue(learned[0], 0)
            return
        ref = self._alloc(
            learned,
            learned=True,
            pinned=theory_lemma and self._pin_theory_lemmas,
        )
        if lbd is not None:
            self._arena[ref + 1] = lbd
        self._cla_activity[self._arena[ref + 2]] = self._cla_inc
        self._attach(ref)
        self._learned_refs.append(ref)
        if len(self._learned_refs) > self.stats.max_live_learned:
            self.stats.max_live_learned = len(self._learned_refs)
        self._enqueue(learned[0], ref)

    def reduce_db(self) -> int:
        """Drop the coldest half of the deletable learned clauses.

        A learned clause is *not* deletable when it is binary (cheap to keep,
        expensive to relearn), a glue clause (LBD <= 3: it connects few
        decision levels and re-deriving it is what drives the conflict-count
        blow-up naive reduction suffers), pinned (a theory lemma under
        ``pin_theory_lemmas``), or reason-locked (currently the reason of a
        trail literal — deleting it would corrupt conflict analysis).

        Deletion is an **arena compaction**: victims are flagged, the
        survivors (problem clauses, remaining learned clauses, and
        reason-locked materialised theory explanations) are copied into a
        fresh arena, and the watch lists, reason refs and clause indexes
        are remapped in one sweep.  Returns the number of clauses deleted.
        """
        arena = self._arena
        reason = self._reason
        locked = set()
        for lit in self._trail:
            r = reason[lit if lit > 0 else -lit]
            if r > 0:
                locked.add(r)
        activity = self._cla_activity
        deletable = [
            ref
            for ref in self._learned_refs
            if (arena[ref] >> _SIZE_SHIFT) > 2
            and arena[ref + 1] > 3
            and not arena[ref] & _FLAG_PINNED
            and ref not in locked
        ]
        victims = sorted(deletable, key=lambda r: activity[arena[r + 2]])
        victims = victims[: len(victims) // 2]
        if not victims:
            return 0
        for ref in victims:
            arena[ref] |= _FLAG_DELETED
        self._compact(locked)
        self.stats.reduce_db_rounds += 1
        self.stats.clauses_deleted += len(victims)
        return len(victims)

    def _compact(self, locked: set) -> None:
        """Copy live records into a fresh arena; remap every cref in one sweep.

        Live records are the problem clauses, learned clauses not flagged
        ``_FLAG_DELETED``, and materialised theory reasons that are still
        reason-locked.  Watch entries of flagged victims are dropped while
        the lists are rewritten, which is what unlinks a victim from the
        propagation structures.
        """
        arena = self._arena
        activity = self._cla_activity
        new_arena = array("i", [0])
        new_activity: List[float] = []
        remap: Dict[int, int] = {}
        ref = 1
        end = len(arena)
        while ref < end:
            header = arena[ref]
            size = header >> _SIZE_SHIFT
            record_len = 3 + size
            keep = not header & _FLAG_DELETED
            if header & _FLAG_REASON:
                # Materialised theory explanations live exactly as long as
                # they are reason-locked; unlocked ones are garbage.
                keep = ref in locked
            if keep:
                new_ref = len(new_arena)
                remap[ref] = new_ref
                new_arena.extend(arena[ref : ref + record_len])
                if header & _FLAG_LEARNED:
                    new_slot = len(new_activity)
                    new_activity.append(activity[arena[ref + 2]])
                    new_arena[new_ref + 2] = new_slot
            ref += record_len
        # Remap the watch lists, dropping entries that point at victims.
        if self._cwt is not None:
            table = array("i", [-1]) * len(arena)
            for old_ref, new_ref in remap.items():
                table[old_ref] = new_ref
            self._kernel.sk_wt_remap(
                self._cwt, table.buffer_info()[0], len(table)
            )
        else:
            for wl in self._watches:
                i = 0
                j = 0
                n = len(wl)
                while i < n:
                    entry = wl[i]
                    cref = -entry if entry < 0 else entry
                    new_ref = remap.get(cref)
                    if new_ref is not None:
                        wl[j] = -new_ref if entry < 0 else new_ref
                        wl[j + 1] = wl[i + 1]
                        j += 2
                    i += 2
                del wl[j:]
        # Remap reasons (every surviving reason is in the remap by
        # construction: reason-locked clauses are never victims).
        reason = self._reason
        for var in range(1, self._num_vars + 1):
            if reason[var] > 0:
                reason[var] = remap[reason[var]]
        self._clause_refs = [remap[r] for r in self._clause_refs]
        self._learned_refs = [
            remap[r] for r in self._learned_refs if r in remap
        ]
        self._arena = new_arena
        self._cla_activity = new_activity
        self.stats.compactions += 1
        self.stats.arena_bytes = len(new_arena) * new_arena.itemsize

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign = self._assign
        reason = self._reason
        activity = self._activity
        heap = self._heap
        trail = self._trail
        for index in range(len(trail) - 1, limit - 1, -1):
            lit = trail[index]
            var = lit if lit > 0 else -lit
            assign[var] = 0
            reason[var] = 0
            heapq.heappush(heap, (-activity[var], var))
        del trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(trail)
        if self._theory is not None and self._theory_head > len(trail):
            self._theory_head = len(trail)
            self._theory.on_backjump(self._theory_head)

    def _pick_branch_literal(self) -> Optional[int]:
        assign = self._assign
        activity = self._activity
        phase = self._phase
        heap = self._heap
        while heap:
            neg_activity, var = heapq.heappop(heap)
            if assign[var] != 0:
                continue
            if -neg_activity != activity[var]:
                # Stale duplicate: the variable was bumped after this entry
                # was pushed, so a fresher entry is (or was) in the heap.
                continue
            return var if phase[var] else -var
        # Fall back to a linear scan (the heap should never run dry — every
        # unassigned variable owns a current entry — but stay safe).
        for var in range(1, self._num_vars + 1):
            if assign[var] == 0:
                return var if phase[var] else -var
        return None

    def _bump_var(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > 1e100:
            self._rescale_var_activities()
            activity = self._activity[var]
        heapq.heappush(self._heap, (-activity, var))

    def _bump_var_theory(self, var: int) -> None:
        """Extra activity for atoms named by theory conflicts/propagations."""
        if self._theory_bump <= 0.0 or var > self._num_vars:
            return
        activity = self._activity[var] + self._var_inc * self._theory_bump
        self._activity[var] = activity
        if activity > 1e100:
            self._rescale_var_activities()
            activity = self._activity[var]
        heapq.heappush(self._heap, (-activity, var))

    def _rescale_var_activities(self) -> None:
        for v in range(1, self._num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_inc *= 1e-100
        # Every heap entry is now stale; rebuild instead of letting
        # _pick_branch_literal drain a heap full of duplicates.
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assign[v] == 0
        ]
        heapq.heapify(self._heap)

    def _bump_clause_slot(self, slot: int) -> None:
        activity = self._cla_activity
        activity[slot] += self._cla_inc
        if activity[slot] > 1e20:
            arena = self._arena
            for ref in self._learned_refs:
                activity[arena[ref + 2]] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._decay
        self._cla_inc /= self._clause_decay
