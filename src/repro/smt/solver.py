"""The public SMT solver facade.

:class:`Solver` exposes a small, z3-like API (``add`` / ``push`` / ``pop`` /
``check`` / ``model``) on top of the DPLL(T) engine.  The rest of the library
— the trace encoder, the verifier, the baselines — talks to the SMT layer
exclusively through this class, so swapping in an external solver (the paper
used Yices) would only require re-implementing this facade.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt.dpllt import CheckResult, DpllTEngine, SmtStats
from repro.smt.models import Model
from repro.smt.smtlib import to_smtlib
from repro.smt.terms import And, Not, Term
from repro.utils.errors import SolverError

__all__ = ["Solver", "CheckResult"]


class Solver:
    """An incremental-by-assertion-stack SMT solver for QF_LIA + QF_UF.

    Example
    -------
    >>> from repro.smt.terms import IntVar, IntVal, Lt
    >>> s = Solver()
    >>> x, y = IntVar("x"), IntVar("y")
    >>> s.add(Lt(x, y), Lt(y, IntVal(3)), Lt(IntVal(0), x))
    >>> s.check() is CheckResult.SAT
    True
    >>> m = s.model()
    >>> 0 < m.value_of("x") < m.value_of("y") < 3
    True
    """

    def __init__(self, max_iterations: int = 200_000) -> None:
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._max_iterations = max_iterations
        self._last_result: Optional[CheckResult] = None
        self._last_engine: Optional[DpllTEngine] = None

    # -- assertion management ----------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert one or more Boolean terms."""
        for term in terms:
            if not isinstance(term, Term):
                raise SolverError(f"Solver.add expects Terms, got {term!r}")
            if not term.sort.is_bool:
                raise SolverError(f"assertions must be Boolean, got sort {term.sort}")
            self._assertions.append(term)
        self._last_result = None

    def add_all(self, terms: Iterable[Term]) -> None:
        self.add(*terms)

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        """Discard all assertions added since the matching :meth:`push`."""
        if not self._scopes:
            raise SolverError("pop without matching push")
        size = self._scopes.pop()
        del self._assertions[size:]
        self._last_result = None

    @property
    def assertions(self) -> List[Term]:
        """The currently asserted formulas (a copy)."""
        return list(self._assertions)

    # -- solving -------------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (plus assumptions).

        Assumptions are temporary assertions scoped to this single call.
        """
        terms = self._assertions + list(assumptions)
        engine = DpllTEngine(terms, max_iterations=self._max_iterations)
        result = engine.check()
        self._last_engine = engine
        self._last_result = result
        return result

    def model(self) -> Model:
        """The model of the last :meth:`check`, which must have returned SAT."""
        if self._last_result is not CheckResult.SAT or self._last_engine is None:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._last_engine.model()

    def statistics(self) -> Dict[str, int]:
        """Statistics of the most recent check (empty dict if none)."""
        if self._last_engine is None:
            return {}
        return self._last_engine.stats.as_dict()

    # -- interop ---------------------------------------------------------------------

    def to_smtlib(self, comments: Sequence[str] = ()) -> str:
        """Render the current assertion set as an SMT-LIB v2 script."""
        return to_smtlib(self._assertions, comments=comments)

    # -- convenience -------------------------------------------------------------------

    def is_valid(self, term: Term) -> bool:
        """True if ``term`` holds in every model of the current assertions."""
        result = self.check(Not(term))
        if result is CheckResult.UNKNOWN:
            raise SolverError("validity check was inconclusive")
        return result is CheckResult.UNSAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Solver({len(self._assertions)} assertions)"
