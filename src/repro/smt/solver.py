"""The public SMT solver facade.

:class:`Solver` exposes a small, z3-like API (``add`` / ``push`` / ``pop`` /
``check`` / ``model``) over a pluggable :class:`repro.smt.backend.SolverBackend`.
The default backend is the in-tree incremental DPLL(T) engine, which keeps
its learned state alive between ``check`` calls; passing
``backend="smtlib"`` (with an external solver configured via the
``REPRO_SMT_SOLVER`` environment variable) swaps in an external SMT-LIB
process instead — the swap the paper performed with Yices.

The facade itself only mirrors the assertion stack so that
:meth:`assertions` and :meth:`to_smtlib` work uniformly; all solving is
delegated to the backend.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.smt.backend import SolverBackend, create_backend
from repro.smt.dpllt import CheckResult
from repro.smt.models import Model
from repro.smt.smtlib import to_smtlib
from repro.smt.terms import Not, Term
from repro.utils.errors import SolverError

__all__ = ["Solver", "CheckResult"]


class Solver:
    """An incremental SMT solver for QF_LIA + QF_UF over a pluggable backend.

    Example
    -------
    >>> from repro.smt.terms import IntVar, IntVal, Lt
    >>> s = Solver()
    >>> x, y = IntVar("x"), IntVar("y")
    >>> s.add(Lt(x, y), Lt(y, IntVal(3)), Lt(IntVal(0), x))
    >>> s.check() is CheckResult.SAT
    True
    >>> m = s.model()
    >>> 0 < m.value_of("x") < m.value_of("y") < 3
    True
    """

    def __init__(
        self,
        max_iterations: int = 200_000,
        backend: Union[str, SolverBackend, None] = None,
    ) -> None:
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._max_iterations = max_iterations
        self._backend = create_backend(backend, max_iterations=max_iterations)
        self._dirty = True  # True until the backend has seen a check

    @property
    def backend(self) -> SolverBackend:
        """The live solver backend."""
        return self._backend

    # -- assertion management ----------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert one or more Boolean terms."""
        for term in terms:
            if not isinstance(term, Term):
                raise SolverError(f"Solver.add expects Terms, got {term!r}")
            if not term.sort.is_bool:
                raise SolverError(f"assertions must be Boolean, got sort {term.sort}")
        self._backend.add(*terms)
        self._assertions.extend(terms)
        self._dirty = True

    def add_all(self, terms: Iterable[Term]) -> None:
        self.add(*terms)

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(len(self._assertions))
        self._backend.push()

    def pop(self) -> None:
        """Discard all assertions added since the matching :meth:`push`."""
        if not self._scopes:
            raise SolverError("pop without matching push")
        size = self._scopes.pop()
        del self._assertions[size:]
        self._backend.pop()
        self._dirty = True

    @property
    def assertions(self) -> List[Term]:
        """The currently asserted formulas (a copy)."""
        return list(self._assertions)

    # -- solving -------------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (plus assumptions).

        Assumptions are temporary assertions scoped to this single call; the
        backend keeps everything it learned for the next call.
        """
        result = self._backend.check(*assumptions)
        self._dirty = False
        return result

    def model(self) -> Model:
        """The model of the last :meth:`check`, which must have returned SAT."""
        if self._dirty:
            raise SolverError("model() requires the previous check() to be SAT")
        return self._backend.model()

    def statistics(self) -> Dict[str, int]:
        """Statistics of the most recent check (empty dict if none)."""
        return self._backend.statistics()

    # -- interop ---------------------------------------------------------------------

    def to_smtlib(self, comments: Sequence[str] = ()) -> str:
        """Render the current assertion set as an SMT-LIB v2 script."""
        return to_smtlib(self._assertions, comments=comments)

    # -- convenience -------------------------------------------------------------------

    def is_valid(self, term: Term) -> bool:
        """True if ``term`` holds in every model of the current assertions."""
        result = self.check(Not(term))
        if result is CheckResult.UNKNOWN:
            raise SolverError("validity check was inconclusive")
        return result is CheckResult.UNSAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Solver({len(self._assertions)} assertions, "
            f"backend={getattr(self._backend, 'name', '?')})"
        )
