"""SMT-LIB v2 export.

The paper feeds its generated problems to Yices; this module provides the
equivalent interoperability: any assertion set built with
:mod:`repro.smt.terms` can be printed as a standard SMT-LIB v2 script so it
can be cross-checked with an external solver (z3, Yices, cvc5) when one is
available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.smt.sorts import Sort
from repro.smt.terms import Term, free_variables

__all__ = ["to_smtlib", "guess_logic"]


def guess_logic(assertions: Sequence[Term]) -> str:
    """Pick the weakest standard logic covering the assertions."""
    has_arith = False
    has_uf = False
    only_difference = True
    for assertion in assertions:
        for node in assertion.walk():
            if node.kind in ("le", "lt", "add", "mul", "neg", "intconst"):
                has_arith = True
            if node.kind == "mul":
                only_difference = False
            if node.kind == "add" and len(node.args) > 2:
                only_difference = False
            if node.kind == "app" and node.args:
                has_uf = True
            if node.kind == "var" and node.sort.is_int:
                has_arith = True
            if node.kind == "eq" and node.args[0].sort.is_uninterpreted:
                has_uf = True
    if has_uf and has_arith:
        return "QF_UFLIA"
    if has_uf:
        return "QF_UF"
    if has_arith:
        return "QF_IDL" if only_difference else "QF_LIA"
    return "QF_UF"


def _collect_declarations(
    assertions: Sequence[Term],
) -> Tuple[List[Tuple[str, Sort]], List[Sort], List[Tuple[str, Tuple[Sort, ...], Sort]]]:
    """Collect variables, uninterpreted sorts and function symbols."""
    variables: Dict[str, Sort] = {}
    sorts: Dict[str, Sort] = {}
    functions: Dict[str, Tuple[Tuple[Sort, ...], Sort]] = {}
    for assertion in assertions:
        variables.update(free_variables(assertion))
        for node in assertion.walk():
            if node.sort.is_uninterpreted:
                sorts[node.sort.name] = node.sort
            if node.kind == "app":
                functions[node.name] = (
                    tuple(a.sort for a in node.args),
                    node.sort,
                )
    var_list = sorted(variables.items())
    sort_list = [sorts[name] for name in sorted(sorts)]
    func_list = [(name, dom, cod) for name, (dom, cod) in sorted(functions.items())]
    return var_list, sort_list, func_list


def to_smtlib(
    assertions: Sequence[Term],
    logic: str | None = None,
    get_model: bool = True,
    comments: Iterable[str] = (),
) -> str:
    """Render assertions as a complete SMT-LIB v2 script."""
    assertions = list(assertions)
    lines: List[str] = []
    for comment in comments:
        lines.append(f"; {comment}")
    lines.append(f"(set-logic {logic or guess_logic(assertions)})")

    variables, sorts, functions = _collect_declarations(assertions)
    for sort in sorts:
        lines.append(f"(declare-sort {sort.name} 0)")
    for name, sort in variables:
        lines.append(f"(declare-fun {name} () {sort.name})")
    for name, domain, codomain in functions:
        domain_str = " ".join(s.name for s in domain)
        lines.append(f"(declare-fun {name} ({domain_str}) {codomain.name})")

    for assertion in assertions:
        lines.append(f"(assert {assertion})")
    lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
