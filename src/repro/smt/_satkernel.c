/* Native propagation kernel for the flat-memory SAT core.
 *
 * The Python solver (repro.smt.sat.SatSolver) keeps every hot structure in
 * flat int32 storage: the clause arena and the assignment/level/reason/phase
 * columns are Python array('i') buffers, and this kernel owns the watch
 * lists as malloc'd per-literal (ref, blocker) pair vectors.  sk_propagate
 * is a line-for-line port of the solver's pure-Python `_propagate_py` loop
 * (fresh-blocker fast path, normalisation swap, first-fit replacement
 * watch, in-place watch-list compaction) so the two paths are
 * bit-identical in every observable: assignments, trail order, watch-list
 * evolution, and conflict choice.  Keep them in lockstep — the Python loop
 * is the reference, and tests/smt/test_flat_core_differential.py asserts
 * the equivalence.
 *
 * Built on demand by repro.smt.satkernel via the system C compiler and
 * loaded with ctypes; when neither is available the solver silently runs
 * the Python loop instead.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    int32_t *d;   /* flattened (ref, blocker) pairs */
    int32_t len;  /* used ints (2 * pair count) */
    int32_t cap;  /* allocated ints */
} WL;

typedef struct {
    WL *w;
    int32_t n;
} WT;

/* Context for one propagation call.  Buffer pointers are only valid for
 * the duration of the call (Python array buffers move when they grow). */
typedef struct {
    int32_t *arena;
    int32_t *assign;  /* by var: 0 unassigned, 1 true, -1 false */
    int32_t *level;   /* by var */
    int32_t *reason;  /* by var: 0 none, cref, or -1 lazy theory */
    int32_t *phase;   /* by var: saved polarity, 0/1 */
    int32_t *queue;   /* in: pending trail suffix; out: plus enqueued lits */
    int32_t queue_len;
    int32_t qhead;
    int32_t dl;            /* current decision level */
    int32_t props;         /* out: literals dequeued */
    int32_t conflict_flit; /* out: the falsified literal at the conflict */
} PropCtx;

static void wl_push(WL *wl, int32_t ref, int32_t blocker) {
    if (wl->len + 2 > wl->cap) {
        int32_t cap = wl->cap ? wl->cap * 2 : 8;
        wl->d = (int32_t *)realloc(wl->d, (size_t)cap * sizeof(int32_t));
        wl->cap = cap;
    }
    wl->d[wl->len] = ref;
    wl->d[wl->len + 1] = blocker;
    wl->len += 2;
}

void *sk_wt_new(int32_t n) {
    WT *wt = (WT *)malloc(sizeof(WT));
    if (!wt) return NULL;
    wt->w = (WL *)calloc((size_t)(n > 0 ? n : 1), sizeof(WL));
    wt->n = n > 0 ? n : 1;
    return wt;
}

void sk_wt_free(void *wtv) {
    WT *wt = (WT *)wtv;
    if (!wt) return;
    for (int32_t i = 0; i < wt->n; i++) free(wt->w[i].d);
    free(wt->w);
    free(wt);
}

/* Grow the per-literal table to at least n lists (new lists empty). */
void sk_wt_ensure(void *wtv, int32_t n) {
    WT *wt = (WT *)wtv;
    if (n <= wt->n) return;
    wt->w = (WL *)realloc(wt->w, (size_t)n * sizeof(WL));
    memset(wt->w + wt->n, 0, (size_t)(n - wt->n) * sizeof(WL));
    wt->n = n;
}

void sk_wt_push(void *wtv, int32_t idx, int32_t ref, int32_t blocker) {
    wl_push(&((WT *)wtv)->w[idx], ref, blocker);
}

int32_t sk_wt_len(void *wtv, int32_t idx) {
    return ((WT *)wtv)->w[idx].len;
}

void sk_wt_copy(void *wtv, int32_t idx, int32_t *out) {
    WL *wl = &((WT *)wtv)->w[idx];
    memcpy(out, wl->d, (size_t)wl->len * sizeof(int32_t));
}

void sk_wt_clear(void *wtv) {
    WT *wt = (WT *)wtv;
    for (int32_t i = 0; i < wt->n; i++) wt->w[i].len = 0;
}

/* Rewrite every entry through the cref translation table built by arena
 * compaction: remap[old_cref] is the new cref or -1 for a deleted clause,
 * whose entries are dropped.  Entry order is preserved and inlined-binary
 * entries (negative refs) keep their sign. */
void sk_wt_remap(void *wtv, const int32_t *remap, int32_t remap_len) {
    WT *wt = (WT *)wtv;
    for (int32_t li = 0; li < wt->n; li++) {
        WL *wl = &wt->w[li];
        int32_t *d = wl->d;
        int32_t j = 0;
        for (int32_t i = 0; i < wl->len; i += 2) {
            int32_t entry = d[i];
            int32_t cref = entry < 0 ? -entry : entry;
            int32_t nref = cref < remap_len ? remap[cref] : -1;
            if (nref < 0) continue;
            d[j] = entry < 0 ? -nref : nref;
            d[j + 1] = d[i + 1];
            j += 2;
        }
        wl->len = j;
    }
}

/* Unit propagation to fixpoint or first conflict.
 *
 * Returns 0 (no conflict) or the conflicting watch entry: a positive cref,
 * or a negative value whose magnitude is the cref of an inlined binary
 * clause.  On conflict ctx->conflict_flit holds the falsified literal and
 * the arena already carries the conflict clause's post-normalisation
 * literal order, so the caller reconstructs the conflict clause without
 * any copying here. */
int32_t sk_propagate(void *wtv, PropCtx *c) {
    WT *wt = (WT *)wtv;
    int32_t *arena = c->arena;
    int32_t *assign = c->assign;
    int32_t *level = c->level;
    int32_t *reason = c->reason;
    int32_t *phase = c->phase;
    int32_t *q = c->queue;
    int32_t qhead = c->qhead;
    int32_t qlen = c->queue_len;
    int32_t dl = c->dl;
    int32_t props = 0;
    int32_t result = 0;

    while (qhead < qlen) {
        int32_t lit = q[qhead++];
        props++;
        int32_t flit = -lit;
        WL *wl = &wt->w[lit > 0 ? lit + lit + 1 : -lit - lit];
        int32_t *d = wl->d;
        int32_t i = 0, j = 0, n = wl->len;
        while (i < n) {
            int32_t ref = d[i];
            int32_t blocker = d[i + 1];
            i += 2;
            int32_t bv = blocker > 0 ? assign[blocker] : -assign[-blocker];
            if (ref < 0) {
                /* Inlined binary clause: the blocker IS the other literal. */
                d[j] = ref;
                d[j + 1] = blocker;
                j += 2;
                if (bv > 0) continue;
                if (bv == 0) {
                    int32_t var = blocker > 0 ? blocker : -blocker;
                    assign[var] = blocker > 0 ? 1 : -1;
                    level[var] = dl;
                    reason[var] = -ref;
                    phase[var] = blocker > 0;
                    q[qlen++] = blocker;
                    continue;
                }
                result = ref;
                break;
            }
            int32_t base = ref + 3;
            if (bv > 0 && arena[base] == blocker) {
                /* Fresh blocker: skip without reading the record. */
                d[j] = ref;
                d[j + 1] = blocker;
                j += 2;
                continue;
            }
            int32_t l0 = arena[base];
            if (l0 == flit) {
                l0 = arena[base + 1];
                arena[base] = l0;
                arena[base + 1] = flit;
            }
            int32_t fv = l0 > 0 ? assign[l0] : -assign[-l0];
            if (fv > 0) {
                d[j] = ref;
                d[j + 1] = l0;
                j += 2;
                continue;
            }
            /* Look for a replacement watch. */
            int32_t end = base + (arena[ref] >> 4);
            int32_t k = base + 2;
            while (k < end) {
                int32_t lk = arena[k];
                if ((lk > 0 ? assign[lk] : -assign[-lk]) >= 0) break;
                k++;
            }
            if (k < end) {
                int32_t lk = arena[k];
                arena[base + 1] = lk;
                arena[k] = flit;
                /* lk != flit, so this never reallocs the list under us. */
                wl_push(&wt->w[lk > 0 ? lk + lk : 1 - lk - lk], ref, l0);
                continue;
            }
            /* Clause is unit or conflicting. */
            d[j] = ref;
            d[j + 1] = l0;
            j += 2;
            if (fv == 0) {
                int32_t var = l0 > 0 ? l0 : -l0;
                assign[var] = l0 > 0 ? 1 : -1;
                level[var] = dl;
                reason[var] = ref;
                phase[var] = l0 > 0;
                q[qlen++] = l0;
                continue;
            }
            result = ref;
            break;
        }
        if (result != 0) {
            /* Conflict: keep the remaining clauses watched and stop. */
            while (i < n) {
                d[j] = d[i];
                d[j + 1] = d[i + 1];
                i += 2;
                j += 2;
            }
            wl->len = j;
            c->conflict_flit = flit;
            qhead = qlen;
            break;
        }
        wl->len = j;
    }
    c->qhead = qhead;
    c->queue_len = qlen;
    c->props = props;
    return result;
}
