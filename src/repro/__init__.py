"""repro — a full reproduction of "Symbolically Modeling Concurrent MCAPI
Executions" (Fischer, Mercer, Rungta; PPoPP 2011).

The package is organised bottom-up:

* :mod:`repro.smt` — a from-scratch SMT solving stack (CDCL SAT core,
  difference-logic / LIA / EUF theory solvers, one-shot and *incremental*
  DPLL(T), SMT-LIB export) behind a pluggable
  :class:`~repro.smt.backend.SolverBackend` registry, standing in for the
  Yices solver the paper used — or delegating to a real external solver via
  the ``smtlib`` backend.
* :mod:`repro.mcapi` — a simulator of the MCAPI connectionless-message API
  with an explicitly non-deterministic delivery network.
* :mod:`repro.program` — a small concurrent modelling language plus a
  concolic interpreter that records execution traces.
* :mod:`repro.trace` — trace events and containers.
* :mod:`repro.matching` — match-pair generation (endpoint over-approximation
  and the paper's precise depth-first abstract execution).
* :mod:`repro.encoding` — the paper's contribution: the SMT encoding
  ``P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧ PEvents``.
* :mod:`repro.verification` — the session-based verification API, the
  legacy verifier shim, witness decoding and replay, and the
  ``mcapi-verify`` CLI.
* :mod:`repro.service` — verification as a service: a JSON-RPC daemon
  (``mcapi-verify serve``) with pooled warm sessions, per-request
  deadlines backed by killable workers, and a blocking
  :class:`~repro.service.client.ServiceClient`.
* :mod:`repro.baselines` — MCC-style, Elwakil-style, exhaustive and
  DPOR-style baselines used by the experiments.
* :mod:`repro.workloads` — the paper's Figure 1 program and parameterised
  benchmark workloads.

Quickstart — encode once, query many times::

    from repro import VerificationSession
    from repro.workloads import figure1_program

    session = VerificationSession.from_program(figure1_program(assert_a_is_y=True))
    print(session.verdict().describe())     # VIOLATION + counterexample
    session.feasibility()                   # the model admits executions
    for matching in session.pairings():     # every admissible pairing,
        print(matching)                     # solved warm on one backend

Batch traffic goes through :func:`verify_many`; the legacy call-per-query
:class:`SymbolicVerifier` keeps working unchanged as a shim over sessions.
"""

__version__ = "2.0.0"

from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import VerificationSession, verify_many
from repro.verification.verifier import SymbolicVerifier
from repro.encoding.encoder import EncoderOptions, MatchPairStrategy, TraceEncoder
from repro.encoding.properties import DeadlockProperty, OrphanMessageProperty
from repro.program.interpreter import run_program
from repro.program.statictrace import static_trace
from repro.service.client import ServiceClient
from repro.smt.backend import (
    DpllTBackend,
    SmtLibPipeBackend,
    SmtLibProcessBackend,
    SolverBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.utils.errors import (
    BackendUnavailableError,
    IncompleteEnumerationError,
    ServiceError,
    UnknownBackendError,
)

__all__ = [
    "VerificationSession",
    "verify_many",
    "SymbolicVerifier",
    "Verdict",
    "VerificationResult",
    "EncoderOptions",
    "MatchPairStrategy",
    "TraceEncoder",
    "DeadlockProperty",
    "OrphanMessageProperty",
    "run_program",
    "static_trace",
    "SolverBackend",
    "DpllTBackend",
    "SmtLibProcessBackend",
    "SmtLibPipeBackend",
    "ServiceClient",
    "available_backends",
    "create_backend",
    "register_backend",
    "BackendUnavailableError",
    "IncompleteEnumerationError",
    "ServiceError",
    "UnknownBackendError",
    "__version__",
]
