"""repro — a full reproduction of "Symbolically Modeling Concurrent MCAPI
Executions" (Fischer, Mercer, Rungta; PPoPP 2011).

The package is organised bottom-up:

* :mod:`repro.smt` — a from-scratch SMT solving stack (CDCL SAT core,
  difference-logic / LIA / EUF theory solvers, DPLL(T), SMT-LIB export),
  standing in for the Yices solver the paper used.
* :mod:`repro.mcapi` — a simulator of the MCAPI connectionless-message API
  with an explicitly non-deterministic delivery network.
* :mod:`repro.program` — a small concurrent modelling language plus a
  concolic interpreter that records execution traces.
* :mod:`repro.trace` — trace events and containers.
* :mod:`repro.matching` — match-pair generation (endpoint over-approximation
  and the paper's precise depth-first abstract execution).
* :mod:`repro.encoding` — the paper's contribution: the SMT encoding
  ``P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧ PEvents``.
* :mod:`repro.verification` — the user-facing verifier, witness decoding and
  replay, and the ``mcapi-verify`` CLI.
* :mod:`repro.baselines` — MCC-style, Elwakil-style, exhaustive and
  DPOR-style baselines used by the experiments.
* :mod:`repro.workloads` — the paper's Figure 1 program and parameterised
  benchmark workloads.

Quickstart::

    from repro.workloads import figure1_program
    from repro.verification import SymbolicVerifier

    result = SymbolicVerifier().verify_program(figure1_program(assert_a_is_y=True))
    print(result.describe())
"""

from repro.verification.verifier import SymbolicVerifier, Verdict, VerificationResult
from repro.encoding.encoder import EncoderOptions, MatchPairStrategy, TraceEncoder
from repro.program.interpreter import run_program

__version__ = "1.0.0"

__all__ = [
    "SymbolicVerifier",
    "Verdict",
    "VerificationResult",
    "EncoderOptions",
    "MatchPairStrategy",
    "TraceEncoder",
    "run_program",
    "__version__",
]
