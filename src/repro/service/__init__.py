"""Verification-as-a-service: daemon, warm pools, protocol, client.

The paper's workflow is many queries against recorded traces; this package
turns the one-shot library into a long-lived service so that encoding work
and incremental-solver state are paid once and reused across requests::

    mcapi-verify serve --port 9177 --jobs 4 --cache-dir /tmp/mcapi-cache
    mcapi-verify --server 127.0.0.1:9177 --workload racy_fanin --repeat 8

Modules: :mod:`~repro.service.protocol` (newline-delimited JSON-RPC),
:mod:`~repro.service.pool` (warm session pool + killable worker
processes), :mod:`~repro.service.server` (asyncio front end),
:mod:`~repro.service.client` (blocking client).
"""

from repro.service.client import DEFAULT_PORT, ServiceClient, parse_address
from repro.service.pool import DEFAULT_POOL_SIZE, PoolKey, SessionPool, WorkerPool
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    payload_to_result,
    result_to_payload,
)
from repro.service.server import VerificationService, run_server, run_stdio, serve

__all__ = [
    "ServiceClient",
    "parse_address",
    "DEFAULT_PORT",
    "DEFAULT_POOL_SIZE",
    "PoolKey",
    "SessionPool",
    "WorkerPool",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "result_to_payload",
    "payload_to_result",
    "VerificationService",
    "serve",
    "run_server",
    "run_stdio",
]
