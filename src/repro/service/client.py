"""Synchronous client for the verification daemon.

:class:`ServiceClient` speaks the newline-delimited JSON-RPC protocol over
one TCP connection and hands back the same
:class:`~repro.verification.result.VerificationResult` objects the local
API produces (minus encodings/traces, which never leave the server)::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:9177") as client:
        result = client.verify("racy_fanin", params={"senders": 3})
        print(result.verdict, client.stats()["pool"]["hits"])

The CLI's ``--server ADDR`` flag is a thin wrapper over this class.

**Resilience.**  Verification queries are pure and idempotent, so the
client retries them: a transport failure (connection lost, garbled or
truncated response frame, a server ``PARSE_ERROR`` for a request mangled
on the wire) triggers reconnect + resend under capped exponential backoff
with jitter, up to ``retries`` times.  Only the idempotent methods are in
the budget (:data:`RETRYABLE_METHODS`); ``shutdown`` is never retried.
Server-side *semantic* errors (unknown workload, invalid params, internal
errors) are never retried either — they would fail identically again.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.service import protocol
from repro.utils.errors import ServiceError, ServiceProtocolError
from repro.verification.result import VerificationResult

__all__ = ["ServiceClient", "parse_address", "DEFAULT_PORT", "RETRYABLE_METHODS"]

#: Default TCP port of ``mcapi-verify serve``.
DEFAULT_PORT = 9177

#: Methods safe to resend after a transport failure.  Verification is
#: pure, so a repeated verify can at worst warm a pool entry twice;
#: ``shutdown`` must never fire twice and stays out.
RETRYABLE_METHODS = ("verify", "verify_batch")


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``host:port`` / ``:port`` / ``host`` / ``port`` into a pair."""
    address = address.strip()
    if not address:
        raise ServiceError("empty server address")
    if ":" in address:
        host, _, port_text = address.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(f"bad port in server address {address!r}")
        return host, port
    if address.isdigit():
        return "127.0.0.1", int(address)
    return address, DEFAULT_PORT


def _retryable(exc: Exception) -> Exception:
    """Tag ``exc`` as safe to retry (transport-level, not semantic)."""
    exc.retryable = True  # type: ignore[attr-defined]
    return exc


class ServiceClient:
    """One blocking connection to a running verification daemon.

    ``retries`` bounds how many times an idempotent call is *resent* after
    a transport failure (so a call makes at most ``retries + 1`` attempts);
    each retry reconnects and sleeps ``backoff_s * 2**attempt`` seconds
    (capped at ``backoff_cap_s``, with up to 50% random jitter shaved off
    to decorrelate a thundering herd of recovering clients).
    """

    def __init__(
        self,
        address: str = f"127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 300.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ) -> None:
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.reconnects = 0
        self.retried_calls = 0
        self._rng = random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._connect()

    # -- plumbing ----------------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            error = ServiceError(
                f"cannot reach verification service at {self.address}: {exc}; "
                "is `mcapi-verify serve` running?"
            )
            # The CLI maps connection establishment to EX_UNAVAILABLE; a
            # reconnect attempt mid-retry-budget may find a restarting
            # daemon, so the failure is also retryable.
            error.unavailable = True  # type: ignore[attr-defined]
            raise _retryable(error) from exc
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _backoff(self, attempt: int) -> None:
        delay = min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_cap_s)
        time.sleep(delay * (1.0 - 0.5 * self._rng.random()))

    def _call(self, method: str, params: Optional[Dict[str, object]] = None) -> object:
        budget = self.retries if method in RETRYABLE_METHODS else 0
        for attempt in range(budget + 1):
            if attempt:
                self.retried_calls += 1
                self._backoff(attempt)
                self._drop_connection()
            try:
                if self._file is None:
                    self._connect()
                    self.reconnects += 1
                return self._call_once(method, params)
            except (ServiceError, ServiceProtocolError) as exc:
                if attempt >= budget or not getattr(exc, "retryable", False):
                    raise
        raise ServiceError("unreachable")  # pragma: no cover

    def _call_once(
        self, method: str, params: Optional[Dict[str, object]]
    ) -> object:
        self._next_id += 1
        request_id = self._next_id
        frame = protocol.encode_frame(
            protocol.make_request(method, params, request_id)
        )
        try:
            self._file.write(frame)
            self._file.flush()
            line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        except OSError as exc:
            raise _retryable(
                ServiceError(
                    f"lost connection to verification service at "
                    f"{self.address}: {exc}"
                )
            ) from exc
        if not line:
            raise _retryable(
                ServiceError(
                    f"verification service at {self.address} closed the connection"
                )
            )
        if len(line) > protocol.MAX_FRAME_BYTES:
            raise _retryable(
                ServiceProtocolError(
                    f"response frame exceeds the {protocol.MAX_FRAME_BYTES}-byte "
                    "limit"
                )
            )
        if not line.endswith(b"\n"):
            # readline returned without a terminator: the peer died
            # mid-frame.  Surface it, never hand the fragment to json.
            raise _retryable(
                ServiceProtocolError(
                    f"connection to {self.address} dropped mid-frame "
                    f"({len(line)} bytes, no terminator)"
                )
            )
        try:
            response = protocol.decode_frame(line)
        except ServiceProtocolError as exc:
            raise _retryable(exc)  # garbled on the wire; a fresh send may land
        error = response.get("error")
        if error is not None:
            code = error.get("code") if isinstance(error, dict) else None
            message = (
                error.get("message") if isinstance(error, dict) else str(error)
            )
            exc = ServiceError(f"service error {code}: {message}")
            if code in (protocol.PARSE_ERROR, protocol.WORKER_CRASH):
                # PARSE_ERROR: the *request* arrived garbled — wire
                # corruption, not a semantic rejection.  WORKER_CRASH: the
                # server-side worker died (already respawned).  Both are
                # safe and useful to resend.
                _retryable(exc)
            raise exc
        if response.get("id") != request_id:
            raise _retryable(
                ServiceProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            )
        return response.get("result")

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API --------------------------------------------------------------

    @staticmethod
    def _spec(
        workload: str,
        params: Optional[Dict[str, object]],
        seed: int,
        mode: str,
        backend: Optional[str],
        theory_mode: Optional[str],
        timeout_s: Optional[float],
        **extra,
    ) -> Dict[str, object]:
        spec: Dict[str, object] = {"workload": workload, "seed": seed, "mode": mode}
        if params:
            spec["params"] = params
        if backend is not None:
            spec["backend"] = backend
        if theory_mode is not None:
            spec["theory_mode"] = theory_mode
        if timeout_s is not None:
            spec["timeout_s"] = timeout_s
        spec.update({key: value for key, value in extra.items() if value is not None})
        return spec

    def verify(
        self,
        workload: str,
        params: Optional[Dict[str, object]] = None,
        seed: int = 0,
        mode: str = "safety",
        backend: Optional[str] = None,
        theory_mode: Optional[str] = None,
        timeout_s: Optional[float] = None,
        **extra,
    ) -> VerificationResult:
        """Verify one workload spec on the daemon's warm pool."""
        payload = self._call(
            "verify",
            self._spec(
                workload, params, seed, mode, backend, theory_mode, timeout_s, **extra
            ),
        )
        return protocol.payload_to_result(payload["result"])

    def verify_batch(
        self, queries: List[Dict[str, object]], **shared
    ) -> List[VerificationResult]:
        """Verify many specs in one round trip; results in input order.

        ``shared`` keys (``mode``, ``backend``, ``timeout_s``, ...) apply to
        every query that does not override them itself.
        """
        payload = self._call("verify_batch", dict(shared, queries=queries))
        return [
            protocol.payload_to_result(item["result"])
            for item in payload["results"]
        ]

    def enumerate(
        self,
        workload: str,
        params: Optional[Dict[str, object]] = None,
        seed: int = 0,
        limit: Optional[int] = None,
        backend: Optional[str] = None,
        theory_mode: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Dict[int, int]]:
        """All admissible send/receive matchings of the workload's trace."""
        payload = self._call(
            "enumerate",
            self._spec(
                workload,
                params,
                seed,
                "safety",
                backend,
                theory_mode,
                timeout_s,
                limit=limit,
            ),
        )
        return [
            {int(recv): int(send) for recv, send in matching}
            for matching in payload["matchings"]
        ]

    def stats(self) -> Dict[str, object]:
        """Daemon statistics: pool hits/ages, cache counters, timeouts."""
        return self._call("stats")

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop accepting requests and exit."""
        return self._call("shutdown")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClient({self.address!r})"
