"""Synchronous client for the verification daemon.

:class:`ServiceClient` speaks the newline-delimited JSON-RPC protocol over
one TCP connection and hands back the same
:class:`~repro.verification.result.VerificationResult` objects the local
API produces (minus encodings/traces, which never leave the server)::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:9177") as client:
        result = client.verify("racy_fanin", params={"senders": 3})
        print(result.verdict, client.stats()["pool"]["hits"])

The CLI's ``--server ADDR`` flag is a thin wrapper over this class.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Tuple

from repro.service import protocol
from repro.utils.errors import ServiceError, ServiceProtocolError
from repro.verification.result import VerificationResult

__all__ = ["ServiceClient", "parse_address", "DEFAULT_PORT"]

#: Default TCP port of ``mcapi-verify serve``.
DEFAULT_PORT = 9177


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``host:port`` / ``:port`` / ``host`` / ``port`` into a pair."""
    address = address.strip()
    if not address:
        raise ServiceError("empty server address")
    if ":" in address:
        host, _, port_text = address.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(f"bad port in server address {address!r}")
        return host, port
    if address.isdigit():
        return "127.0.0.1", int(address)
    return address, DEFAULT_PORT


class ServiceClient:
    """One blocking connection to a running verification daemon."""

    def __init__(
        self, address: str = f"127.0.0.1:{DEFAULT_PORT}", timeout: float = 300.0
    ) -> None:
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach verification service at {self.address}: {exc}; "
                "is `mcapi-verify serve` running?"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------------

    def _call(self, method: str, params: Optional[Dict[str, object]] = None) -> object:
        self._next_id += 1
        request_id = self._next_id
        frame = protocol.encode_frame(
            protocol.make_request(method, params, request_id)
        )
        try:
            self._file.write(frame)
            self._file.flush()
            line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        except OSError as exc:
            raise ServiceError(
                f"lost connection to verification service at {self.address}: {exc}"
            ) from exc
        if not line:
            raise ServiceError(
                f"verification service at {self.address} closed the connection"
            )
        response = protocol.decode_frame(line)
        error = response.get("error")
        if error is not None:
            code = error.get("code") if isinstance(error, dict) else None
            message = (
                error.get("message") if isinstance(error, dict) else str(error)
            )
            raise ServiceError(f"service error {code}: {message}")
        if response.get("id") != request_id:
            raise ServiceProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        return response.get("result")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API --------------------------------------------------------------

    @staticmethod
    def _spec(
        workload: str,
        params: Optional[Dict[str, object]],
        seed: int,
        mode: str,
        backend: Optional[str],
        theory_mode: Optional[str],
        timeout_s: Optional[float],
        **extra,
    ) -> Dict[str, object]:
        spec: Dict[str, object] = {"workload": workload, "seed": seed, "mode": mode}
        if params:
            spec["params"] = params
        if backend is not None:
            spec["backend"] = backend
        if theory_mode is not None:
            spec["theory_mode"] = theory_mode
        if timeout_s is not None:
            spec["timeout_s"] = timeout_s
        spec.update({key: value for key, value in extra.items() if value is not None})
        return spec

    def verify(
        self,
        workload: str,
        params: Optional[Dict[str, object]] = None,
        seed: int = 0,
        mode: str = "safety",
        backend: Optional[str] = None,
        theory_mode: Optional[str] = None,
        timeout_s: Optional[float] = None,
        **extra,
    ) -> VerificationResult:
        """Verify one workload spec on the daemon's warm pool."""
        payload = self._call(
            "verify",
            self._spec(
                workload, params, seed, mode, backend, theory_mode, timeout_s, **extra
            ),
        )
        return protocol.payload_to_result(payload["result"])

    def verify_batch(
        self, queries: List[Dict[str, object]], **shared
    ) -> List[VerificationResult]:
        """Verify many specs in one round trip; results in input order.

        ``shared`` keys (``mode``, ``backend``, ``timeout_s``, ...) apply to
        every query that does not override them itself.
        """
        payload = self._call("verify_batch", dict(shared, queries=queries))
        return [
            protocol.payload_to_result(item["result"])
            for item in payload["results"]
        ]

    def enumerate(
        self,
        workload: str,
        params: Optional[Dict[str, object]] = None,
        seed: int = 0,
        limit: Optional[int] = None,
        backend: Optional[str] = None,
        theory_mode: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Dict[int, int]]:
        """All admissible send/receive matchings of the workload's trace."""
        payload = self._call(
            "enumerate",
            self._spec(
                workload,
                params,
                seed,
                "safety",
                backend,
                theory_mode,
                timeout_s,
                limit=limit,
            ),
        )
        return [
            {int(recv): int(send) for recv, send in matching}
            for matching in payload["matchings"]
        ]

    def stats(self) -> Dict[str, object]:
        """Daemon statistics: pool hits/ages, cache counters, timeouts."""
        return self._call("stats")

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop accepting requests and exit."""
        return self._call("shutdown")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClient({self.address!r})"
