"""Warm verification state for the service: session pool + worker pool.

Two layers:

* :class:`SessionPool` — an LRU of live
  :class:`~repro.verification.session.VerificationSession` objects keyed by
  trace fingerprint × encoder options × backend × theory mode
  (:class:`PoolKey`).  A pool hit skips encoding entirely and lands on an
  incremental backend that has already learned the instance; per-entry hit
  counts and ages are exposed for the service's ``stats`` method, and
  entries can be invalidated explicitly by fingerprint.
* :class:`WorkerPool` — long-lived ``multiprocessing`` workers, each owning
  its *own* ``SessionPool``.  Requests are routed by pool-key affinity
  (same key → same worker → warm hit); a request that blows through its
  deadline gets its worker killed and respawned, which is the only reliable
  cancellation for CPU-bound solving — the in-solver soft deadline
  (:meth:`VerificationSession.verdict` ``timeout_s``) usually answers
  first, the kill is the backstop for backends that cannot be interrupted.
  ``jobs=0`` runs everything inline (one shared pool, one lock), the mode
  the stdio/test path uses.

Requests are *workload specs*, not traces: ``{"workload": "racy_fanin",
"params": {"senders": 3}, "seed": 1}`` names a program from the CLI's
workload registry, which the server records and fingerprints itself.
Recorded traces do not round-trip through JSON (payload terms are
stringified on export), and shipping them would defeat the warm-state
design anyway.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.encoding.encoder import EncoderOptions, MatchPairStrategy
from repro.program.ast import Program
from repro.program.interpreter import run_program
from repro.program.statictrace import static_trace
from repro.service.protocol import result_to_payload
from repro.trace.fingerprint import trace_fingerprint
from repro.utils.errors import (
    BackendUnavailableError,
    ReproError,
    ServiceError,
    SolverError,
)
from repro.verification.cache import ResultCache, make_cache_key
from repro.verification.result import Verdict, VerificationResult
from repro.verification.session import (
    VERIFICATION_MODES,
    VerificationSession,
    resolve_mode,
)

__all__ = ["PoolKey", "SessionPool", "WorkerPool", "build_program", "DEFAULT_POOL_SIZE"]

#: Warm sessions kept per pool before least-recently-used eviction.
DEFAULT_POOL_SIZE = 32

#: How much past a request's deadline the worker gets before it is killed.
#: The in-solver soft deadline answers within milliseconds of the budget;
#: the hard kill only fires for backends that cannot poll a clock.  The
#: factor keeps the total response under 2x the requested deadline.
HARD_KILL_FACTOR = 1.5

#: A spec whose requests killed this many workers is *poison*: further
#: submissions answer ``UNKNOWN(reason="worker_crash")`` immediately
#: instead of burning a fresh worker per attempt.  Queries are pure, so a
#: spec that keeps crashing is deterministic about it.
POISON_CRASH_LIMIT = 3

#: External backends that degrade to the in-tree engine when their solver
#: binary is lost mid-flight (see :meth:`_Executor._verify`).
_DEGRADABLE_BACKENDS = ("smtlib", "smtlib-pipe")


class _WorkerDied(ServiceError):
    """Internal: the worker process died mid-request (already respawned)."""


@dataclass(frozen=True)
class PoolKey:
    """Everything that determines which warm session can answer a request."""

    fingerprint: str
    options: str
    backend: str
    theory_mode: str

    def digest(self) -> str:
        joined = "\x1f".join(
            (self.fingerprint, self.options, self.backend, self.theory_mode)
        )
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def build_program(workload: str, params: Optional[Dict[str, object]]) -> Program:
    """Resolve a wire-level workload spec against the CLI registry."""
    from repro.verification.cli import WORKLOADS, build_parser

    if workload not in WORKLOADS:
        raise ServiceError(
            f"unknown workload {workload!r}; available: "
            + ", ".join(sorted(WORKLOADS))
        )
    args = build_parser().parse_args([])
    for name, value in (params or {}).items():
        if not hasattr(args, name):
            raise ServiceError(f"unknown workload parameter {name!r}")
        setattr(args, name, value)
    return WORKLOADS[workload].build(args)


def _request_options(spec: Dict[str, object]) -> EncoderOptions:
    return EncoderOptions(
        match_strategy=(
            MatchPairStrategy.PRECISE
            if spec.get("match_pairs") == "precise"
            else MatchPairStrategy.ENDPOINT
        ),
        enforce_pair_fifo=bool(spec.get("pair_fifo", False)),
    )


def _options_signature(options: EncoderOptions) -> str:
    return f"{options.match_strategy.value};fifo={options.enforce_pair_fifo}"


@dataclass
class _PoolEntry:
    session: VerificationSession
    key: PoolKey
    hits: int = 0
    created: float = field(default_factory=time.monotonic)
    last_used: float = field(default_factory=time.monotonic)


class SessionPool:
    """LRU of warm sessions, keyed by :class:`PoolKey`."""

    def __init__(self, capacity: int = DEFAULT_POOL_SIZE) -> None:
        if capacity < 1:
            raise ServiceError(f"session pool needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PoolKey, _PoolEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: PoolKey) -> Optional[_PoolEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        entry.last_used = time.monotonic()
        self.hits += 1
        return entry

    def put(self, key: PoolKey, session: VerificationSession) -> _PoolEntry:
        entry = _PoolEntry(session=session, key=key)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def discard(self, key: PoolKey) -> bool:
        """Drop one warm session (a broken backend must not stay pooled)."""
        return self._entries.pop(key, None) is not None

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop warm sessions (all, or those of one trace fingerprint)."""
        if fingerprint is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        victims = [key for key in self._entries if key.fingerprint == fingerprint]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def statistics(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [
                {
                    "fingerprint": entry.key.fingerprint[:16],
                    "backend": entry.key.backend,
                    "theory_mode": entry.key.theory_mode,
                    "hits": entry.hits,
                    "age_s": round(now - entry.created, 3),
                    "idle_s": round(now - entry.last_used, 3),
                }
                for entry in self._entries.values()
            ],
        }


# ---------------------------------------------------------------------------
# Request execution (runs inside a worker process, or inline)
# ---------------------------------------------------------------------------


class _Executor:
    """Resolve and solve one request spec against a session pool + cache."""

    def __init__(
        self, pool: SessionPool, cache: Optional[ResultCache] = None
    ) -> None:
        self.pool = pool
        self.cache = cache
        #: Structured degradation events (backend fallbacks, kernel
        #: faults), surfaced through the ``stats`` op and the stats RPC.
        self.degradations: List[Dict[str, object]] = []

    def _resolve_session(
        self, spec: Dict[str, object]
    ) -> Tuple[VerificationSession, bool, PoolKey]:
        workload = spec.get("workload")
        if not isinstance(workload, str):
            raise ServiceError("request needs a workload name")
        program = build_program(workload, spec.get("params"))
        seed = int(spec.get("seed", 0))
        run = run_program(program, seed=seed)
        if run.deadlocked:
            trace, run = static_trace(program), None
        else:
            trace = run.trace
        options = _request_options(spec)
        backend = spec.get("backend") or "dpllt"
        theory_mode = spec.get("theory_mode")
        key = PoolKey(
            fingerprint=trace_fingerprint(trace),
            options=_options_signature(options),
            backend=str(backend),
            theory_mode=str(theory_mode or "default"),
        )
        entry = self.pool.get(key)
        if entry is not None:
            return entry.session, True, key
        session = VerificationSession(
            trace,
            options=options,
            backend=backend,
            theory_mode=theory_mode,
            max_solver_iterations=int(spec.get("max_iterations", 200_000)),
            program_run=run,
        )
        self.pool.put(key, session)
        return session, False, key

    def execute(self, request: Dict[str, object]) -> Dict[str, object]:
        """Run one worker op; always returns a JSON-safe response dict."""
        try:
            op = request.get("op", "verify")
            if op == "stats":
                stats: Dict[str, object] = {"pool": self.pool.statistics()}
                if self.cache is not None:
                    stats["cache"] = self.cache.statistics()
                stats["degradations"] = list(self.degradations)
                return {"ok": True, "stats": stats}
            if op == "invalidate":
                dropped = self.pool.invalidate(request.get("fingerprint"))
                return {"ok": True, "dropped": dropped}
            if op == "enumerate":
                return self._enumerate(request)
            if op == "verify":
                return self._verify(request)
            raise ServiceError(f"unknown worker op {op!r}")
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        except Exception as exc:  # never let a request take the worker down
            return {"ok": False, "error": repr(exc), "kind": type(exc).__name__}

    def _verify(self, request: Dict[str, object]) -> Dict[str, object]:
        mode = request.get("mode", "safety")
        if mode not in VERIFICATION_MODES:
            raise ServiceError(
                f"unknown verification mode {mode!r}; pick one of {VERIFICATION_MODES}"
            )
        timeout_s = request.get("timeout_s")
        timeout_s = None if timeout_s is None else float(timeout_s)
        events_before = len(self.degradations)
        failures_before = self.cache.store_failures if self.cache is not None else 0
        session, pool_hit, key = self._resolve_session(request)
        cache_key = None
        if self.cache is not None:
            # The shared cache answers across processes and daemon restarts;
            # the mode joins the key exactly as in the batch lane.
            resolved_options, properties = resolve_mode(
                mode, session._encoder.options, None
            )
            cache_key = make_cache_key(
                session.trace,
                properties=properties,
                options=resolved_options,
                backend=key.backend,
                mode=mode,
            )
            cached = self.cache.lookup(cache_key, session.trace)
            if cached is not None:
                return {
                    "ok": True,
                    "result": result_to_payload(cached),
                    "pool_hit": pool_hit,
                    "fingerprint": key.fingerprint,
                }
        try:
            result = session.verdict(mode=mode, timeout_s=timeout_s)
        except (BackendUnavailableError, SolverError) as exc:
            result = self._degraded_verdict(request, key, exc, mode, timeout_s)
        if result.solver_statistics and result.solver_statistics.get("kernel_faults"):
            self._record_degradation(
                layer="kernel",
                from_="native-kernel",
                to="pure-python",
                reason="runtime kernel fault during propagation",
                request=request,
            )
        if self.cache is not None and cache_key is not None:
            self.cache.store(cache_key, result)
        response = {
            "ok": True,
            "result": result_to_payload(result),
            "pool_hit": pool_hit,
            "fingerprint": key.fingerprint,
        }
        if len(self.degradations) > events_before:
            # Ship this request's events with the answer: the pool keeps a
            # durable parent-side ledger, so a worker that later crashes
            # does not take its degradation history down with it.
            response["degradations"] = self.degradations[events_before:]
        if self.cache is not None and self.cache.store_failures > failures_before:
            response["store_failures"] = self.cache.store_failures - failures_before
        return response

    def _record_degradation(
        self, layer: str, from_: str, to: str, reason: str, request: Dict[str, object]
    ) -> None:
        self.degradations.append(
            {
                "layer": layer,
                "from": from_,
                "to": to,
                "reason": str(reason)[:200],
                "workload": request.get("workload"),
            }
        )

    def _degraded_verdict(
        self,
        request: Dict[str, object],
        key: PoolKey,
        exc: Exception,
        mode: str,
        timeout_s: Optional[float],
    ):
        """Backend ladder: an external solver lost mid-flight falls back to
        the in-tree ``dpllt`` engine instead of failing the request.

        Verification queries are pure, so re-solving on a different
        backend yields the same verdict; the fallback is recorded as a
        structured degradation event and stamped on the result's solver
        statistics.
        """
        if key.backend not in _DEGRADABLE_BACKENDS:
            raise exc
        self.pool.discard(key)  # the broken session must not stay warm
        self._record_degradation(
            layer="backend",
            from_=key.backend,
            to="dpllt",
            reason=str(exc),
            request=request,
        )
        session, _, _ = self._resolve_session(dict(request, backend="dpllt"))
        result = session.verdict(mode=mode, timeout_s=timeout_s)
        result.solver_statistics = dict(
            result.solver_statistics or {}, degraded_from=key.backend
        )
        return result

    def _enumerate(self, request: Dict[str, object]) -> Dict[str, object]:
        limit = request.get("limit")
        limit = None if limit is None else int(limit)
        session, pool_hit, key = self._resolve_session(request)
        matchings = session.enumerate_pairings(limit=limit)
        return {
            "ok": True,
            "matchings": [
                sorted(matching.items()) for matching in matchings
            ],
            "pool_hit": pool_hit,
            "fingerprint": key.fingerprint,
        }


def _timeout_response(timeout_s: float) -> Dict[str, object]:
    """The canonical answer for a request whose worker had to be killed."""
    result = VerificationResult(verdict=Verdict.UNKNOWN, unknown_reason="timeout")
    result.solve_seconds = timeout_s
    return {"ok": True, "result": result_to_payload(result), "pool_hit": False}


def _worker_main(conn, pool_size: int, cache_dir: Optional[str]) -> None:
    """Worker process entry: serve requests off one pipe until EOF."""
    cache = ResultCache(directory=cache_dir) if cache_dir else None
    executor = _Executor(SessionPool(capacity=pool_size), cache=cache)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:  # explicit shutdown
            return
        request_id, request = message
        if faults.ACTIVE is not None:
            rule = faults.draw(
                "pool.worker.request", tag=str(request.get("workload"))
            )
            if rule is not None:
                if rule.kind in ("crash", "exit"):
                    os._exit(faults.EXIT_CODE)  # hard death mid-request
                time.sleep(rule.sleep_s)  # hang/slow: the hard kill decides
        response = executor.execute(request)
        if faults.ACTIVE is not None:
            rule = faults.draw(
                "pool.worker.reply", tag=str(request.get("workload"))
            )
            if rule is not None and rule.kind in ("crash", "exit"):
                os._exit(faults.EXIT_CODE)  # death after solving, before reply
        try:
            conn.send((request_id, response))
        except (BrokenPipeError, OSError):
            return


class _PooledWorker:
    """One long-lived worker process plus the pipe and lock guarding it."""

    def __init__(self, context, pool_size: int, cache_dir: Optional[str]) -> None:
        self._context = context
        self._pool_size = pool_size
        self._cache_dir = cache_dir
        self.lock = threading.Lock()
        self.kills = 0
        self.crashes = 0
        #: Bumped on every respawn.  Respawns happen only under
        #: :attr:`lock`, and :meth:`_respawn` is generation-guarded, so a
        #: worker death observed by one caller can never be "fixed" twice
        #: or surface as a spurious death to the next caller.
        self.generation = 0
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._context.Pipe()
        self.conn = parent
        self.process = self._context.Process(
            target=_worker_main,
            args=(child, self._pool_size, self._cache_dir),
            daemon=True,
        )
        self.process.start()
        child.close()

    def _respawn(self, observed_generation: Optional[int] = None) -> None:
        """Replace the worker process.  Caller must hold :attr:`lock`.

        ``observed_generation`` makes the call idempotent: a caller that
        saw generation N die triggers at most one respawn for it — if the
        worker was already replaced (generation moved on), the fresh
        process is left alone.
        """
        if (
            observed_generation is not None
            and observed_generation != self.generation
        ):
            return
        self.close(graceful=False)
        self._spawn()
        self.generation += 1

    def solve(
        self, request: Dict[str, object], timeout_s: Optional[float]
    ) -> Dict[str, object]:
        """Send one request; on a blown deadline kill + respawn the worker.

        Caller must hold :attr:`lock`.  ``timeout_s`` is the *request's*
        deadline; the hard kill budget is ``HARD_KILL_FACTOR`` times that,
        giving the in-solver soft deadline every chance to answer first.
        Raises :class:`_WorkerDied` if the worker process died mid-request
        (the worker is respawned before the exception leaves, so the pool
        never routes to a dead process).
        """
        request_id = id(request)
        generation = self.generation
        try:
            self.conn.send((request_id, dict(request, timeout_s=timeout_s)))
        except (BrokenPipeError, OSError):
            self.crashes += 1
            self._respawn(generation)
            raise _WorkerDied(
                "verification worker died; it has been restarted"
            )
        budget = None if timeout_s is None else max(timeout_s * HARD_KILL_FACTOR, 0.05)
        deadline = None if budget is None else time.monotonic() + budget
        while True:
            wait = 60.0 if deadline is None else max(deadline - time.monotonic(), 0.0)
            try:
                if self.conn.poll(wait):
                    received_id, response = self.conn.recv()
                    if received_id != request_id:  # stale answer from a past kill
                        continue
                    return response
            except (EOFError, OSError):
                self.crashes += 1
                self._respawn(generation)
                raise _WorkerDied(
                    "verification worker died mid-request; it has been restarted"
                )
            if deadline is not None and time.monotonic() >= deadline:
                # The solver cannot be interrupted: cancel for real by
                # killing the process.  Its warm sessions die with it.
                self.kills += 1
                self._respawn(generation)
                return _timeout_response(timeout_s)

    def close(self, graceful: bool = True) -> None:
        try:
            if graceful:
                try:
                    self.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=2.0)


class WorkerPool:
    """Fixed set of warm workers with pool-key affinity routing.

    ``jobs >= 1`` spawns that many processes eagerly (so they inherit the
    parent's backend registry via fork).  ``jobs = 0`` solves inline in the
    calling thread against one shared :class:`SessionPool` — no process
    boundary, one lock, deterministic for tests.
    """

    def __init__(
        self,
        jobs: int = 0,
        pool_size: int = DEFAULT_POOL_SIZE,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs < 0:
            raise ServiceError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        self.pool_size = pool_size
        self.cache_dir = cache_dir
        self.timeouts = 0
        self.worker_crashes = 0
        self.redispatches = 0
        self.poisoned = 0
        #: Durable ledgers fed by deltas shipped back on responses; they
        #: survive the worker processes that produced them.
        self.degradation_events: List[Dict[str, object]] = []
        self.cache_store_failures = 0
        self._crash_counts: Dict[str, int] = {}
        self._crash_lock = threading.Lock()
        self._closed = False
        if jobs == 0:
            cache = ResultCache(directory=cache_dir) if cache_dir else None
            self._inline = _Executor(SessionPool(capacity=pool_size), cache=cache)
            self._inline_lock = threading.Lock()
            self._workers: List[_PooledWorker] = []
        else:
            self._inline = None
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._workers = [
                _PooledWorker(context, pool_size, cache_dir) for _ in range(jobs)
            ]

    @staticmethod
    def _spec_key(request: Dict[str, object]) -> str:
        """Stable digest of everything that identifies one workload spec."""
        spec = (
            str(request.get("workload")),
            str(sorted((request.get("params") or {}).items())),
            str(request.get("seed", 0)),
            str(request.get("backend") or "dpllt"),
            str(request.get("theory_mode") or "default"),
            str(request.get("match_pairs") or "endpoint"),
            str(bool(request.get("pair_fifo", False))),
        )
        return hashlib.sha256("\x1f".join(spec).encode("utf-8")).hexdigest()

    def _route(self, request: Dict[str, object]) -> _PooledWorker:
        """Affinity routing: same workload spec → same worker → warm pool."""
        digest = self._spec_key(request)
        return self._workers[int(digest, 16) % len(self._workers)]

    @staticmethod
    def _crash_response() -> Dict[str, object]:
        """The honest answer for a poison query: UNKNOWN, never a retry loop."""
        result = VerificationResult(
            verdict=Verdict.UNKNOWN, unknown_reason="worker_crash"
        )
        return {"ok": True, "result": result_to_payload(result), "pool_hit": False}

    def _dispatch(
        self,
        worker: _PooledWorker,
        request: Dict[str, object],
        timeout_s: Optional[float],
    ) -> Dict[str, object]:
        """Solve on ``worker``, re-dispatching once if it dies mid-request.

        Queries are pure and idempotent, so one re-dispatch to the
        respawned worker is safe.  A spec that has crashed
        ``POISON_CRASH_LIMIT`` workers is *poison*: it answers
        ``UNKNOWN(reason="worker_crash")`` immediately (verify only —
        stats/invalidate ops never reach this path's poison ledger).
        """
        is_verify = request.get("op", "verify") == "verify"
        spec_key = self._spec_key(request) if is_verify else None
        if spec_key is not None:
            with self._crash_lock:
                crashed = self._crash_counts.get(spec_key, 0)
            if crashed >= POISON_CRASH_LIMIT:
                return self._crash_response()
        with worker.lock:
            for attempt in (0, 1):
                try:
                    return worker.solve(request, timeout_s)
                except _WorkerDied as exc:
                    self.worker_crashes += 1
                    if spec_key is not None:
                        with self._crash_lock:
                            crashed = self._crash_counts.get(spec_key, 0) + 1
                            self._crash_counts[spec_key] = crashed
                        if crashed >= POISON_CRASH_LIMIT:
                            self.poisoned += 1
                            return self._crash_response()
                    if attempt == 1:
                        raise  # the _WorkerDied maps to WORKER_CRASH on the wire
                    self.redispatches += 1
        raise ServiceError("unreachable")  # pragma: no cover

    def submit(
        self, request: Dict[str, object], timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Solve one request (blocking); safe to call from several threads."""
        if self._closed:
            raise ServiceError("worker pool is closed")
        if self._inline is not None:
            with self._inline_lock:
                response = self._inline.execute(
                    dict(request, timeout_s=timeout_s)
                    if timeout_s is not None
                    else request
                )
        else:
            worker = self._route(request)
            response = self._dispatch(worker, request, timeout_s)
        events = response.pop("degradations", None)
        if events:
            self.degradation_events.extend(events)
        self.cache_store_failures += response.pop("store_failures", 0)
        if (
            response.get("ok")
            and (response.get("result") or {}).get("unknown_reason") == "timeout"
        ):
            self.timeouts += 1
        return response

    def broadcast(self, request: Dict[str, object]) -> List[Dict[str, object]]:
        """Run one op (stats/invalidate) on every worker; returns all answers."""
        if self._closed:
            raise ServiceError("worker pool is closed")
        if self._inline is not None:
            with self._inline_lock:
                return [self._inline.execute(request)]
        responses = []
        for worker in self._workers:
            with worker.lock:
                responses.append(worker.solve(request, None))
        return responses

    def statistics(self) -> Dict[str, object]:
        """Aggregate pool + cache statistics across all workers."""
        per_worker = self.broadcast({"op": "stats"})
        pools = [r["stats"]["pool"] for r in per_worker if r.get("ok")]
        aggregate: Dict[str, object] = {
            "jobs": self.jobs,
            "timeouts": self.timeouts,
            "worker_kills": sum(w.kills for w in self._workers),
            "worker_crashes": self.worker_crashes,
            "redispatches": self.redispatches,
            "poisoned": self.poisoned,
            "degradations": list(self.degradation_events),
            "pool": {
                "hits": sum(p["hits"] for p in pools),
                "misses": sum(p["misses"] for p in pools),
                "evictions": sum(p["evictions"] for p in pools),
                "entries": [entry for p in pools for entry in p["entries"]],
            },
        }
        if faults.ACTIVE is not None:
            aggregate["faults"] = faults.ACTIVE.counters()
        caches = [
            r["stats"]["cache"]
            for r in per_worker
            if r.get("ok") and "cache" in r["stats"]
        ]
        if caches:
            aggregate["cache"] = {
                key: sum(c[key] for c in caches) for key in caches[0]
            }
            # The per-worker counter dies with a crashed worker; the
            # parent ledger has seen every failure a response reported.
            aggregate["cache"]["store_failures"] = max(
                aggregate["cache"]["store_failures"], self.cache_store_failures
            )
        return aggregate

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop warm sessions in every worker; returns how many were dropped."""
        responses = self.broadcast({"op": "invalidate", "fingerprint": fingerprint})
        return sum(r.get("dropped", 0) for r in responses if r.get("ok"))

    def close(self) -> None:
        self._closed = True
        for worker in self._workers:
            # The per-worker lock serializes shutdown against an in-flight
            # dispatch (and its respawn): without it, closing mid-kill can
            # leave a half-respawned process behind.
            with worker.lock:
                worker.close()
        self._workers = []
