"""Wire protocol of the verification service: newline-delimited JSON-RPC.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
simplest framing that telnet, ``nc`` and a five-line client can speak.  The
envelope follows JSON-RPC 2.0: requests carry ``{"jsonrpc": "2.0", "id",
"method", "params"}``, responses either ``{"id", "result"}`` or ``{"id",
"error": {"code", "message"}}`` with the standard error codes.

Verification answers cross the wire as plain-JSON payloads
(:func:`result_to_payload` / :func:`payload_to_result`): the verdict, the
UNKNOWN reason, timings, solver statistics and the witness matching in the
query trace's own send/receive identifiers.  Encodings, traces and solver
state never travel — the service's whole point is that they stay warm on
the server.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.encoding.witness import Witness
from repro.utils.errors import ServiceProtocolError
from repro.verification.result import Verdict, VerificationResult

__all__ = [
    "MAX_FRAME_BYTES",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "WORKER_CRASH",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "make_request",
    "make_response",
    "make_error",
    "result_to_payload",
    "payload_to_result",
]

#: Ceiling on one frame's size.  A verify request is a workload spec (tens
#: of bytes); anything near this bound is a confused or malicious peer.
MAX_FRAME_BYTES = 1 << 20

# JSON-RPC 2.0 standard error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

#: Implementation-defined code: the request's worker process died twice
#: (once plus one re-dispatch).  Queries are idempotent, so clients may
#: safely resend — the pool's poison ledger converts a spec that keeps
#: crashing into an UNKNOWN answer instead of an endless retry loop.
WORKER_CRASH = -32001


def encode_frame(message: Dict[str, object]) -> bytes:
    """Render one protocol message as a newline-terminated JSON frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    if faults.ACTIVE is not None:
        data = faults.fire("protocol.encode", data=data, crash=ServiceProtocolError)
    return data


def decode_frame(line: bytes) -> Dict[str, object]:
    """Parse one received line into a message dict, validating the envelope."""
    if faults.ACTIVE is not None:
        # A garbled frame decodes to junk and is *rejected* below — wire
        # corruption surfaces as ServiceProtocolError (and a client retry),
        # never as a different valid message.
        line = faults.fire("protocol.decode", data=line, crash=ServiceProtocolError)
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: Dict[str, object]) -> Tuple[object, str, Dict[str, object]]:
    """Check a decoded frame is a well-formed request; returns (id, method, params)."""
    if message.get("jsonrpc") != "2.0":
        raise ServiceProtocolError('request is missing "jsonrpc": "2.0"')
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise ServiceProtocolError("request needs a non-empty string method")
    params = message.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ServiceProtocolError("request params must be an object")
    return message.get("id"), method, params


def make_request(
    method: str, params: Optional[Dict[str, object]] = None, request_id: object = None
) -> Dict[str, object]:
    message: Dict[str, object] = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params:
        message["params"] = params
    return message


def make_response(request_id: object, result: object) -> Dict[str, object]:
    return {"jsonrpc": "2.0", "id": request_id, "result": result}


def make_error(
    request_id: object, code: int, message: str, data: object = None
) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": "2.0", "id": request_id, "error": error}


# ---------------------------------------------------------------------------
# Result payloads
# ---------------------------------------------------------------------------


def _witness_to_payload(witness: Witness) -> Dict[str, object]:
    return {
        "matching": [
            [recv_id, send_id] for recv_id, send_id in sorted(witness.matching.items())
        ],
        "receive_values": [
            [recv_id, value]
            for recv_id, value in sorted(witness.receive_values.items())
        ],
        "unmatched_receives": sorted(witness.unmatched_receives),
        "orphan_sends": sorted(witness.orphan_sends),
    }


def _witness_from_payload(payload: Dict[str, object]) -> Witness:
    return Witness(
        matching={
            int(recv): int(send) for recv, send in payload.get("matching", [])
        },
        receive_values={
            int(recv): value for recv, value in payload.get("receive_values", [])
        },
        unmatched_receives=[int(r) for r in payload.get("unmatched_receives", [])],
        orphan_sends=[int(s) for s in payload.get("orphan_sends", [])],
    )


def result_to_payload(result: VerificationResult) -> Dict[str, object]:
    """Flatten a result for the wire (encodings and traces stay behind)."""
    statistics = {
        key: value
        for key, value in (result.solver_statistics or {}).items()
        if isinstance(value, (int, float, str, bool))
    }
    return {
        "verdict": result.verdict.value,
        "unknown_reason": result.unknown_reason,
        "from_cache": result.from_cache,
        "backend": result.backend,
        "encode_seconds": result.encode_seconds,
        "solve_seconds": result.solve_seconds,
        "solver_statistics": statistics,
        "witness": (
            _witness_to_payload(result.witness) if result.witness is not None else None
        ),
    }


def payload_to_result(payload: Dict[str, object]) -> VerificationResult:
    """Rebuild a client-side :class:`VerificationResult` from a payload."""
    witness_payload = payload.get("witness")
    return VerificationResult(
        verdict=Verdict(payload["verdict"]),
        witness=(
            _witness_from_payload(witness_payload)
            if witness_payload is not None
            else None
        ),
        solver_statistics=dict(payload.get("solver_statistics") or {}),
        encode_seconds=float(payload.get("encode_seconds") or 0.0),
        solve_seconds=float(payload.get("solve_seconds") or 0.0),
        backend=payload.get("backend"),
        from_cache=bool(payload.get("from_cache", False)),
        unknown_reason=payload.get("unknown_reason"),
    )
