"""The verification daemon: an asyncio front end over the worker pool.

One :class:`VerificationService` owns a
:class:`~repro.service.pool.WorkerPool` and dispatches the five protocol
methods — ``verify``, ``verify_batch``, ``enumerate``, ``stats``,
``shutdown`` — that arrive as newline-delimited JSON-RPC frames
(:mod:`repro.service.protocol`).  The event loop never solves anything:
every request is handed to the pool on an executor thread, so a hundred
clients can be connected while four workers grind through the queue, and a
request that blows its deadline costs one worker process, not the daemon.

Three entry points:

* :meth:`VerificationService.handle_json` — request dict in, response dict
  out; what the tests drive directly.
* :func:`serve` / :func:`run_server` — the TCP daemon
  (``mcapi-verify serve``).
* :func:`run_stdio` — the same dispatch over stdin/stdout, one frame per
  line; lets a parent process drive a daemon without a port.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, List, Optional, TextIO

from repro import __version__
from repro.service import protocol
from repro.service.pool import DEFAULT_POOL_SIZE, WorkerPool, _WorkerDied
from repro.utils.errors import ReproError, ServiceError, ServiceProtocolError

__all__ = ["VerificationService", "serve", "run_server", "run_stdio"]

#: Methods a client may invoke, and their service handlers.
SERVICE_METHODS = ("verify", "verify_batch", "enumerate", "stats", "shutdown")


class VerificationService:
    """Protocol-level dispatch over one worker pool and shared cache."""

    def __init__(
        self,
        jobs: int = 0,
        pool_size: int = DEFAULT_POOL_SIZE,
        cache_dir: Optional[str] = None,
        default_timeout_s: Optional[float] = None,
    ) -> None:
        self.pool = WorkerPool(jobs=jobs, pool_size=pool_size, cache_dir=cache_dir)
        self.default_timeout_s = default_timeout_s
        self.requests = 0
        self.errors = 0
        self.shutdown_requested = False
        self._shutdown_event: Optional[asyncio.Event] = None
        self._connection_tasks: set = set()

    # -- dispatch ----------------------------------------------------------------

    def handle_json(self, message: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one decoded request frame; returns the response frame.

        Never raises: every failure mode maps to a JSON-RPC error response.
        Blocking (solves run on the caller's thread) — the async front end
        calls this via an executor.
        """
        try:
            request_id, method, params = protocol.validate_request(message)
        except ServiceProtocolError as exc:
            self.errors += 1
            return protocol.make_error(
                message.get("id") if isinstance(message, dict) else None,
                protocol.INVALID_REQUEST,
                str(exc),
            )
        self.requests += 1
        try:
            if method == "verify":
                return protocol.make_response(request_id, self._verify(params))
            if method == "verify_batch":
                return protocol.make_response(request_id, self._verify_batch(params))
            if method == "enumerate":
                return protocol.make_response(request_id, self._enumerate(params))
            if method == "stats":
                return protocol.make_response(request_id, self._stats())
            if method == "shutdown":
                # Only the flag here: handle_json runs on an executor thread,
                # and the asyncio event must be set from the loop thread
                # (handle_connection does, once the response is flushed).
                self.shutdown_requested = True
                return protocol.make_response(request_id, {"stopping": True})
            self.errors += 1
            return protocol.make_error(
                request_id,
                protocol.METHOD_NOT_FOUND,
                f"unknown method {method!r}; available: {', '.join(SERVICE_METHODS)}",
            )
        except _WorkerDied as exc:
            # Dedicated code so clients know a resend is safe: the query
            # did not fail, its worker did (twice — once plus a
            # re-dispatch), and the pool has already respawned it.
            self.errors += 1
            return protocol.make_error(request_id, protocol.WORKER_CRASH, str(exc))
        except ServiceError as exc:
            self.errors += 1
            return protocol.make_error(request_id, protocol.INVALID_PARAMS, str(exc))
        except ReproError as exc:
            self.errors += 1
            return protocol.make_error(
                request_id, protocol.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # a bug must not kill the connection loop
            self.errors += 1
            return protocol.make_error(
                request_id, protocol.INTERNAL_ERROR, f"internal error: {exc!r}"
            )

    def _request_timeout(self, params: Dict[str, object]) -> Optional[float]:
        timeout_s = params.get("timeout_s", self.default_timeout_s)
        return None if timeout_s is None else float(timeout_s)

    def _unwrap(self, response: Dict[str, object]) -> Dict[str, object]:
        if not response.get("ok"):
            kind = response.get("kind", "ServiceError")
            message = response.get("error", "request failed")
            if kind in ("ServiceError", "EncodingError"):
                raise ServiceError(f"{kind}: {message}")
            raise ReproError(f"{kind}: {message}")
        response.pop("ok", None)
        return response

    def _verify(self, params: Dict[str, object]) -> Dict[str, object]:
        return self._unwrap(
            self.pool.submit(
                dict(params, op="verify"), timeout_s=self._request_timeout(params)
            )
        )

    def _verify_batch(self, params: Dict[str, object]) -> Dict[str, object]:
        queries = params.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ServiceError("verify_batch needs a non-empty 'queries' list")
        shared = {
            key: value for key, value in params.items() if key != "queries"
        }
        results: List[Dict[str, object]] = []
        for query in queries:
            if not isinstance(query, dict):
                raise ServiceError("each batch query must be an object")
            merged = dict(shared, **query)
            results.append(self._verify(merged))
        return {"results": results}

    def _enumerate(self, params: Dict[str, object]) -> Dict[str, object]:
        return self._unwrap(
            self.pool.submit(
                dict(params, op="enumerate"),
                timeout_s=self._request_timeout(params),
            )
        )

    def _stats(self) -> Dict[str, object]:
        stats = self.pool.statistics()
        stats["requests"] = self.requests
        stats["protocol_errors"] = self.errors
        stats["version"] = __version__
        return stats

    def close(self) -> None:
        self.pool.close()

    # -- async front end ---------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_event_loop()
        task = asyncio.current_task()
        if task is not None:
            # Tracked so serve_forever can drain in-flight connections
            # instead of letting loop teardown cancel them mid-close.
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Frame beyond the stream limit: reject and drop the peer
                    # (the rest of the oversized frame cannot be resynced).
                    writer.write(
                        protocol.encode_frame(
                            protocol.make_error(
                                None,
                                protocol.INVALID_REQUEST,
                                f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_frame(line)
                except ServiceProtocolError as exc:
                    self.errors += 1
                    response = protocol.make_error(
                        None, protocol.PARSE_ERROR, str(exc)
                    )
                else:
                    response = await loop.run_in_executor(
                        None, self.handle_json, message
                    )
                writer.write(protocol.encode_frame(response))
                await writer.drain()
                if self.shutdown_requested:
                    break
        except ConnectionResetError:  # pragma: no cover - client vanished
            pass
        except asyncio.CancelledError:
            # serve_forever cancels lingering connections at shutdown; end
            # the task normally so stream teardown stays quiet.
            pass
        finally:
            if self.shutdown_requested and self._shutdown_event is not None:
                # Signalled here — on the loop thread, after the requester's
                # response frame has been flushed — never from handle_json.
                self._shutdown_event.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, OSError):
                pass

    async def serve_forever(self, host: str, port: int) -> None:
        """Run the TCP front end until a ``shutdown`` request arrives."""
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self.handle_connection,
            host=host,
            port=port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        bound = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets or []
        )
        print(f"mcapi-verify service listening on {bound}", flush=True)
        try:
            await self._shutdown_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            pending = [
                task
                for task in self._connection_tasks
                if task is not asyncio.current_task()
            ]
            # Cancel rather than drain: a peer idling in readline() would
            # otherwise hold shutdown hostage (a forked worker can even pin
            # the connection open by inheriting a duplicate of its fd).
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self.close()


async def serve(
    host: str = "127.0.0.1",
    port: int = 9177,
    jobs: int = 0,
    pool_size: int = DEFAULT_POOL_SIZE,
    cache_dir: Optional[str] = None,
    default_timeout_s: Optional[float] = None,
) -> None:
    """Create a service and run its TCP front end until shutdown."""
    service = VerificationService(
        jobs=jobs,
        pool_size=pool_size,
        cache_dir=cache_dir,
        default_timeout_s=default_timeout_s,
    )
    await service.serve_forever(host, port)


def run_server(
    host: str = "127.0.0.1",
    port: int = 9177,
    jobs: int = 0,
    pool_size: int = DEFAULT_POOL_SIZE,
    cache_dir: Optional[str] = None,
    default_timeout_s: Optional[float] = None,
) -> int:
    """Blocking entry point for ``mcapi-verify serve``."""
    try:
        asyncio.run(
            serve(
                host=host,
                port=port,
                jobs=jobs,
                pool_size=pool_size,
                cache_dir=cache_dir,
                default_timeout_s=default_timeout_s,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def run_stdio(
    jobs: int = 0,
    pool_size: int = DEFAULT_POOL_SIZE,
    cache_dir: Optional[str] = None,
    default_timeout_s: Optional[float] = None,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """Serve frames over stdin/stdout — the portless mode tests drive."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    service = VerificationService(
        jobs=jobs,
        pool_size=pool_size,
        cache_dir=cache_dir,
        default_timeout_s=default_timeout_s,
    )
    try:
        for line in stdin:
            if not line.strip():
                continue
            try:
                message = protocol.decode_frame(line.encode("utf-8"))
            except ServiceProtocolError as exc:
                response = protocol.make_error(None, protocol.PARSE_ERROR, str(exc))
            else:
                response = service.handle_json(message)
            stdout.write(protocol.encode_frame(response).decode("utf-8"))
            stdout.flush()
            if service.shutdown_requested:
                break
    finally:
        service.close()
    return 0
