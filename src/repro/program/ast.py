"""The MCAPI program modelling language.

The paper's subject programs (Figure 1) are small multi-threaded programs
whose threads exchange messages through MCAPI endpoints and branch on the
values they receive.  This module defines the abstract syntax for such
programs:

* an **expression** language over integer locals, constants, arithmetic and
  comparisons (rich enough for the branch conditions and assertions the
  technique path-constrains), and
* a **statement** language with assignment, blocking send/receive,
  non-blocking receive plus wait, conditionals, bounded loops and
  assertions.

Every thread owns one MCAPI endpoint by default (named after the thread), so
`"t0"` can be used directly as a send destination exactly like the
``send(Y):t0`` notation in the paper's Figure 1; additional named endpoints
can be declared explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.smt.terms import (
    Add,
    And as SmtAnd,
    Eq as SmtEq,
    Ge as SmtGe,
    Gt as SmtGt,
    IntVal,
    IntVar,
    Le as SmtLe,
    Lt as SmtLt,
    Mul as SmtMul,
    Ne as SmtNe,
    Neg as SmtNeg,
    Not as SmtNot,
    Or as SmtOr,
    Sub as SmtSub,
    Term,
)
from repro.utils.errors import ProgramError

__all__ = [
    "Expression",
    "Const",
    "VarRef",
    "BinOp",
    "UnaryOp",
    "V",
    "C",
    "Statement",
    "Assign",
    "Send",
    "Receive",
    "ReceiveNonblocking",
    "Wait",
    "If",
    "While",
    "Assertion",
    "Skip",
    "ThreadDef",
    "Program",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

_ARITH_OPS = {"+", "-", "*"}
_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}
_BOOL_OPS = {"and", "or"}


@dataclass(frozen=True)
class Expression:
    """Base class for program expressions."""

    def evaluate(self, env: Dict[str, int]) -> Union[int, bool]:
        """Evaluate under a concrete environment of local variables."""
        raise NotImplementedError

    def to_smt(self, symbolic_env: Dict[str, Term]) -> Term:
        """Translate to an SMT term, substituting locals from ``symbolic_env``."""
        raise NotImplementedError

    def variables(self) -> Tuple[str, ...]:
        """Names of the locals read by this expression."""
        raise NotImplementedError

    # Operator sugar so workloads read naturally: V("x") + 1 < V("y").
    def _wrap(self, other: Union["Expression", int]) -> "Expression":
        if isinstance(other, Expression):
            return other
        if isinstance(other, bool) or not isinstance(other, int):
            raise ProgramError(f"cannot use {other!r} in a program expression")
        return Const(other)

    def __add__(self, other):
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other):
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other):
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other):
        return BinOp("*", self._wrap(other), self)

    def __neg__(self):
        return UnaryOp("-", self)

    def eq(self, other):
        return BinOp("==", self, self._wrap(other))

    def ne(self, other):
        return BinOp("!=", self, self._wrap(other))

    def __lt__(self, other):
        return BinOp("<", self, self._wrap(other))

    def __le__(self, other):
        return BinOp("<=", self, self._wrap(other))

    def __gt__(self, other):
        return BinOp(">", self, self._wrap(other))

    def __ge__(self, other):
        return BinOp(">=", self, self._wrap(other))

    def and_(self, other):
        return BinOp("and", self, self._wrap(other))

    def or_(self, other):
        return BinOp("or", self, self._wrap(other))

    def not_(self):
        return UnaryOp("not", self)


@dataclass(frozen=True)
class Const(Expression):
    """An integer constant."""

    value: int

    def evaluate(self, env: Dict[str, int]) -> int:
        return self.value

    def to_smt(self, symbolic_env: Dict[str, Term]) -> Term:
        return IntVal(self.value)

    def variables(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expression):
    """A reference to a thread-local variable."""

    name: str

    def evaluate(self, env: Dict[str, int]) -> Union[int, bool]:
        if self.name not in env:
            raise ProgramError(f"variable {self.name!r} read before assignment")
        return env[self.name]

    def to_smt(self, symbolic_env: Dict[str, Term]) -> Term:
        if self.name not in symbolic_env:
            raise ProgramError(f"variable {self.name!r} has no symbolic value")
        return symbolic_env[self.name]

    def variables(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expression):
    """A binary operation (arithmetic, comparison or Boolean connective)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _ARITH_OPS | _COMPARE_OPS | _BOOL_OPS:
            raise ProgramError(f"unknown operator {self.op!r}")

    def evaluate(self, env: Dict[str, int]) -> Union[int, bool]:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        op = self.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "and":
            return bool(lhs) and bool(rhs)
        if op == "or":
            return bool(lhs) or bool(rhs)
        raise ProgramError(f"unknown operator {op!r}")  # pragma: no cover

    def to_smt(self, symbolic_env: Dict[str, Term]) -> Term:
        lhs = self.left.to_smt(symbolic_env)
        rhs = self.right.to_smt(symbolic_env)
        op = self.op
        if op == "+":
            return Add(lhs, rhs)
        if op == "-":
            return SmtSub(lhs, rhs)
        if op == "*":
            # Linear multiplication only: one side must be a constant.
            return SmtMul(lhs, rhs)
        if op == "==":
            return SmtEq(lhs, rhs)
        if op == "!=":
            return SmtNe(lhs, rhs)
        if op == "<":
            return SmtLt(lhs, rhs)
        if op == "<=":
            return SmtLe(lhs, rhs)
        if op == ">":
            return SmtGt(lhs, rhs)
        if op == ">=":
            return SmtGe(lhs, rhs)
        if op == "and":
            return SmtAnd(lhs, rhs)
        if op == "or":
            return SmtOr(lhs, rhs)
        raise ProgramError(f"unknown operator {op!r}")  # pragma: no cover

    def variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.variables() + self.right.variables()))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary negation (arithmetic ``-`` or Boolean ``not``)."""

    op: str
    operand: Expression

    def __post_init__(self):
        if self.op not in ("-", "not"):
            raise ProgramError(f"unknown unary operator {self.op!r}")

    def evaluate(self, env: Dict[str, int]) -> Union[int, bool]:
        value = self.operand.evaluate(env)
        if self.op == "-":
            return -value
        return not bool(value)

    def to_smt(self, symbolic_env: Dict[str, Term]) -> Term:
        term = self.operand.to_smt(symbolic_env)
        if self.op == "-":
            return SmtNeg(term)
        return SmtNot(term)

    def variables(self) -> Tuple[str, ...]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


def V(name: str) -> VarRef:
    """Shorthand for a variable reference."""
    return VarRef(name)


def C(value: int) -> Const:
    """Shorthand for an integer constant."""
    return Const(value)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for program statements."""


@dataclass(frozen=True)
class Assign(Statement):
    """``variable := expression``."""

    variable: str
    expression: Expression

    def __str__(self) -> str:
        return f"{self.variable} := {self.expression}"


@dataclass(frozen=True)
class Send(Statement):
    """Send ``expression`` to ``destination`` (a thread or endpoint name)."""

    destination: str
    expression: Expression
    blocking: bool = True
    priority: int = 0

    def __str__(self) -> str:
        suffix = "" if self.blocking else "_i"
        return f"send{suffix}({self.expression}) -> {self.destination}"


@dataclass(frozen=True)
class Receive(Statement):
    """Blocking receive into ``variable`` (on the thread's own endpoint by
    default, or a named endpoint)."""

    variable: str
    endpoint: Optional[str] = None

    def __str__(self) -> str:
        where = f" on {self.endpoint}" if self.endpoint else ""
        return f"{self.variable} := recv(){where}"


@dataclass(frozen=True)
class ReceiveNonblocking(Statement):
    """Issue a non-blocking receive; the value becomes available at the
    corresponding :class:`Wait` on the same ``handle``."""

    variable: str
    handle: str
    endpoint: Optional[str] = None

    def __str__(self) -> str:
        where = f" on {self.endpoint}" if self.endpoint else ""
        return f"{self.handle} := recv_i({self.variable}){where}"


@dataclass(frozen=True)
class Wait(Statement):
    """Block until the non-blocking receive identified by ``handle`` completes."""

    handle: str

    def __str__(self) -> str:
        return f"wait({self.handle})"


@dataclass(frozen=True)
class If(Statement):
    """Conditional; both branches are sequences of statements."""

    condition: Expression
    then_body: Tuple[Statement, ...] = ()
    else_body: Tuple[Statement, ...] = ()

    def __init__(self, condition, then_body=(), else_body=()):
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "then_body", tuple(then_body))
        object.__setattr__(self, "else_body", tuple(else_body))

    def __str__(self) -> str:
        return f"if {self.condition} then [{len(self.then_body)}] else [{len(self.else_body)}]"


@dataclass(frozen=True)
class While(Statement):
    """A loop; iterations are bounded by the scheduler's step budget."""

    condition: Expression
    body: Tuple[Statement, ...] = ()

    def __init__(self, condition, body=()):
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "body", tuple(body))

    def __str__(self) -> str:
        return f"while {self.condition} do [{len(self.body)}]"


@dataclass(frozen=True)
class Assertion(Statement):
    """A safety assertion; violated assertions are the bugs the verifier hunts."""

    condition: Expression
    label: Optional[str] = None

    def __str__(self) -> str:
        name = f" {self.label!r}" if self.label else ""
        return f"assert{name} {self.condition}"


@dataclass(frozen=True)
class Skip(Statement):
    """A no-op (useful as a placeholder in generated workloads)."""

    note: str = ""

    def __str__(self) -> str:
        return f"skip({self.note})" if self.note else "skip"


# ---------------------------------------------------------------------------
# Threads and programs
# ---------------------------------------------------------------------------


@dataclass
class ThreadDef:
    """A thread: a name and a sequence of statements."""

    name: str
    body: Tuple[Statement, ...] = ()

    def __init__(self, name: str, body: Sequence[Statement] = ()):
        self.name = name
        self.body = tuple(body)

    def statements(self) -> Tuple[Statement, ...]:
        return self.body


@dataclass
class Program:
    """A closed MCAPI program: a set of threads plus endpoint declarations.

    ``extra_endpoints`` maps endpoint names to the thread that owns them (a
    thread may own several endpoints; each becomes a distinct MCAPI port on
    that thread's node).
    """

    name: str
    threads: List[ThreadDef] = field(default_factory=list)
    extra_endpoints: Dict[str, str] = field(default_factory=dict)

    def thread_names(self) -> List[str]:
        return [t.name for t in self.threads]

    def get_thread(self, name: str) -> ThreadDef:
        for thread in self.threads:
            if thread.name == name:
                return thread
        raise ProgramError(f"no thread named {name!r} in program {self.name!r}")

    def endpoint_names(self) -> List[str]:
        """All endpoint names: one per thread plus the extra ones."""
        return self.thread_names() + list(self.extra_endpoints)

    def owner_of_endpoint(self, endpoint_name: str) -> str:
        if endpoint_name in self.thread_names():
            return endpoint_name
        if endpoint_name in self.extra_endpoints:
            return self.extra_endpoints[endpoint_name]
        raise ProgramError(f"unknown endpoint {endpoint_name!r}")

    def validate(self) -> None:
        """Static well-formedness checks; raises :class:`ProgramError`."""
        names = self.thread_names()
        if len(names) != len(set(names)):
            raise ProgramError(f"duplicate thread names in {self.name!r}")
        if not self.threads:
            raise ProgramError("a program needs at least one thread")
        for endpoint, owner in self.extra_endpoints.items():
            if owner not in names:
                raise ProgramError(
                    f"endpoint {endpoint!r} is owned by unknown thread {owner!r}"
                )
            if endpoint in names:
                raise ProgramError(
                    f"endpoint name {endpoint!r} clashes with a thread name"
                )
        valid_destinations = set(self.endpoint_names())
        for thread in self.threads:
            self._validate_body(thread, thread.body, valid_destinations)

    def _validate_body(
        self, thread: ThreadDef, body: Sequence[Statement], destinations: set
    ) -> None:
        handles: set = set()
        self._collect_handles(body, handles)
        for statement in body:
            if isinstance(statement, Send):
                if statement.destination not in destinations:
                    raise ProgramError(
                        f"thread {thread.name!r} sends to unknown endpoint "
                        f"{statement.destination!r}"
                    )
            elif isinstance(statement, (Receive, ReceiveNonblocking)):
                if statement.endpoint is not None and statement.endpoint not in destinations:
                    raise ProgramError(
                        f"thread {thread.name!r} receives on unknown endpoint "
                        f"{statement.endpoint!r}"
                    )
            elif isinstance(statement, Wait):
                if statement.handle not in handles:
                    raise ProgramError(
                        f"thread {thread.name!r} waits on unknown handle "
                        f"{statement.handle!r}"
                    )
            elif isinstance(statement, If):
                self._validate_body(thread, statement.then_body, destinations)
                self._validate_body(thread, statement.else_body, destinations)
            elif isinstance(statement, While):
                self._validate_body(thread, statement.body, destinations)

    def _collect_handles(self, body: Sequence[Statement], handles: set) -> None:
        for statement in body:
            if isinstance(statement, ReceiveNonblocking):
                handles.add(statement.handle)
            elif isinstance(statement, If):
                self._collect_handles(statement.then_body, handles)
                self._collect_handles(statement.else_body, handles)
            elif isinstance(statement, While):
                self._collect_handles(statement.body, handles)

    def statement_count(self) -> int:
        """Total number of statements (for reporting)."""

        def count(body: Sequence[Statement]) -> int:
            total = 0
            for statement in body:
                total += 1
                if isinstance(statement, If):
                    total += count(statement.then_body) + count(statement.else_body)
                elif isinstance(statement, While):
                    total += count(statement.body)
            return total

        return sum(count(t.body) for t in self.threads)
