"""A fluent builder for MCAPI programs.

The AST in :mod:`repro.program.ast` is convenient for tools; this builder is
convenient for humans.  The paper's Figure 1 program reads almost verbatim::

    builder = ProgramBuilder("figure1")
    t0 = builder.thread("t0")
    t0.recv("A")
    t0.recv("B")
    t1 = builder.thread("t1")
    t1.recv("C")
    t1.send("t0", X)
    t2 = builder.thread("t2")
    t2.send("t0", Y)
    t2.send("t1", Z)
    program = builder.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.program.ast import (
    Assertion,
    Assign,
    C,
    Const,
    Expression,
    If,
    Program,
    Receive,
    ReceiveNonblocking,
    Send,
    Skip,
    Statement,
    ThreadDef,
    V,
    Wait,
    While,
)
from repro.utils.errors import ProgramError

__all__ = ["ProgramBuilder", "ThreadBuilder"]


ExprLike = Union[Expression, int]


def _expr(value: ExprLike) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProgramError(f"expected an expression or int, got {value!r}")
    return Const(value)


class ThreadBuilder:
    """Accumulates the statements of one thread."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._body: List[Statement] = []

    # -- plain statements --------------------------------------------------------

    def assign(self, variable: str, expression: ExprLike) -> "ThreadBuilder":
        self._body.append(Assign(variable, _expr(expression)))
        return self

    def send(
        self, destination: str, payload: ExprLike, blocking: bool = True, priority: int = 0
    ) -> "ThreadBuilder":
        self._body.append(Send(destination, _expr(payload), blocking=blocking, priority=priority))
        return self

    def recv(self, variable: str, endpoint: Optional[str] = None) -> "ThreadBuilder":
        self._body.append(Receive(variable, endpoint=endpoint))
        return self

    def recv_i(
        self, variable: str, handle: Optional[str] = None, endpoint: Optional[str] = None
    ) -> "ThreadBuilder":
        handle = handle or f"req_{variable}"
        self._body.append(ReceiveNonblocking(variable, handle, endpoint=endpoint))
        return self

    def wait(self, handle: str) -> "ThreadBuilder":
        self._body.append(Wait(handle))
        return self

    def assertion(self, condition: Expression, label: Optional[str] = None) -> "ThreadBuilder":
        self._body.append(Assertion(condition, label=label))
        return self

    def skip(self, note: str = "") -> "ThreadBuilder":
        self._body.append(Skip(note))
        return self

    # -- control flow ------------------------------------------------------------

    def if_(
        self,
        condition: Expression,
        then: Sequence[Statement] = (),
        orelse: Sequence[Statement] = (),
    ) -> "ThreadBuilder":
        self._body.append(If(condition, tuple(then), tuple(orelse)))
        return self

    def while_(self, condition: Expression, body: Sequence[Statement] = ()) -> "ThreadBuilder":
        self._body.append(While(condition, tuple(body)))
        return self

    def raw(self, statement: Statement) -> "ThreadBuilder":
        """Append an already-constructed statement."""
        self._body.append(statement)
        return self

    def build(self) -> ThreadDef:
        return ThreadDef(self.name, tuple(self._body))


class ProgramBuilder:
    """Accumulates threads and endpoints into a :class:`Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._threads: List[ThreadBuilder] = []
        self._extra_endpoints: Dict[str, str] = {}

    def thread(self, name: str) -> ThreadBuilder:
        """Declare a new thread (and its implicit endpoint of the same name)."""
        if any(t.name == name for t in self._threads):
            raise ProgramError(f"thread {name!r} declared twice")
        builder = ThreadBuilder(name)
        self._threads.append(builder)
        return builder

    def endpoint(self, name: str, owner: str) -> "ProgramBuilder":
        """Declare an extra named endpoint owned by thread ``owner``."""
        if name in self._extra_endpoints:
            raise ProgramError(f"endpoint {name!r} declared twice")
        self._extra_endpoints[name] = owner
        return self

    def build(self, validate: bool = True) -> Program:
        program = Program(
            name=self.name,
            threads=[t.build() for t in self._threads],
            extra_endpoints=dict(self._extra_endpoints),
        )
        if validate:
            program.validate()
        return program
