"""Static symbolic traces for branch-free programs.

The paper's pipeline starts from a *recorded* execution trace, and the
recording run must complete — a blocked receive never emits its trace event,
so a deadlocked recording yields a truncated trace that misses exactly the
operations a deadlock analysis needs to reason about.  That makes the
recorder useless for programs that deadlock on every schedule (circular
waits, starved fan-ins): there is nothing complete to record.

For **branch-free** programs the recording step is unnecessary: every
execution performs the same per-thread statement sequence, so the full
trace can be built statically by symbolic unrolling — each receive binds a
fresh value symbol, assignments and send payloads are evaluated over the
symbolic environment, and no scheduler or network is involved.  The result
is indistinguishable from a complete recording up to identifier renaming:
its :func:`repro.trace.fingerprint.trace_fingerprint` equals that of any
complete recorded run of the same program (a property the test suite pins).

Programs containing ``if``/``while`` are rejected: branch outcomes are
execution-dependent, and the paper's analysis is path-constrained — a trace
without recorded outcomes would not determine the encoded problem.

This is the trace source behind deadlock-mode verification
(:meth:`repro.verification.session.VerificationSession.deadlocks`) whenever
the recording run blocks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mcapi.endpoint import EndpointId
from repro.program.ast import (
    Assertion,
    Assign,
    If,
    Program,
    Receive,
    ReceiveNonblocking,
    Send,
    Skip,
    Statement,
    Wait,
    While,
)
from repro.smt.terms import IntVar, Term
from repro.trace.builder import TraceBuilder
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import ProgramError

__all__ = ["static_trace"]


def _endpoint_map(program: Program) -> Dict[str, EndpointId]:
    """The thread/extra-endpoint address layout, mirroring ProgramRunner."""
    endpoints: Dict[str, EndpointId] = {}
    for index, thread in enumerate(program.threads):
        endpoints[thread.name] = EndpointId(node=index, port=0)
    next_port: Dict[str, int] = {t.name: 1 for t in program.threads}
    thread_index = {t.name: i for i, t in enumerate(program.threads)}
    for endpoint_name, owner in program.extra_endpoints.items():
        port = next_port[owner]
        next_port[owner] += 1
        endpoints[endpoint_name] = EndpointId(node=thread_index[owner], port=port)
    return endpoints


def _try_concrete(expression) -> Optional[int]:
    """Evaluate an expression concretely when it involves no received value."""
    try:
        return int(expression.evaluate({}))
    except Exception:
        return None


def static_trace(program: Program, name: Optional[str] = None) -> ExecutionTrace:
    """Build the complete symbolic trace of a branch-free ``program``.

    Threads are unrolled one after the other (the global interleaving of a
    trace is irrelevant to the encoding — only per-thread program order
    matters, which is what the fingerprint invariance formalises).  Raises
    :class:`~repro.utils.errors.ProgramError` on ``if``/``while``
    statements.
    """
    program.validate()
    endpoints = _endpoint_map(program)
    builder = TraceBuilder(name=name or f"{program.name}-static")

    for thread in program.threads:
        symbolic_env: Dict[str, Term] = {}
        handles: Dict[str, int] = {}
        handle_variables: Dict[str, str] = {}
        own_endpoint = endpoints[thread.name]
        for statement in thread.body:
            _unroll(
                statement,
                thread.name,
                own_endpoint,
                endpoints,
                symbolic_env,
                handles,
                handle_variables,
                builder,
            )
    return builder.build(validate=True)


def _unroll(
    statement: Statement,
    thread: str,
    own_endpoint: EndpointId,
    endpoints: Dict[str, EndpointId],
    symbolic_env: Dict[str, Term],
    handles: Dict[str, int],
    handle_variables: Dict[str, str],
    builder: TraceBuilder,
) -> None:
    if isinstance(statement, Assign):
        symbolic = statement.expression.to_smt(symbolic_env)
        symbolic_env[statement.variable] = symbolic
        builder.assign(
            thread,
            statement.variable,
            symbolic,
            observed_value=_try_concrete(statement.expression),
        )
    elif isinstance(statement, Send):
        if statement.destination not in endpoints:
            raise ProgramError(f"unknown endpoint {statement.destination!r}")
        builder.send(
            thread=thread,
            source=own_endpoint,
            destination=endpoints[statement.destination],
            payload_value=_try_concrete(statement.expression),
            payload_expr=statement.expression.to_smt(symbolic_env),
            blocking=statement.blocking,
        )
    elif isinstance(statement, Receive):
        endpoint = (
            endpoints[statement.endpoint]
            if statement.endpoint is not None
            else own_endpoint
        )
        event = builder.receive(
            thread=thread, endpoint=endpoint, target_variable=statement.variable
        )
        symbolic_env[statement.variable] = IntVar(event.value_symbol)
    elif isinstance(statement, ReceiveNonblocking):
        endpoint = (
            endpoints[statement.endpoint]
            if statement.endpoint is not None
            else own_endpoint
        )
        event = builder.receive_init(
            thread=thread, endpoint=endpoint, target_variable=statement.variable
        )
        if statement.handle in handles:
            raise ProgramError(
                f"handle {statement.handle!r} reused before wait in {thread!r}"
            )
        handles[statement.handle] = event.recv_id
        handle_variables[statement.handle] = statement.variable
    elif isinstance(statement, Wait):
        recv_id = handles.pop(statement.handle, None)
        if recv_id is None:
            raise ProgramError(
                f"thread {thread!r} waits on unknown handle {statement.handle!r}"
            )
        builder.wait(thread=thread, recv_id=recv_id)
        variable = handle_variables.pop(statement.handle)
        symbolic_env[variable] = IntVar(builder.fresh_recv_symbol(recv_id))
    elif isinstance(statement, Assertion):
        # The observed outcome is a recording artefact (excluded from the
        # fingerprint and the encoding); record the optimistic value.
        builder.assertion(
            thread,
            statement.condition.to_smt(symbolic_env),
            observed_outcome=True,
            label=statement.label,
        )
    elif isinstance(statement, Skip):
        builder.local(thread, statement.note or "skip")
    elif isinstance(statement, (If, While)):
        raise ProgramError(
            "static_trace needs a branch-free program: branch outcomes are "
            f"execution-dependent (thread {thread!r} contains "
            f"{type(statement).__name__})"
        )
    else:  # pragma: no cover - defensive
        raise ProgramError(f"unknown statement {statement!r}")
