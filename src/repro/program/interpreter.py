"""Concrete (concolic) interpretation of MCAPI programs.

The interpreter runs a :class:`repro.program.ast.Program` on the MCAPI
runtime simulator under a scheduling strategy and records an execution trace.
Execution is *concolic*: every thread keeps

* a **concrete** environment (variable -> int) used to decide branches and
  to drive the actual run, and
* a **symbolic** environment (variable -> SMT term over the per-receive
  value symbols) used to label trace events.

Because the symbolic environment substitutes eagerly, the expressions stored
in the trace (send payloads, branch conditions, assertion conditions) are
already closed over the receive symbols — exactly the form the encoder's
``PEvents`` / ``PProp`` / ``match`` constraints need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mcapi.endpoint import EndpointId
from repro.mcapi.network import DeliveryPolicy, UnorderedDelivery
from repro.mcapi.requests import Request
from repro.mcapi.runtime import McapiRuntime
from repro.mcapi.scheduler import (
    RandomStrategy,
    RunResult,
    Scheduler,
    SchedulingStrategy,
    Task,
    TaskStatus,
)
from repro.program.ast import (
    Assertion,
    Assign,
    Expression,
    If,
    Program,
    Receive,
    ReceiveNonblocking,
    Send,
    Skip,
    Statement,
    ThreadDef,
    Wait,
    While,
)
from repro.smt.terms import IntVal, IntVar, Term
from repro.trace.builder import TraceBuilder
from repro.trace.trace import ExecutionTrace
from repro.utils.errors import ProgramError

__all__ = ["AssertionFailure", "ProgramRun", "ProgramRunner", "ThreadTask"]


@dataclass(frozen=True)
class AssertionFailure:
    """A program assertion that evaluated to False during the concrete run."""

    thread: str
    label: Optional[str]
    event_id: int
    condition: str


@dataclass
class ProgramRun:
    """Everything produced by one concrete execution of a program."""

    program: Program
    trace: ExecutionTrace
    result: RunResult
    assertion_failures: List[AssertionFailure] = field(default_factory=list)
    final_environments: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def deadlocked(self) -> bool:
        return self.result.deadlocked

    @property
    def ok(self) -> bool:
        return self.result.ok and not self.assertion_failures


@dataclass
class _PendingReceive:
    request: Request
    recv_id: int
    variable: str


class ThreadTask(Task):
    """One program thread driven by the scheduler, one statement per step."""

    def __init__(
        self,
        thread: ThreadDef,
        endpoints: Dict[str, EndpointId],
        own_endpoint: EndpointId,
        trace_builder: TraceBuilder,
        message_to_send_id: Dict[int, int],
    ) -> None:
        super().__init__(thread.name)
        self._endpoints = endpoints
        self._own_endpoint = own_endpoint
        self._builder = trace_builder
        self._message_to_send_id = message_to_send_id
        # The continuation stack holds statements still to execute; the next
        # statement is the last element.
        self._stack: List[Statement] = list(reversed(thread.body))
        self.env: Dict[str, int] = {}
        self.symbolic_env: Dict[str, Term] = {}
        self._handles: Dict[str, _PendingReceive] = {}
        self.assertion_failures: List[AssertionFailure] = []

    # ------------------------------------------------------------------ helpers

    def _endpoint_for(self, name: Optional[str]) -> EndpointId:
        if name is None:
            return self._own_endpoint
        if name not in self._endpoints:
            raise ProgramError(f"unknown endpoint {name!r}")
        return self._endpoints[name]

    def _peek(self) -> Optional[Statement]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------ Task API

    def status(self, runtime: McapiRuntime) -> TaskStatus:
        statement = self._peek()
        if statement is None:
            return TaskStatus.DONE
        if isinstance(statement, Receive):
            endpoint = self._endpoint_for(statement.endpoint)
            if runtime.msg_available(endpoint) == 0:
                return TaskStatus.BLOCKED
        elif isinstance(statement, Wait):
            pending = self._handles.get(statement.handle)
            if pending is None:
                raise ProgramError(
                    f"thread {self.name!r} waits on unknown handle {statement.handle!r}"
                )
            if not pending.request.completed:
                return TaskStatus.BLOCKED
        return TaskStatus.READY

    def step(self, runtime: McapiRuntime) -> None:
        statement = self._stack.pop() if self._stack else None
        if statement is None:
            raise ProgramError(f"thread {self.name!r} stepped after completion")
        self._execute(statement, runtime)

    # ------------------------------------------------------------------ execution

    def _execute(self, statement: Statement, runtime: McapiRuntime) -> None:
        if isinstance(statement, Assign):
            self._exec_assign(statement)
        elif isinstance(statement, Send):
            self._exec_send(statement, runtime)
        elif isinstance(statement, Receive):
            self._exec_receive(statement, runtime)
        elif isinstance(statement, ReceiveNonblocking):
            self._exec_receive_nonblocking(statement, runtime)
        elif isinstance(statement, Wait):
            self._exec_wait(statement)
        elif isinstance(statement, If):
            self._exec_if(statement)
        elif isinstance(statement, While):
            self._exec_while(statement)
        elif isinstance(statement, Assertion):
            self._exec_assert(statement)
        elif isinstance(statement, Skip):
            self._builder.local(self.name, statement.note or "skip")
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown statement {statement!r}")

    def _exec_assign(self, statement: Assign) -> None:
        value = statement.expression.evaluate(self.env)
        symbolic = statement.expression.to_smt(self.symbolic_env)
        self.env[statement.variable] = int(value)
        self.symbolic_env[statement.variable] = symbolic
        self._builder.assign(
            self.name, statement.variable, symbolic, observed_value=int(value)
        )

    def _exec_send(self, statement: Send, runtime: McapiRuntime) -> None:
        value = int(statement.expression.evaluate(self.env))
        symbolic = statement.expression.to_smt(self.symbolic_env)
        destination = self._endpoint_for(statement.destination)
        message = runtime.msg_send(
            source=self._own_endpoint,
            destination=destination,
            payload=value,
            priority=statement.priority,
            sender_thread=self.name,
        )
        event = self._builder.send(
            thread=self.name,
            source=self._own_endpoint,
            destination=destination,
            payload_value=value,
            payload_expr=symbolic,
            blocking=statement.blocking,
            message_id=message.message_id,
        )
        self._message_to_send_id[message.message_id] = event.send_id

    def _exec_receive(self, statement: Receive, runtime: McapiRuntime) -> None:
        endpoint = self._endpoint_for(statement.endpoint)
        message = runtime.msg_recv_try(endpoint, receiver_thread=self.name)
        if message is None:
            # The scheduler only steps READY tasks, so this cannot happen in a
            # scheduled run; guard anyway for direct use in tests.
            raise ProgramError(
                f"blocking receive in {self.name!r} stepped with an empty queue"
            )
        observed_send = self._message_to_send_id.get(message.message_id)
        event = self._builder.receive(
            thread=self.name,
            endpoint=endpoint,
            target_variable=statement.variable,
            observed_value=message.payload,
            observed_send_id=observed_send,
        )
        self.env[statement.variable] = int(message.payload)
        self.symbolic_env[statement.variable] = IntVar(event.value_symbol)

    def _exec_receive_nonblocking(
        self, statement: ReceiveNonblocking, runtime: McapiRuntime
    ) -> None:
        endpoint = self._endpoint_for(statement.endpoint)
        request = runtime.msg_recv_i(endpoint, receiver_thread=self.name)
        event = self._builder.receive_init(
            thread=self.name,
            endpoint=endpoint,
            target_variable=statement.variable,
            request_id=request.request_id,
        )
        if statement.handle in self._handles:
            raise ProgramError(
                f"handle {statement.handle!r} reused before wait in {self.name!r}"
            )
        self._handles[statement.handle] = _PendingReceive(
            request=request, recv_id=event.recv_id, variable=statement.variable
        )

    def _exec_wait(self, statement: Wait) -> None:
        pending = self._handles.pop(statement.handle, None)
        if pending is None:
            raise ProgramError(
                f"thread {self.name!r} waits on unknown handle {statement.handle!r}"
            )
        message = pending.request.take_message()
        observed_send = self._message_to_send_id.get(message.message_id)
        self._builder.wait(
            thread=self.name,
            recv_id=pending.recv_id,
            request_id=pending.request.request_id,
            observed_value=message.payload,
            observed_send_id=observed_send,
        )
        symbol = self._builder.fresh_recv_symbol(pending.recv_id)
        self.env[pending.variable] = int(message.payload)
        self.symbolic_env[pending.variable] = IntVar(symbol)

    def _exec_if(self, statement: If) -> None:
        outcome = bool(statement.condition.evaluate(self.env))
        symbolic = statement.condition.to_smt(self.symbolic_env)
        self._builder.branch(self.name, symbolic, outcome)
        body = statement.then_body if outcome else statement.else_body
        for nested in reversed(body):
            self._stack.append(nested)

    def _exec_while(self, statement: While) -> None:
        outcome = bool(statement.condition.evaluate(self.env))
        symbolic = statement.condition.to_smt(self.symbolic_env)
        self._builder.branch(self.name, symbolic, outcome)
        if outcome:
            self._stack.append(statement)
            for nested in reversed(statement.body):
                self._stack.append(nested)

    def _exec_assert(self, statement: Assertion) -> None:
        outcome = bool(statement.condition.evaluate(self.env))
        symbolic = statement.condition.to_smt(self.symbolic_env)
        event = self._builder.assertion(
            self.name, symbolic, observed_outcome=outcome, label=statement.label
        )
        if not outcome:
            self.assertion_failures.append(
                AssertionFailure(
                    thread=self.name,
                    label=statement.label,
                    event_id=event.event_id,
                    condition=str(statement.condition),
                )
            )


class ProgramRunner:
    """Sets up the runtime, runs a program once, and returns its trace."""

    def __init__(
        self,
        program: Program,
        policy: Optional[DeliveryPolicy] = None,
        strategy: Optional[SchedulingStrategy] = None,
        seed: int = 0,
        max_steps: int = 100_000,
        trace_name: Optional[str] = None,
    ) -> None:
        program.validate()
        self.program = program
        self.policy = policy or UnorderedDelivery()
        self.strategy = strategy or RandomStrategy(seed)
        self.max_steps = max_steps
        self.trace_name = trace_name or program.name

    # ------------------------------------------------------------------ setup

    def _setup(self) -> Tuple[McapiRuntime, Dict[str, EndpointId], List[ThreadTask], TraceBuilder]:
        runtime = McapiRuntime(policy=self.policy)
        endpoints: Dict[str, EndpointId] = {}
        # One node and one default endpoint (port 0) per thread.
        for index, thread in enumerate(self.program.threads):
            runtime.initialize(index)
            endpoints[thread.name] = runtime.endpoint_create(index, 0)
        # Extra named endpoints become further ports on the owner's node.
        next_port: Dict[str, int] = {t.name: 1 for t in self.program.threads}
        thread_index = {t.name: i for i, t in enumerate(self.program.threads)}
        for endpoint_name, owner in self.program.extra_endpoints.items():
            port = next_port[owner]
            next_port[owner] += 1
            endpoints[endpoint_name] = runtime.endpoint_create(thread_index[owner], port)

        builder = TraceBuilder(name=self.trace_name)
        message_to_send_id: Dict[int, int] = {}
        tasks = [
            ThreadTask(
                thread=thread,
                endpoints=endpoints,
                own_endpoint=endpoints[thread.name],
                trace_builder=builder,
                message_to_send_id=message_to_send_id,
            )
            for thread in self.program.threads
        ]
        return runtime, endpoints, tasks, builder

    # ------------------------------------------------------------------ running

    def run(self) -> ProgramRun:
        """Execute the program once and return the recorded trace."""
        runtime, _, tasks, builder = self._setup()
        scheduler = Scheduler(
            runtime=runtime,
            tasks=tasks,
            strategy=self.strategy,
            max_steps=self.max_steps,
        )
        result = scheduler.run()
        failures: List[AssertionFailure] = []
        for task in tasks:
            failures.extend(task.assertion_failures)
        return ProgramRun(
            program=self.program,
            trace=builder.build(validate=not result.deadlocked),
            result=result,
            assertion_failures=failures,
            final_environments={task.name: dict(task.env) for task in tasks},
        )


def run_program(
    program: Program,
    seed: int = 0,
    policy: Optional[DeliveryPolicy] = None,
    strategy: Optional[SchedulingStrategy] = None,
    max_steps: int = 100_000,
) -> ProgramRun:
    """Convenience wrapper: run ``program`` once with the given seed/policy."""
    runner = ProgramRunner(
        program, policy=policy, strategy=strategy, seed=seed, max_steps=max_steps
    )
    return runner.run()
