"""Experiment "session": encode-once / query-many vs the seed architecture.

The seed ``enumerate_pairings`` encoded the trace once but solved every
query of the blocking-clause loop with a cold DPLL(T) engine — each
``check`` re-preprocessed and re-CNF-converted the whole assertion set,
rebuilt the SAT solver, and re-learned every theory lemma from scratch.
:class:`VerificationSession` runs the same loop against one incremental
backend, so learned clauses, saved phases and theory lemmas carry over
between queries.

The shape to check: both paths admit exactly the same matchings, the
session encodes exactly once, and the per-query cost collapses (the
incremental path typically needs an order of magnitude fewer DPLL(T)
iterations on the coverage workloads).
"""

import time

import pytest

from repro.encoding.encoder import TraceEncoder
from repro.encoding.variables import match_var
from repro.encoding.witness import decode_witness
from repro.program import run_program
from repro.smt import And, CheckResult, Eq, IntVal, Not
from repro.smt.dpllt import DpllTEngine
from repro.verification import VerificationSession
from repro.workloads import figure1_program, racy_fanin


def seed_style_enumerate(trace, limit=None):
    """The seed architecture: one encode, then a cold engine per check."""
    problem = TraceEncoder().encode(trace, properties=[])
    assertions = list(problem.assertions(include_property=False))
    pairings = []
    iterations = 0
    while limit is None or len(pairings) < limit:
        engine = DpllTEngine(assertions)
        result = engine.check()
        iterations += engine.stats.iterations
        if result is not CheckResult.SAT:
            break
        witness = decode_witness(problem, engine.model())
        pairings.append(dict(witness.matching))
        assertions.append(
            Not(
                And(
                    [
                        Eq(match_var(r), IntVal(s))
                        for r, s in witness.matching.items()
                    ]
                )
            )
        )
    return pairings, iterations


class CountingEncoder(TraceEncoder):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.encode_calls = 0

    def encode(self, *args, **kwargs):
        self.encode_calls += 1
        return super().encode(*args, **kwargs)


def session_enumerate(trace):
    encoder = CountingEncoder()
    session = VerificationSession(trace, encoder=encoder)
    pairings = session.enumerate_pairings()
    assert encoder.encode_calls == 1, "session must encode exactly once"
    assert session.encode_count == 1
    stats = session.statistics()
    return pairings, stats.get("checks", 0)


def _canonical(pairings):
    return {tuple(sorted(p.items())) for p in pairings}


@pytest.mark.benchmark(group="session")
def test_session_enumeration_beats_seed_architecture(benchmark, table_printer):
    """Same matchings, one encode, measured speedup over the seed path."""
    rows = []
    speedup_workload = None
    for name, program in [
        ("figure1", figure1_program()),
        ("racy_fanin(3)", racy_fanin(3)),
    ]:
        trace = run_program(program, seed=0).trace

        start = time.perf_counter()
        cold_pairings, cold_iterations = seed_style_enumerate(trace)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm_pairings, warm_checks = session_enumerate(trace)
        warm_seconds = time.perf_counter() - start

        assert _canonical(warm_pairings) == _canonical(cold_pairings)
        assert len(warm_pairings) > 0
        rows.append(
            [
                name,
                len(warm_pairings),
                f"{cold_seconds * 1000:.1f}",
                f"{warm_seconds * 1000:.1f}",
                f"{cold_seconds / warm_seconds:.1f}x",
                cold_iterations,
                warm_checks,
            ]
        )
        if name == "racy_fanin(3)":
            speedup_workload = (cold_seconds, warm_seconds)

    table_printer(
        "Pairing enumeration — seed architecture vs session (encode once, solve warm)",
        [
            "workload",
            "matchings",
            "seed ms",
            "session ms",
            "speedup",
            "seed dpllt iters",
            "session checks",
        ],
        rows,
    )

    # The acceptance bar: the session path must be measurably faster than
    # the seed path on the coverage workload.
    cold_seconds, warm_seconds = speedup_workload
    assert cold_seconds > warm_seconds, (
        f"expected session enumeration to beat the seed path, got "
        f"seed={cold_seconds:.3f}s session={warm_seconds:.3f}s"
    )

    trace = run_program(racy_fanin(3), seed=0).trace
    result = benchmark.pedantic(
        lambda: session_enumerate(trace), rounds=3, iterations=1
    )
    assert len(result[0]) == 6


@pytest.mark.benchmark(group="session")
def test_session_mixed_query_stream(benchmark):
    """A production-shaped stream: verdict + feasibility + probes + coverage,
    all answered from one encoding."""
    program = racy_fanin(3, assert_first_from_sender0=True)

    def stream():
        session = VerificationSession.from_program(program, seed=0)
        verdict = session.verdict()
        ok = session.feasibility()
        pairings = session.enumerate_pairings()
        probes = [session.reachable(p) for p in pairings[:3]]
        return verdict, ok, pairings, probes

    verdict, ok, pairings, probes = benchmark.pedantic(stream, rounds=3, iterations=1)
    assert verdict.is_violation
    assert ok
    assert len(pairings) == 6
    assert all(probes)
