"""Experiment "solver scaling": SMT problem size and solve time vs workload size.

The paper does not report solver numbers (2-page short paper), but a
downstream user needs to know how the generated problems scale.  This
benchmark sweeps the two main axes:

* racy fan-in width (more racing messages to one endpoint — match-pair count
  grows quadratically, admitted behaviours factorially), and
* pipeline depth (more events but no races — everything stays linear),

reporting encoding size, SAT-abstraction size and solve time for each point.
"""

import time

import pytest

from repro.encoding import TraceEncoder
from repro.program import run_program
from repro.smt import Solver
from repro.verification import SymbolicVerifier, Verdict
from repro.workloads import pipeline, racy_fanin


def _solve_stats(trace, properties=None):
    problem = TraceEncoder().encode(trace, properties=properties)
    solver = Solver()
    solver.add_all(problem.assertions(include_property=properties is None))
    start = time.perf_counter()
    outcome = solver.check()
    elapsed = time.perf_counter() - start
    stats = solver.statistics()
    return problem, outcome, elapsed, stats


@pytest.mark.benchmark(group="solver-scaling")
def test_fanin_width_scaling(benchmark, table_printer):
    rows = []
    for senders in (2, 3, 4, 5, 6):
        trace = run_program(
            racy_fanin(senders, assert_first_from_sender0=True), seed=0
        ).trace
        problem, outcome, elapsed, stats = _solve_stats(trace)
        rows.append(
            [
                senders,
                problem.size_summary()["candidate_pairs"],
                stats.get("sat_variables", 0),
                stats.get("sat_clauses", 0),
                outcome.value,
                f"{elapsed * 1000:.1f}",
            ]
        )
    table_printer(
        "Solver scaling — racy fan-in width (violable assertion)",
        ["senders", "cand. pairs", "SAT vars", "SAT clauses", "result", "solve ms"],
        rows,
    )

    trace = run_program(racy_fanin(5, assert_first_from_sender0=True), seed=0).trace
    benchmark(lambda: _solve_stats(trace)[1])


@pytest.mark.benchmark(group="solver-scaling")
def test_pipeline_depth_scaling(benchmark, table_printer):
    rows = []
    for depth in (3, 5, 8, 12):
        trace = run_program(pipeline(depth), seed=0).trace
        problem, outcome, elapsed, stats = _solve_stats(trace)
        rows.append(
            [
                depth,
                len(trace),
                problem.size_summary()["candidate_pairs"],
                outcome.value,
                f"{elapsed * 1000:.1f}",
            ]
        )
    table_printer(
        "Solver scaling — pipeline depth (safe assertion, expect UNSAT)",
        ["depth", "events", "cand. pairs", "result", "solve ms"],
        rows,
    )

    trace = run_program(pipeline(8), seed=0).trace
    benchmark(lambda: _solve_stats(trace)[1])


@pytest.mark.benchmark(group="solver-scaling")
def test_end_to_end_verification_scaling(benchmark, table_printer):
    """Whole-pipeline (record + encode + solve) cost per workload size."""
    rows = []
    for senders in (2, 4, 6):
        program = racy_fanin(senders, assert_first_from_sender0=True)
        start = time.perf_counter()
        result = SymbolicVerifier().verify_program(program, seed=0)
        elapsed = time.perf_counter() - start
        assert result.verdict is Verdict.VIOLATION
        rows.append(
            [
                senders,
                f"{result.encode_seconds * 1000:.1f}",
                f"{result.solve_seconds * 1000:.1f}",
                f"{elapsed * 1000:.1f}",
            ]
        )
    table_printer(
        "End-to-end verification cost (racy fan-in)",
        ["senders", "encode ms", "solve ms", "total ms"],
        rows,
    )

    program = racy_fanin(4, assert_first_from_sender0=True)
    benchmark.pedantic(
        lambda: SymbolicVerifier().verify_program(program, seed=0), rounds=3, iterations=1
    )
