"""Experiment "parallel": sharded batch verification vs the serial path.

The workload is the shape the parallel subsystem is built for: a 32-trace
mixed batch in which the same eight questions recur under different
recording seeds (a nightly corpus, a fleet of identical services, repeated
user traffic).  Three claims are checked:

* ``verify_many_parallel(jobs=4)`` answers the batch at least 2x faster
  than the serial ``verify_many`` loop — on a multi-core host the win comes
  from process sharding *and* fingerprint dedup; on a single-core host
  (such as CI containers) dedup alone must still clear the bar, because the
  batch's 32 traces collapse onto 8 distinct fingerprints.
* Verdicts are bit-identical to the serial path, in order.
* A warm on-disk cache answers the repeated batch with **zero** solver
  calls: every result arrives ``from_cache`` and the cache records no
  misses.

A scaling table (jobs = 1, 2, 4) is printed for the paper-style record.
"""

import os
import time

import pytest

from repro.program import run_program
from repro.verification import (
    ResultCache,
    verify_many,
    verify_many_parallel,
)
from repro.workloads import (
    client_server,
    figure1_program,
    pipeline,
    racy_fanin,
    scatter_gather,
)

#: Eight distinct verification questions...
DISTINCT_PROGRAMS = [
    figure1_program(assert_a_is_y=True),
    racy_fanin(3, assert_first_from_sender0=True),
    racy_fanin(4, assert_first_from_sender0=True),
    pipeline(6),
    pipeline(8),
    scatter_gather(3, assert_order=True),
    client_server(3),
    racy_fanin(2, messages_per_sender=2),
]
#: ...recorded under four seeds each: 32 traces, 8 distinct fingerprints.
RECORDING_SEEDS = range(4)


def _mixed_batch():
    return [
        run_program(program, seed=seed).trace
        for seed in RECORDING_SEEDS
        for program in DISTINCT_PROGRAMS
    ]


@pytest.mark.benchmark(group="parallel")
def test_parallel_batch_beats_serial(benchmark, table_printer):
    batch = _mixed_batch()
    assert len(batch) == 32

    start = time.perf_counter()
    serial = verify_many(batch)
    serial_seconds = time.perf_counter() - start

    rows = []
    parallel_seconds = {}
    for jobs in (1, 2, 4):
        start = time.perf_counter()
        parallel = verify_many_parallel(batch, jobs=jobs)
        elapsed = time.perf_counter() - start
        parallel_seconds[jobs] = elapsed
        assert [r.verdict for r in parallel] == [r.verdict for r in serial]
        solved = sum(1 for r in parallel if not r.from_cache)
        rows.append(
            [
                f"jobs={jobs}",
                len(batch),
                solved,
                f"{elapsed * 1000:.0f}",
                f"{serial_seconds / elapsed:.2f}x",
            ]
        )
    table_printer(
        f"32-trace mixed batch — serial verify_many {serial_seconds * 1000:.0f} ms "
        f"(host cpus: {os.cpu_count()})",
        ["path", "traces", "solver calls", "ms", "speedup vs serial"],
        rows,
    )

    speedup = serial_seconds / parallel_seconds[4]
    assert speedup >= 2.0, (
        f"verify_many_parallel(jobs=4) must be >= 2x the serial path, got "
        f"{speedup:.2f}x ({serial_seconds:.2f}s vs {parallel_seconds[4]:.2f}s)"
    )

    result = benchmark.pedantic(
        lambda: verify_many_parallel(batch, jobs=4), rounds=3, iterations=1
    )
    assert len(result) == 32


@pytest.mark.benchmark(group="parallel")
def test_warm_cache_answers_batch_with_zero_solver_calls(
    tmp_path, benchmark, table_printer
):
    batch = _mixed_batch()
    directory = str(tmp_path / "verdict-cache")

    cold_cache = ResultCache(directory=directory)
    start = time.perf_counter()
    cold = verify_many_parallel(batch, jobs=2, cache=cold_cache)
    cold_seconds = time.perf_counter() - start
    assert cold_cache.stores == len(DISTINCT_PROGRAMS)

    # A fresh process would start from an empty memory layer; model that
    # with a brand-new cache over the same directory.
    warm_cache = ResultCache(directory=directory)
    start = time.perf_counter()
    warm = verify_many_parallel(batch, jobs=2, cache=warm_cache)
    warm_seconds = time.perf_counter() - start

    assert [r.verdict for r in warm] == [r.verdict for r in cold]
    assert all(r.from_cache for r in warm), "warm batch must not solve"
    assert warm_cache.misses == 0, "warm batch must not miss"
    assert warm_cache.hits == len(batch)
    assert all(not r.solver_statistics for r in warm)

    table_printer(
        "Warm-cache repeat of the 32-trace batch",
        ["pass", "ms", "solver calls", "cache hits", "cache misses"],
        [
            ["cold", f"{cold_seconds * 1000:.0f}", cold_cache.stores, cold_cache.hits, cold_cache.misses],
            ["warm", f"{warm_seconds * 1000:.0f}", 0, warm_cache.hits, warm_cache.misses],
        ],
    )
    assert warm_seconds < cold_seconds

    final = benchmark.pedantic(
        lambda: verify_many_parallel(batch, jobs=2, cache=warm_cache),
        rounds=3,
        iterations=1,
    )
    assert all(r.from_cache for r in final)


@pytest.mark.benchmark(group="parallel")
def test_portfolio_mode_matches_plain_verdicts(benchmark):
    """Portfolio racing must never change an answer, whatever backends the
    host happens to have."""
    batch = _mixed_batch()[:8]
    plain = verify_many_parallel(batch, jobs=1)
    portfolio = benchmark.pedantic(
        lambda: verify_many_parallel(batch, jobs=1, portfolio=True),
        rounds=1,
        iterations=1,
    )
    assert [r.verdict for r in portfolio] == [r.verdict for r in plain]
