"""Benchmark: learned-clause database reduction and IDL bound propagation.

**ReduceDB gate.**  The session API answers every query of a
``verify_many`` / enumeration stream on one incremental DPLL(T) backend
(PR 1), and the online engine learns a clause per conflict (PR 4) — so a
long query stream used to grow its clause database without bound, and the
watch lists (the solver's innermost loop walks them on every propagation)
grew with it.  The gated workload distils that stream to its solver core:
one :class:`~repro.smt.backend.DpllTBackend` holding a delivery-order
model (a total order over send clocks, the paper's Figure 4 question
class) serves 64 scoped delivery-window queries — "can these sends be
delivered inside this window of one-less-than-enough slots?" — each an
UNSAT pigeonhole over difference atoms, exactly what a batched
``verify_many`` ordering stream issues check after check.  IDL bound
propagation is pinned off in *both* arms so the measurement isolates the
clause-database variable (propagation has its own gate below).

Gates (recut for the flat-memory core, PR 7): **the flat arena core
runs the stream >= 2x faster than the retained legacy object core**
(~3.5x measured) with *identical* verdicts and search counters — the
exactness guarantee of ``tests/smt/test_flat_core_differential.py``
restated as a perf gate; **reduction must not tax the stream** (the old
">= 1.5x faster with reduction" gate is gone on purpose: the flat watch
loop made walking an unreduced database so cheap that at this workload
size the two arms tie, so the reducer's remaining job here is bounding
memory, not wall time); and the live learned-clause count stays
*bounded* — it plateaus around the reduction budget while the unreduced
arm keeps every clause forever (and while the enabled arm's cumulative
learned-clause counter keeps growing, proving the plateau comes from
deletion, not from learning less).

**IDL propagation gate.**  On the ordering workload the bound-propagation
lane must convert theory conflicts into unit propagations: propagation
count > 0 and strictly fewer theory conflicts than with the lane
disabled, at an identical verdict.

A quick sanity lane also pushes a real 64-trace ``verify_many`` batch
through both configurations: verdicts must be identical and reduction
must not tax light traffic (small checks never reach the budget, so the
reducer must stay out of the way).
"""

import itertools
import time

import pytest

from repro.program.interpreter import run_program
from repro.smt import dpllt
from repro.smt.backend import DpllTBackend
from repro.smt.dpllt import CheckResult, DpllTEngine
from repro.smt.satlegacy import LegacySatSolver
from repro.smt.terms import IntVal, IntVar, Le, Lt, Or
from repro.verification.session import verify_many
from repro.workloads.generators import racy_fanin

NUM_CLOCKS = 7
NUM_QUERIES = 64
NUM_WINDOWS = 8  # distinct window anchors; the stream cycles through them


def _delivery_order_base(backend):
    """The persistent model: totally ordered clocks, loosely bounded."""
    clocks = [IntVar(f"clk{i}") for i in range(NUM_CLOCKS)]
    for i, j in itertools.combinations(range(NUM_CLOCKS), 2):
        backend.add(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
    for clock in clocks:
        backend.add(Le(IntVal(0), clock))
        backend.add(Le(clock, IntVal(3 * NUM_CLOCKS)))
    return clocks


def _run_stream(reduce_db: bool, legacy: bool = False):
    """64 scoped delivery-window queries on one incremental backend."""
    original = dpllt.SatSolver
    if legacy:
        dpllt.SatSolver = LegacySatSolver
    try:
        backend = DpllTBackend(reduce_db=reduce_db, idl_propagation=False)
        clocks = _delivery_order_base(backend)
        live_trace = []
        start = time.perf_counter()
        for query in range(NUM_QUERIES):
            anchor = query % NUM_WINDOWS
            backend.push()
            for clock in clocks:
                backend.add(Le(IntVal(anchor), clock))
                backend.add(Le(clock, IntVal(anchor + NUM_CLOCKS - 2)))
            outcome = backend.check()
            assert outcome is CheckResult.UNSAT, (reduce_db, query, outcome)
            backend.pop()
            live_trace.append(backend.engine._sat.num_learned)
        seconds = time.perf_counter() - start
        sat_stats = backend.engine._sat.stats
        return {
            "seconds": seconds,
            "live_trace": live_trace,
            "peak_live": sat_stats.max_live_learned,
            "learned_total": sat_stats.learned_clauses,
            "reduce_rounds": sat_stats.reduce_db_rounds,
            "clauses_deleted": sat_stats.clauses_deleted,
            "conflicts": sat_stats.conflicts,
            "decisions": sat_stats.decisions,
        }
    finally:
        dpllt.SatSolver = original


@pytest.fixture(scope="module")
def stream_results():
    return {
        "enabled": _run_stream(reduce_db=True),
        "disabled": _run_stream(reduce_db=False),
        "legacy": _run_stream(reduce_db=True, legacy=True),
    }


@pytest.mark.benchmark(group="clause-db")
def test_flat_core_speeds_up_long_query_stream(stream_results, table_printer):
    """The tentpole gate: the flat arena core must run the stream >= 2x
    faster than the legacy object core (~3.5x measured) while taking the
    *bit-identical* search path — same conflicts, decisions, learned
    clauses, reduction rounds, deletions, and live-clause peak."""
    flat = stream_results["enabled"]
    legacy = stream_results["legacy"]
    speedup = legacy["seconds"] / flat["seconds"]

    table_printer(
        f"Flat arena core vs legacy object core "
        f"({NUM_QUERIES}-query delivery-window stream, reduction on)",
        ["core", "seconds", "conflicts", "learned total", "rounds", "deleted"],
        [
            [
                "flat",
                f"{flat['seconds']:.2f}",
                flat["conflicts"],
                flat["learned_total"],
                flat["reduce_rounds"],
                flat["clauses_deleted"],
            ],
            [
                "legacy",
                f"{legacy['seconds']:.2f}",
                legacy["conflicts"],
                legacy["learned_total"],
                legacy["reduce_rounds"],
                legacy["clauses_deleted"],
            ],
            ["speedup", f"{speedup:.2f}x", "", "", "", ""],
        ],
    )

    for counter in (
        "conflicts",
        "decisions",
        "learned_total",
        "reduce_rounds",
        "clauses_deleted",
        "peak_live",
        "live_trace",
    ):
        assert flat[counter] == legacy[counter], (counter, flat[counter], legacy[counter])
    assert speedup >= 2.0, (
        f"flat core only {speedup:.2f}x faster "
        f"({flat['seconds']:.2f}s vs {legacy['seconds']:.2f}s legacy)"
    )


@pytest.mark.benchmark(group="clause-db")
def test_reduce_db_does_not_tax_the_stream(stream_results, table_printer):
    """Reduction fires (rounds > 0, deletions > 0) and must not slow the
    stream down.  On the flat core the two arms tie on wall time at this
    workload size — the reducer's job here is bounding memory (next
    test), so the gate is no-overhead, not speedup."""
    enabled = stream_results["enabled"]
    disabled = stream_results["disabled"]
    speedup = disabled["seconds"] / enabled["seconds"]

    table_printer(
        f"ReduceDB on a {NUM_QUERIES}-query delivery-window stream "
        f"({NUM_CLOCKS} clocks, one incremental backend)",
        ["reduction", "seconds", "peak live", "learned total", "rounds", "deleted"],
        [
            [
                "enabled",
                f"{enabled['seconds']:.2f}",
                enabled["peak_live"],
                enabled["learned_total"],
                enabled["reduce_rounds"],
                enabled["clauses_deleted"],
            ],
            [
                "disabled",
                f"{disabled['seconds']:.2f}",
                disabled["peak_live"],
                disabled["learned_total"],
                disabled["reduce_rounds"],
                disabled["clauses_deleted"],
            ],
            ["speedup", f"{speedup:.2f}x", "", "", "", ""],
        ],
    )

    assert enabled["reduce_rounds"] > 0
    assert enabled["clauses_deleted"] > 0
    assert disabled["reduce_rounds"] == 0
    assert speedup >= 0.8, (
        f"reduction taxes the stream {1 / speedup:.2f}x "
        f"({enabled['seconds']:.2f}s vs {disabled['seconds']:.2f}s)"
    )


@pytest.mark.benchmark(group="clause-db")
def test_live_clause_count_stays_bounded(stream_results):
    """The live set plateaus under reduction instead of growing without
    bound: well under the unreduced peak, flat across the second half of
    the stream, while clauses keep being learned (so the plateau is the
    reducer's doing, not a quiet search)."""
    enabled = stream_results["enabled"]
    disabled = stream_results["disabled"]

    assert enabled["peak_live"] <= 0.66 * disabled["peak_live"], (
        enabled["peak_live"],
        disabled["peak_live"],
    )
    half = NUM_QUERIES // 2
    mid_live = max(enabled["live_trace"][:half])
    end_live = max(enabled["live_trace"])
    assert end_live <= 1.15 * mid_live, (mid_live, end_live)
    # The stream kept learning long after the plateau was reached.
    assert enabled["learned_total"] > 2 * enabled["peak_live"]


@pytest.mark.benchmark(group="clause-db")
def test_verify_many_stream_verdicts_and_overhead(table_printer):
    """A real 64-trace verify_many batch: identical verdicts with and
    without reduction, and no material overhead on light traffic."""
    traces = [
        run_program(
            racy_fanin(3 + (seed % 2), assert_first_from_sender0=True),
            seed=seed,
        ).trace
        for seed in range(NUM_QUERIES)
    ]
    start = time.perf_counter()
    enabled = verify_many(traces)
    enabled_seconds = time.perf_counter() - start
    start = time.perf_counter()
    disabled = verify_many(traces, reduce_db=False)
    disabled_seconds = time.perf_counter() - start

    assert [r.verdict for r in enabled] == [r.verdict for r in disabled]
    table_printer(
        "verify_many x64 (racy fan-in recordings)",
        ["reduction", "seconds"],
        [
            ["enabled", f"{enabled_seconds:.2f}"],
            ["disabled", f"{disabled_seconds:.2f}"],
        ],
    )
    # Light checks never reach the budget; the reducer must cost nothing.
    assert enabled_seconds <= 1.5 * disabled_seconds


@pytest.mark.benchmark(group="idl-propagation")
def test_idl_propagation_converts_conflicts_to_propagations(table_printer):
    """The ordering workload, propagation lane on vs off: entailed bounds
    must arrive as unit propagations (count > 0) and theory conflicts must
    drop strictly below the veto-only run's."""
    clocks = [IntVar(f"snd{i}") for i in range(6)]
    terms = []
    for i, j in itertools.combinations(range(6), 2):
        terms.append(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
    for clock in clocks:
        terms.append(Le(IntVal(0), clock))
        terms.append(Le(clock, IntVal(4)))

    results = {}
    for label, flag in (("on", True), ("off", False)):
        engine = DpllTEngine(terms, idl_propagation=flag)
        start = time.perf_counter()
        verdict = engine.check()
        results[label] = (time.perf_counter() - start, verdict, engine.stats)

    on_seconds, on_verdict, on_stats = results["on"]
    off_seconds, off_verdict, off_stats = results["off"]
    table_printer(
        "IDL bound propagation on the delivery-window ordering workload",
        ["propagation", "seconds", "theory conflicts", "idl propagations", "verdict"],
        [
            [
                "on",
                f"{on_seconds:.2f}",
                on_stats.theory_conflicts,
                on_stats.theory_propagations_idl,
                on_verdict.value,
            ],
            [
                "off",
                f"{off_seconds:.2f}",
                off_stats.theory_conflicts,
                off_stats.theory_propagations_idl,
                off_verdict.value,
            ],
        ],
    )

    assert on_verdict is CheckResult.UNSAT and off_verdict is CheckResult.UNSAT
    assert on_stats.theory_propagations_idl > 0
    assert off_stats.theory_propagations_idl == 0
    assert on_stats.theory_conflicts < off_stats.theory_conflicts
