"""Experiment: overhead of the partial-match (deadlock) encoding.

The partial-match extension adds an unmatched indicator per receive,
executed guards inside every match disjunct and one blocking-semantics
implication per receive.  This benchmark gates the cost on the paper's
Figure 1 workload: encoding the partial-match problem must stay under 2x
the base encoding, so deadlock checking remains in the same complexity
class as the paper's safety analysis.

A second table reports how both encodings and their solve times grow on the
fan-in family, the shape whose candidate sets grow fastest.
"""

import time

import pytest

from repro.encoding import DeadlockProperty, EncoderOptions, TraceEncoder
from repro.program import run_program
from repro.smt.backend import create_backend
from repro.workloads import figure1_program, racy_fanin

#: The acceptance gate: partial-match encode time < 2x base encode time.
MAX_OVERHEAD = 2.0
#: Timing repetitions (single encodes are microseconds; amortise noise).
REPEATS = 200


def _encode_seconds(trace, options, properties, repeats=REPEATS) -> float:
    encoder = TraceEncoder(options)
    start = time.perf_counter()
    for _ in range(repeats):
        encoder.encode(trace, properties=properties)
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="deadlock")
def test_partial_match_encoding_overhead_gate(table_printer):
    """Partial-match encoding stays < 2x base encoding on Figure 1."""
    trace = run_program(figure1_program(assert_a_is_y=True), seed=0).trace
    base = _encode_seconds(trace, EncoderOptions(), None)
    partial = _encode_seconds(
        trace,
        EncoderOptions(partial_matches=True),
        [DeadlockProperty()],
    )
    overhead = partial / base
    table_printer(
        "Figure 1: base vs partial-match encoding",
        ["encoding", "mean encode (us)", "overhead"],
        [
            ["base (PMatchPairs)", f"{base * 1e6:.1f}", "1.00x"],
            ["partial (PMatchPartial)", f"{partial * 1e6:.1f}", f"{overhead:.2f}x"],
        ],
    )
    assert overhead < MAX_OVERHEAD, (
        f"partial-match encoding is {overhead:.2f}x the base encoding "
        f"(gate: < {MAX_OVERHEAD}x)"
    )


@pytest.mark.benchmark(group="deadlock")
def test_deadlock_check_scaling(table_printer):
    """Problem sizes and end-to-end deadlock-check time on fan-in growth."""
    rows = []
    for senders in (2, 4, 6):
        trace = run_program(racy_fanin(senders), seed=0).trace
        problem = TraceEncoder(EncoderOptions(partial_matches=True)).encode(
            trace, properties=[DeadlockProperty()]
        )
        backend = create_backend(None)
        backend.add_all(problem.assertions())
        start = time.perf_counter()
        outcome = backend.check()
        solve = time.perf_counter() - start
        summary = problem.size_summary()
        rows.append(
            [
                senders,
                summary["match_constraints"],
                summary["blocking_constraints"],
                f"{solve * 1000:.1f}",
                outcome.name,
            ]
        )
        assert outcome.name == "UNSAT"  # racy_fanin is deadlock-free
    table_printer(
        "Deadlock check on racy_fanin(n)",
        ["senders", "match", "blocking", "solve (ms)", "verdict"],
        rows,
    )
