"""Experiment "Figures 2 & 3": cost and size of the match-pair / uniqueness encoding.

Times the construction of ``PMatchPairs`` (Figure 2) and ``PUnique``
(Figure 3) and reports how the generated problem grows with the number of
racing messages, including the ablation between the literal all-pairs
uniqueness loop of Figure 3 and the pruned (intersecting-candidates-only)
variant.
"""

import pytest

from repro.encoding import (
    EncoderOptions,
    TraceEncoder,
    match_pair_constraints,
    uniqueness_constraints,
    uniqueness_constraints_pruned,
)
from repro.matching import endpoint_match_pairs
from repro.program import run_program
from repro.workloads import racy_fanin


@pytest.fixture(scope="module")
def fanin_traces():
    return {n: run_program(racy_fanin(n), seed=0).trace for n in (2, 4, 6, 8)}


@pytest.mark.benchmark(group="encoding")
def test_match_pair_encoding_time(benchmark, fanin_traces):
    """Figure 2 algorithm on an 8-sender fan-in trace."""
    trace = fanin_traces[8]
    pairs = endpoint_match_pairs(trace)
    constraints = benchmark(lambda: match_pair_constraints(trace, pairs))
    assert len(constraints) == 8


@pytest.mark.benchmark(group="encoding")
def test_uniqueness_encoding_time(benchmark, fanin_traces):
    """Figure 3 algorithm on an 8-sender fan-in trace."""
    pairs = endpoint_match_pairs(fanin_traces[8])
    constraints = benchmark(lambda: uniqueness_constraints(pairs))
    assert len(constraints) == 8 * 7 // 2


@pytest.mark.benchmark(group="encoding")
def test_full_encoding_time(benchmark, fanin_traces, table_printer):
    """Whole-problem encoding cost, plus the size-growth table."""
    encoder = TraceEncoder()
    trace = fanin_traces[8]
    problem = benchmark(lambda: encoder.encode(trace, properties=[]))
    assert problem.size_summary()["receives"] == 8

    rows = []
    for n, t in sorted(fanin_traces.items()):
        summary = TraceEncoder().encode(t, properties=[]).size_summary()
        rows.append(
            [
                n,
                summary["events"],
                summary["candidate_pairs"],
                summary["order_constraints"],
                summary["match_constraints"],
                summary["unique_constraints"],
            ]
        )
    table_printer(
        "Encoding size growth (racy fan-in, N senders x 1 message)",
        ["N", "events", "cand. pairs", "|POrder|", "|PMatchPairs|", "|PUnique|"],
        rows,
    )


@pytest.mark.benchmark(group="encoding")
def test_uniqueness_pruning_ablation(benchmark, table_printer):
    """Ablation: Figure 3 verbatim vs pruned uniqueness on a mixed workload."""
    from repro.workloads import client_server

    trace = run_program(client_server(4), seed=0).trace
    pairs = endpoint_match_pairs(trace)

    benchmark(lambda: uniqueness_constraints_pruned(pairs))

    full = uniqueness_constraints(pairs)
    pruned = uniqueness_constraints_pruned(pairs)
    table_printer(
        "PUnique ablation (client/server, 4 clients)",
        ["variant", "constraints"],
        [
            ["Figure 3 (all pairs)", len(full)],
            ["pruned (overlapping candidates only)", len(pruned)],
        ],
    )
    assert len(pruned) <= len(full)


@pytest.mark.benchmark(group="encoding")
def test_clock_bounds_ablation(benchmark, table_printer):
    """Ablation: effect of the optional clock-range constraints on solve time."""
    import time

    from repro.smt import Solver

    trace = run_program(racy_fanin(5, assert_first_from_sender0=True), seed=0).trace
    rows = []
    for label, options in [
        ("with clock bounds", EncoderOptions(include_clock_bounds=True)),
        ("without clock bounds", EncoderOptions(include_clock_bounds=False)),
    ]:
        problem = TraceEncoder(options).encode(trace)
        start = time.perf_counter()
        solver = Solver()
        solver.add_all(problem.assertions())
        outcome = solver.check()
        elapsed = time.perf_counter() - start
        rows.append([label, len(problem.assertions()), outcome.value, f"{elapsed*1000:.1f} ms"])
    table_printer(
        "Clock-bound ablation (racy fan-in, 5 senders, racy assertion)",
        ["variant", "assertions", "result", "solve time"],
        rows,
    )

    problem = TraceEncoder(EncoderOptions(include_clock_bounds=True)).encode(trace)

    def solve():
        solver = Solver()
        solver.add_all(problem.assertions())
        return solver.check()

    benchmark(solve)
