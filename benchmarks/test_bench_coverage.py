"""Experiment "coverage": behaviours admitted by each analysis across workloads.

Generalises the Figure 4 comparison beyond the paper's 3-thread example: for
each workload we count the distinct send/receive matchings each analysis
admits and whether it finds the planted racy assertion violation.  The shape
to check: the delay-aware analyses (this work, exhaustive exploration) agree
exactly, and the delay-free analyses (MCC) admit a strict subset and miss the
delay-dependent bugs.
"""

import pytest

from repro.baselines import ExplicitStateExplorer, MccChecker
from repro.baselines.explicit import canonical_matching
from repro.program import run_program
from repro.verification import Verdict, VerificationSession
from repro.workloads import figure1_program, nonblocking_fanin, racy_fanin, scatter_gather


WORKLOADS = [
    ("figure1 (A==Y)", figure1_program(assert_a_is_y=True)),
    ("racy_fanin(2)", racy_fanin(2, assert_first_from_sender0=True)),
    ("racy_fanin(3)", racy_fanin(3, assert_first_from_sender0=True)),
    ("nonblocking_fanin(2)", nonblocking_fanin(2)),
    ("scatter_gather(2, order)", scatter_gather(2, assert_order=True)),
]


def _symbolic_coverage(program):
    # One session per program: the trace is encoded once and the
    # enumeration + verdict queries share one incremental solver.
    session = VerificationSession.from_program(program, seed=0)
    pairings = session.enumerate_pairings()
    canonical = {canonical_matching(session.trace, m) for m in pairings}
    verdict = session.verdict()
    return canonical, verdict.verdict is Verdict.VIOLATION


@pytest.mark.benchmark(group="coverage")
def test_symbolic_coverage_time(benchmark):
    program = racy_fanin(3, assert_first_from_sender0=True)
    pairings, violated = benchmark.pedantic(
        lambda: _symbolic_coverage(program), rounds=3, iterations=1
    )
    assert violated and len(pairings) == 6


@pytest.mark.benchmark(group="coverage")
def test_coverage_table(benchmark, table_printer):
    """The per-tool coverage table (paper's Figure 4, generalised)."""
    rows = []
    for name, program in WORKLOADS:
        symbolic, symbolic_bug = _symbolic_coverage(program)
        explicit = ExplicitStateExplorer(program).explore()
        mcc = MccChecker(program).check()
        rows.append(
            [
                name,
                len(symbolic),
                explicit.pairing_count(),
                mcc.pairing_count(),
                symbolic_bug,
                bool(explicit.assertion_failures),
                mcc.property_violated,
            ]
        )
        # Soundness/completeness cross-checks baked into the harness:
        assert symbolic == explicit.matchings
        assert mcc.matchings <= symbolic
    table_printer(
        "Behaviours admitted / bug found per analysis",
        [
            "workload",
            "pairings: this work",
            "pairings: exhaustive",
            "pairings: MCC",
            "bug: this work",
            "bug: exhaustive",
            "bug: MCC",
        ],
        rows,
    )

    benchmark.pedantic(
        lambda: _symbolic_coverage(figure1_program(assert_a_is_y=True)),
        rounds=3,
        iterations=1,
    )
