"""Experiment "§3 match pairs": precise DFS generation vs endpoint over-approximation.

The paper notes that the precise match-pair set (obtained by depth-first
abstract execution) "can be prohibitively expensive in computation time" and
proposes an over-approximation as future work.  This benchmark regenerates
that trade-off: generation time and set size for both strategies as the
number of racing messages grows; the shape to check is the factorial blow-up
of the precise enumeration against the flat cost of the endpoint strategy.
"""

import time

import pytest

from repro.matching import (
    count_feasible_matchings,
    endpoint_match_pairs,
    precise_match_pairs,
)
from repro.program import run_program
from repro.workloads import racy_fanin, token_ring


@pytest.fixture(scope="module")
def traces():
    return {
        ("fanin", n): run_program(racy_fanin(n), seed=0).trace for n in (2, 3, 4, 5)
    } | {
        ("ring", n): run_program(token_ring(n, rounds=2), seed=0).trace for n in (3, 4)
    }


@pytest.mark.benchmark(group="matchpairs")
def test_endpoint_generation_time(benchmark, traces):
    trace = traces[("fanin", 5)]
    pairs = benchmark(lambda: endpoint_match_pairs(trace))
    assert len(pairs) == 5


@pytest.mark.benchmark(group="matchpairs")
def test_precise_generation_time(benchmark, traces):
    trace = traces[("fanin", 4)]
    pairs = benchmark(lambda: precise_match_pairs(trace))
    assert len(pairs) == 4


@pytest.mark.benchmark(group="matchpairs")
def test_generation_cost_table(benchmark, traces, table_printer):
    """The paper-shaped comparison: precise cost explodes, endpoint stays flat."""
    rows = []
    for (kind, n), trace in sorted(traces.items()):
        start = time.perf_counter()
        endpoint = endpoint_match_pairs(trace)
        endpoint_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        precise = precise_match_pairs(trace)
        precise_ms = (time.perf_counter() - start) * 1000

        matchings = count_feasible_matchings(trace)
        rows.append(
            [
                f"{kind}-{n}",
                endpoint.pair_count(),
                f"{endpoint_ms:.2f}",
                precise.pair_count(),
                f"{precise_ms:.2f}",
                matchings,
            ]
        )
    table_printer(
        "Match-pair generation: endpoint over-approximation vs precise DFS",
        ["workload", "endpoint pairs", "endpoint ms", "precise pairs", "precise ms", "feasible matchings"],
        rows,
    )

    # Benchmark the precise strategy on the largest fan-in for the timing DB.
    trace = traces[("fanin", 5)]
    benchmark(lambda: precise_match_pairs(trace))


@pytest.mark.benchmark(group="matchpairs")
def test_overapproximation_is_safe(benchmark, traces):
    """The precise set is always contained in the endpoint set (safety)."""

    def check_all():
        for trace in traces.values():
            assert precise_match_pairs(trace).is_subset_of(endpoint_match_pairs(trace))
        return True

    assert benchmark(check_all)
