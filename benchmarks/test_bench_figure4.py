"""Experiment "Figure 4": which behaviours does each analysis admit?

The paper's central qualitative claim: on the Figure 1 program,

* MCC and the Elwakil/Yang-style encoding (no transmission delays) admit only
  the Figure 4a pairing and judge the assertion ``A == Y`` safe;
* the paper's encoding admits Figure 4a *and* 4b and reports the violation.

This benchmark regenerates exactly that table and times each analysis.
"""

import pytest

from repro.baselines import ElwakilEncoder, ExplicitStateExplorer, MccChecker
from repro.encoding.variables import match_var
from repro.encoding.witness import Witness, decode_witness
from repro.program import run_program
from repro.smt import And, CheckResult, Eq, IntVal, Not, Solver
from repro.verification import Verdict, VerificationSession
from repro.workloads import figure1_program, figure4a_pairing, figure4b_pairing


def _enumerate_encoder_pairings(encoder, trace, cap=10):
    """Blocking-clause loop for baseline encoders (no session support)."""
    problem = encoder.encode(trace, properties=[])
    solver = Solver()
    solver.add_all(problem.assertions(include_property=False))
    pairings = []
    while solver.check() is CheckResult.SAT and len(pairings) < cap:
        witness = decode_witness(problem, solver.model())
        pairings.append(witness.pairing_description(problem))
        solver.add(
            Not(And([Eq(match_var(r), IntVal(s)) for r, s in witness.matching.items()]))
        )
    return pairings


@pytest.mark.benchmark(group="figure4")
def test_this_work_admits_both_pairings(benchmark, table_printer):
    program = figure1_program(assert_a_is_y=True)
    trace = run_program(program, seed=0).trace

    result = benchmark(lambda: VerificationSession(trace).verdict())
    assert result.verdict is Verdict.VIOLATION

    session = VerificationSession(trace)
    pairings = [
        Witness(matching=m).pairing_description(session.problem)
        for m in session.pairings()
    ]
    assert figure4a_pairing() in pairings
    assert figure4b_pairing() in pairings

    table_printer(
        "Figure 4 — this work (delays modelled)",
        ["pairing", "admitted"],
        [
            ["4a: A<-Y, C<-Z, B<-X", figure4a_pairing() in pairings],
            ["4b: A<-X, C<-Z, B<-Y", figure4b_pairing() in pairings],
            ["finds A==Y violation", result.verdict is Verdict.VIOLATION],
        ],
    )


@pytest.mark.benchmark(group="figure4")
def test_elwakil_admits_only_4a(benchmark, table_printer):
    trace = run_program(figure1_program(assert_a_is_y=True), seed=0).trace

    def solve():
        problem = ElwakilEncoder().encode(trace)
        solver = Solver()
        solver.add_all(problem.assertions())
        return solver.check()

    outcome = benchmark(solve)
    assert outcome is CheckResult.UNSAT  # misses the bug

    pairings = _enumerate_encoder_pairings(ElwakilEncoder(), trace)
    table_printer(
        "Figure 4 — Elwakil/Yang-style (delays ignored)",
        ["pairing", "admitted"],
        [
            ["4a: A<-Y, C<-Z, B<-X", figure4a_pairing() in pairings],
            ["4b: A<-X, C<-Z, B<-Y", figure4b_pairing() in pairings],
            ["finds A==Y violation", False],
        ],
    )
    assert figure4b_pairing() not in pairings


@pytest.mark.benchmark(group="figure4")
def test_mcc_admits_only_4a(benchmark, table_printer):
    program = figure1_program(assert_a_is_y=True)

    result = benchmark(lambda: MccChecker(program).check())
    assert not result.property_violated
    assert result.pairing_count() == 1

    ground_truth = ExplicitStateExplorer(program).explore()
    table_printer(
        "Figure 4 — MCC-style vs ground truth",
        ["analysis", "pairings admitted", "finds A==Y violation"],
        [
            ["MCC-style (no delays)", result.pairing_count(), result.property_violated],
            [
                "exhaustive with delays (ground truth)",
                ground_truth.pairing_count(),
                bool(ground_truth.assertion_failures),
            ],
        ],
    )
    assert ground_truth.pairing_count() == 2
