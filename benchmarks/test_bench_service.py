"""Experiment "service": the warm daemon against a cold request stream.

The workload is the service's design target: a 64-query mixed-fingerprint
stream (8 distinct verification questions × 8 recording seeds) pushed by
concurrent clients into a ``jobs=4`` worker pool.  Two acceptance gates:

* **Warm throughput.**  The second pass over the stream — every question
  now has a warm session in some worker's pool — must run at **>= 2x** the
  cold pass's queries/sec.  The win is structural: a pool hit skips
  recording, fingerprinting and encoding, and lands on an incremental
  backend that has already learned the instance.
* **Deadline isolation.**  A request that blows its deadline (a stalling
  backend that never polls the soft deadline) must come back
  ``UNKNOWN(reason=timeout)`` within **2x** the deadline — the worker is
  killed and respawned — and the very next request on the same daemon must
  succeed.  One poisoned query costs one worker process, never the daemon.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import faults
from repro.service import protocol
from repro.service.server import VerificationService

#: Eight distinct verification questions (distinct trace fingerprints)...
DISTINCT_SPECS = [
    {"workload": "figure1"},
    {"workload": "racy_fanin", "params": {"senders": 2}},
    {"workload": "racy_fanin", "params": {"senders": 3}},
    {"workload": "racy_fanin", "params": {"senders": 4}},
    {"workload": "pipeline", "params": {"senders": 6}},
    {"workload": "scatter_gather", "params": {"senders": 3}},
    {"workload": "client_server", "params": {"senders": 3}},
    {"workload": "token_ring", "params": {"senders": 4}},
]
#: ...streamed under eight recording seeds each: 64 queries.
SEEDS = range(8)


def _stream():
    return [
        dict(spec, seed=seed, op="verify")
        for seed in SEEDS
        for spec in DISTINCT_SPECS
    ]


def _push_stream(service, queries, client_threads=8):
    """Submit the stream through concurrent clients; returns (seconds, verdicts)."""

    def one(query):
        response = service.handle_json(
            protocol.make_request("verify", query, request_id=1)
        )
        assert "error" not in response, response
        return response["result"]["result"]["verdict"]

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=client_threads) as executor:
        verdicts = list(executor.map(one, queries))
    return time.perf_counter() - start, verdicts


@pytest.mark.benchmark(group="service")
def test_warm_pool_beats_cold_stream(benchmark, table_printer):
    # The perf gates below are only meaningful injection-free: the fault
    # harness's hot-path cost must be exactly one module-global read.
    assert faults.ACTIVE is None, "fault plan leaked into the benchmark run"
    queries = _stream()
    assert len(queries) == 64
    service = VerificationService(jobs=4)
    try:
        cold_seconds, cold_verdicts = _push_stream(service, queries)
        warm_seconds, warm_verdicts = _push_stream(service, queries)
        stats = service.handle_json(
            protocol.make_request("stats", request_id=2)
        )["result"]

        assert warm_verdicts == cold_verdicts
        assert stats["pool"]["hits"] >= len(queries), (
            "the warm pass must be answered from warm sessions, got "
            f"{stats['pool']['hits']} hits"
        )

        cold_qps = len(queries) / cold_seconds
        warm_qps = len(queries) / warm_seconds
        table_printer(
            "64-query mixed-fingerprint stream, jobs=4",
            ["pass", "seconds", "queries/sec", "pool hits", "pool misses"],
            [
                ["cold", f"{cold_seconds:.2f}", f"{cold_qps:.0f}", 0, stats["pool"]["misses"]],
                ["warm", f"{warm_seconds:.2f}", f"{warm_qps:.0f}", stats["pool"]["hits"], 0],
            ],
        )
        assert warm_qps >= 2.0 * cold_qps, (
            "warm-pool throughput must be >= 2x cold, got "
            f"{warm_qps:.0f} vs {cold_qps:.0f} queries/sec"
        )

        benchmark.pedantic(
            lambda: _push_stream(service, queries), rounds=3, iterations=1
        )
    finally:
        service.close()


@pytest.mark.benchmark(group="service")
def test_deadline_kill_bounds_latency_and_spares_the_daemon(benchmark):
    from repro.smt.backend import _REGISTRY, DpllTBackend, register_backend
    from repro.smt.dpllt import CheckResult

    class StallingBackend(DpllTBackend):
        """Never polls the soft deadline — the hard worker kill must fire."""

        name = "bench-stalling"

        def check(self, *assumptions):
            time.sleep(60.0)
            return CheckResult.UNKNOWN

    register_backend("bench-stalling", StallingBackend, replace=True)
    deadline_s = 2.0
    try:
        # Workers fork from this process, inheriting the stalling backend.
        service = VerificationService(jobs=2)
        try:
            start = time.perf_counter()
            response = service.handle_json(
                protocol.make_request(
                    "verify",
                    {
                        "workload": "figure1",
                        "backend": "bench-stalling",
                        "timeout_s": deadline_s,
                    },
                    request_id=1,
                )
            )
            elapsed = time.perf_counter() - start
            result = response["result"]["result"]
            assert result["verdict"] == "unknown"
            assert result["unknown_reason"] == "timeout"
            assert elapsed <= 2.0 * deadline_s, (
                f"timeout must surface within 2x the deadline, took {elapsed:.2f}s"
            )

            # The daemon is unharmed: the killed worker was respawned and
            # the next request (same routing spec, default backend) solves.
            follow_up = service.handle_json(
                protocol.make_request("verify", {"workload": "figure1"}, request_id=2)
            )
            assert follow_up["result"]["result"]["verdict"] == "violation"

            stats = service.handle_json(
                protocol.make_request("stats", request_id=3)
            )["result"]
            assert stats["worker_kills"] >= 1
            assert stats["timeouts"] >= 1

            benchmark.pedantic(
                lambda: service.handle_json(
                    protocol.make_request(
                        "verify", {"workload": "figure1"}, request_id=4
                    )
                ),
                rounds=3,
                iterations=1,
            )
        finally:
            service.close()
    finally:
        _REGISTRY.pop("bench-stalling", None)
