"""Benchmark: online DPLL(T) versus the offline lazy loop.

The offline loop pays two bills per theory conflict that the online engine
does not: a complete propositional model must be produced before the theory
ever looks at it, and the theory solvers are rebuilt from scratch on every
candidate (translate + assert every assigned atom, then solve).  On a
theory-conflict-heavy problem — the Figure 4 class of questions, "which
delivery orderings does the model admit?" — those bills dominate.

The gated workload makes the ordering question sharp: ``n`` racing sends
must occupy a delivery window of only ``n - 1`` logical slots (every pair
ordered one way or the other, all clocks within bounds) while a deliberately
large satisfiable delivery chain rides along, so every offline iteration
re-translates and re-checks the whole chain just to rediscover one small
ordering cycle.  The online engine catches each cycle on the partial
assignment that creates it and never re-pays for the chain.

Gate: **online >= 2x faster than offline** (the tentpole claim of the
online-theory refactor), with identical verdicts.  A secondary comparison
runs the paper-shaped admissible-pairing enumeration on a racy fan-in and
must show online at least modestly ahead there too.
"""

import itertools
import time

import pytest

from repro.program.interpreter import run_program
from repro.smt.dpllt import CheckResult, DpllTEngine
from repro.smt.terms import IntVal, IntVar, Le, Lt, Or
from repro.verification.session import VerificationSession
from repro.workloads.generators import racy_fanin


def _delivery_window_workload(num_sends: int, chain_length: int):
    """``num_sends`` totally-ordered clocks in ``num_sends - 1`` slots (UNSAT)
    plus a long satisfiable delivery chain as per-iteration ballast."""
    clocks = [IntVar(f"clk{i}") for i in range(num_sends)]
    terms = []
    for i, j in itertools.combinations(range(num_sends), 2):
        terms.append(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
    for clock in clocks:
        terms.append(Le(IntVal(0), clock))
        terms.append(Le(clock, IntVal(num_sends - 2)))
    chain = [IntVar(f"hop{i}") for i in range(chain_length)]
    for earlier, later in zip(chain, chain[1:]):
        terms.append(Lt(earlier, later))
    for hop in chain:
        terms.append(Le(IntVal(0), hop))
        terms.append(Le(hop, IntVal(3 * chain_length)))
    return terms


def _time_check(terms, theory_mode):
    engine = DpllTEngine(terms, theory_mode=theory_mode)
    start = time.perf_counter()
    result = engine.check()
    return time.perf_counter() - start, result, engine.stats


@pytest.mark.benchmark(group="online-theory")
def test_online_beats_offline_2x_on_theory_conflicts(benchmark, table_printer):
    terms = _delivery_window_workload(num_sends=6, chain_length=40)

    online_seconds, online_result, online_stats = _time_check(terms, "online")
    offline_seconds, offline_result, offline_stats = _time_check(terms, "offline")
    # pytest-benchmark timing on the gated configuration (online).
    benchmark(lambda: DpllTEngine(terms, theory_mode="online").check())

    assert online_result is CheckResult.UNSAT
    assert offline_result is CheckResult.UNSAT
    speedup = offline_seconds / online_seconds

    table_printer(
        "Online DPLL(T) vs offline lazy loop (delivery-window ordering)",
        ["mode", "seconds", "theory conflicts", "partial conflicts", "verdict"],
        [
            [
                "online",
                f"{online_seconds:.3f}",
                online_stats.theory_conflicts,
                online_stats.theory_partial_conflicts,
                online_result.value,
            ],
            [
                "offline",
                f"{offline_seconds:.3f}",
                offline_stats.theory_conflicts,
                offline_stats.theory_partial_conflicts,
                offline_result.value,
            ],
            ["speedup", f"{speedup:.2f}x", "", "", ""],
        ],
    )

    # The refactor's headline claim: conflicts caught on partial assignments
    # instead of full models, no per-conflict theory rebuild.
    assert online_stats.theory_partial_conflicts > 0
    assert offline_stats.theory_partial_conflicts == 0
    assert speedup >= 2.0, (
        f"online engine only {speedup:.2f}x faster than offline "
        f"({online_seconds:.3f}s vs {offline_seconds:.3f}s)"
    )


@pytest.mark.benchmark(group="online-theory")
def test_online_ahead_on_pairing_enumeration(table_printer):
    """Paper-shaped secondary check: enumerating every admissible matching
    of a racy fan-in (the Figure 4 question at scale) must not regress
    under the online engine, and should be measurably ahead."""
    trace = run_program(racy_fanin(4), seed=0).trace

    timings = {}
    counts = {}
    for mode in ("online", "offline"):
        session = VerificationSession(trace, theory_mode=mode)
        start = time.perf_counter()
        counts[mode] = sum(1 for _ in session.pairings())
        timings[mode] = time.perf_counter() - start

    assert counts["online"] == counts["offline"] == 24
    ratio = timings["offline"] / timings["online"]
    table_printer(
        "Admissible-pairing enumeration (racy_fanin(4), 24 matchings)",
        ["mode", "seconds"],
        [
            ["online", f"{timings['online']:.3f}"],
            ["offline", f"{timings['offline']:.3f}"],
            ["ratio", f"{ratio:.2f}x"],
        ],
    )
    assert ratio >= 1.2, f"online enumeration only {ratio:.2f}x ahead"
