"""Experiment "Fusion vs Inspect motivation": symbolic vs explicit-state runtime.

The paper's introduction motivates SMT-based modelling with Fusion's large
speed-ups over the DPOR-based Inspect.  This benchmark reproduces the same
*shape* on our substrate: verification wall-clock time of

* the symbolic verifier (one SMT query per property),
* exhaustive explicit-state exploration with delays (ground truth),
* the sleep-set (DPOR-style) reduced exploration,

as the number of racing senders grows.  The expected shape: the explicit
explorers' cost grows with the factorial number of interleavings while the
symbolic query grows much more slowly — the crossover is at very small N.
"""

import time

import pytest

from repro.baselines import ExplicitStateExplorer, SleepSetExplorer
from repro.verification import SymbolicVerifier, Verdict
from repro.workloads import racy_fanin


def _symbolic_seconds(program) -> float:
    start = time.perf_counter()
    result = SymbolicVerifier().verify_program(program, seed=0)
    assert result.verdict is Verdict.VIOLATION
    return time.perf_counter() - start


def _explicit_seconds(program) -> float:
    start = time.perf_counter()
    result = ExplicitStateExplorer(program).explore()
    assert result.assertion_failures
    return time.perf_counter() - start


def _dpor_seconds(program) -> float:
    start = time.perf_counter()
    result = SleepSetExplorer(program).explore()
    assert result.assertion_failures
    return time.perf_counter() - start


@pytest.mark.benchmark(group="symbolic-vs-explicit")
def test_symbolic_verification_scaling(benchmark):
    program = racy_fanin(4, assert_first_from_sender0=True)
    result = benchmark(lambda: SymbolicVerifier().verify_program(program, seed=0))
    assert result.verdict is Verdict.VIOLATION


@pytest.mark.benchmark(group="symbolic-vs-explicit")
def test_explicit_exploration_scaling(benchmark):
    program = racy_fanin(3, assert_first_from_sender0=True)
    result = benchmark.pedantic(
        lambda: ExplicitStateExplorer(program).explore(), rounds=3, iterations=1
    )
    assert result.assertion_failures


@pytest.mark.benchmark(group="symbolic-vs-explicit")
def test_dpor_exploration_scaling(benchmark):
    program = racy_fanin(3, assert_first_from_sender0=True)
    result = benchmark.pedantic(
        lambda: SleepSetExplorer(program).explore(), rounds=3, iterations=1
    )
    assert result.assertion_failures


@pytest.mark.benchmark(group="symbolic-vs-explicit")
def test_runtime_comparison_table(benchmark, table_printer):
    """The headline series: wall-clock per tool as the race widens."""
    rows = []
    for senders in (2, 3, 4):
        program = racy_fanin(senders, assert_first_from_sender0=True)
        symbolic = _symbolic_seconds(program)
        if senders <= 3:
            explicit = _explicit_seconds(program)
            dpor = _dpor_seconds(program)
            explicit_txt = f"{explicit * 1000:.0f}"
            dpor_txt = f"{dpor * 1000:.0f}"
        else:
            explicit_txt = "(skipped: interleaving explosion)"
            dpor_txt = "(skipped)"
        rows.append([senders, f"{symbolic * 1000:.0f}", dpor_txt, explicit_txt])

    table_printer(
        "Verification wall-clock (ms) — symbolic vs explicit-state, racy fan-in",
        ["senders", "symbolic (this work)", "sleep-set DPOR", "exhaustive"],
        rows,
    )

    # Timed entry for the benchmark database: the largest symbolic instance.
    program = racy_fanin(4, assert_first_from_sender0=True)
    benchmark.pedantic(
        lambda: SymbolicVerifier().verify_program(program, seed=0), rounds=3, iterations=1
    )
