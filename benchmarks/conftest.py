"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one row of the experiment index in
DESIGN.md.  Since the paper is a 2-page short paper, its "results" are the
qualitative Figure 4 comparison plus the motivation that symbolic analyses
scale better than explicit-state exploration; the benchmarks therefore print
small tables (who admits which behaviours, how problem size and runtime grow)
in addition to the pytest-benchmark timing numbers.
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers, rows) -> None:
    """Print an aligned table; benchmarks use this for the paper-style rows."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    print()
    print(f"== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture(scope="session")
def table_printer():
    return print_table
