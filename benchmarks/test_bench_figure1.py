"""Experiment "Figure 1": the paper's example program end to end.

Regenerates the running example: record a trace of the Figure 1 program,
encode it, solve it, and report the full pipeline cost.  The shape to check
against the paper: the assertion ``A == Y`` is *violable* (verdict
"violation"), because the encoding models transmission delays.
"""

import pytest

from repro.program import run_program
from repro.verification import SymbolicVerifier, Verdict
from repro.workloads import figure1_program


@pytest.mark.benchmark(group="figure1")
def test_record_trace(benchmark):
    """Cost of obtaining the input trace (one concrete simulated run)."""
    program = figure1_program(assert_a_is_y=True)
    run = benchmark(lambda: run_program(program, seed=0))
    assert run.ok


@pytest.mark.benchmark(group="figure1")
def test_full_verification_pipeline(benchmark, table_printer):
    """Record + encode + solve + decode for the Figure 1 assertion."""
    program = figure1_program(assert_a_is_y=True)
    verifier = SymbolicVerifier()

    result = benchmark(lambda: verifier.verify_program(program, seed=0))
    assert result.verdict is Verdict.VIOLATION

    summary = result.problem.size_summary()
    table_printer(
        "Figure 1 pipeline (paper: assertion is violable via the Figure 4b behaviour)",
        ["metric", "value"],
        [
            ["verdict", result.verdict.value],
            ["trace events", summary["events"]],
            ["candidate match pairs", summary["candidate_pairs"]],
            ["order constraints", summary["order_constraints"]],
            ["match constraints", summary["match_constraints"]],
            ["unique constraints", summary["unique_constraints"]],
            ["encode time (ms)", f"{result.encode_seconds * 1000:.2f}"],
            ["solve time (ms)", f"{result.solve_seconds * 1000:.2f}"],
            ["counterexample pairing", result.witness.pairing_description(result.problem)],
        ],
    )


@pytest.mark.benchmark(group="figure1")
def test_solver_only(benchmark):
    """Isolated SMT solving cost for the Figure 1 problem."""
    from repro.encoding import TraceEncoder
    from repro.smt import Solver

    trace = run_program(figure1_program(assert_a_is_y=True), seed=0).trace
    problem = TraceEncoder().encode(trace)
    assertions = problem.assertions()

    def solve():
        solver = Solver()
        solver.add_all(assertions)
        return solver.check()

    outcome = benchmark(solve)
    assert outcome.name == "SAT"
