"""Tests for the workload generators and the Figure-1 reference data."""

import pytest

from repro.program import run_program
from repro.utils.errors import ProgramError
from repro.workloads import (
    X_VALUE,
    Y_VALUE,
    Z_VALUE,
    all_feasible_pairings,
    branching_consumer,
    client_server,
    figure1_program,
    figure4a_pairing,
    figure4b_pairing,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    random_program,
    scatter_gather,
    token_ring,
)


class TestFigure1:
    def test_structure_matches_paper(self):
        program = figure1_program()
        assert program.thread_names() == ["t0", "t1", "t2"]
        assert len(program.get_thread("t0").body) == 2  # recv(A); recv(B)
        assert len(program.get_thread("t1").body) == 2  # recv(C); send(X)
        assert len(program.get_thread("t2").body) == 2  # send(Y); send(Z)

    def test_payload_constants_distinct(self):
        assert len({X_VALUE, Y_VALUE, Z_VALUE}) == 3

    def test_assertion_variants(self):
        with_y = figure1_program(assert_a_is_y=True)
        assert len(with_y.get_thread("t0").body) == 3
        with_x = figure1_program(assert_a_is_x=True)
        assert len(with_x.get_thread("t0").body) == 3

    def test_pairings_reference_data(self):
        a, b = figure4a_pairing(), figure4b_pairing()
        assert a != b
        assert a["recv(C)"] == b["recv(C)"] == "send(30)@t2"
        assert all_feasible_pairings() == [a, b]


class TestGeneratorParameters:
    def test_racy_fanin_sizes(self):
        program = racy_fanin(4, messages_per_sender=2)
        assert len(program.threads) == 5
        receiver = program.get_thread("recv")
        assert len(receiver.body) == 8

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ProgramError):
            racy_fanin(0)
        with pytest.raises(ProgramError):
            pipeline(1)
        with pytest.raises(ProgramError):
            token_ring(1)
        with pytest.raises(ProgramError):
            scatter_gather(0)
        with pytest.raises(ProgramError):
            client_server(0)
        with pytest.raises(ProgramError):
            nonblocking_fanin(0)

    def test_all_generators_validate(self):
        for program in [
            racy_fanin(3),
            racy_fanin(2, messages_per_sender=3),
            pipeline(5),
            token_ring(4, rounds=2),
            scatter_gather(4),
            client_server(3),
            nonblocking_fanin(4),
            branching_consumer(),
        ]:
            program.validate()
            assert program.statement_count() > 0


class TestGeneratorSemantics:
    def test_pipeline_final_value(self):
        run = run_program(pipeline(5, initial_value=10), seed=0)
        assert run.ok
        assert run.final_environments["stage4"]["w"] == 14

    def test_token_ring_token_value_preserved(self):
        run = run_program(token_ring(4, token=99), seed=2)
        assert run.ok
        assert run.final_environments["node0"]["tok"] == 99

    def test_scatter_gather_sum(self):
        run = run_program(scatter_gather(4), seed=3)
        assert run.ok
        total = sum(run.final_environments["master"][f"r{i}"] for i in range(4))
        assert total == sum(2 * (w + 1) for w in range(4))

    def test_client_server_replies_exceed_marker(self):
        run = run_program(client_server(3), seed=1)
        assert run.ok
        for client in range(3):
            assert run.final_environments[f"client{client}"]["reply"] > 1000

    def test_branching_consumer_always_satisfies_assertion(self):
        for seed in range(6):
            run = run_program(branching_consumer(), seed=seed)
            assert run.ok

    def test_racy_fanin_payloads_are_distinct(self):
        run = run_program(racy_fanin(3, messages_per_sender=2), seed=0)
        payloads = [s.payload_value for s in run.trace.sends()]
        assert len(payloads) == len(set(payloads))


class TestRandomProgram:
    @staticmethod
    def _shape(program):
        return [(t.name, [str(s) for s in t.body]) for t in program.threads]

    def test_deterministic_given_seed(self):
        import random

        first = random_program(random.Random(99))
        second = random_program(random.Random(99))
        assert self._shape(first) == self._shape(second)

    def test_different_seeds_vary_topology(self):
        import random

        dumps = {
            str(self._shape(random_program(random.Random(seed), name="r")))
            for seed in range(12)
        }
        assert len(dumps) > 1

    def test_never_deadlocks(self):
        import random

        rng = random.Random(1)
        for index in range(40):
            program = random_program(rng, name=f"dl{index}")
            program.validate()
            for seed in (0, 1):
                run = run_program(program, seed=seed)
                assert not run.deadlocked, program.name

    def test_direct_payloads_globally_distinct(self):
        import random

        rng = random.Random(5)
        for index in range(20):
            program = random_program(rng, forward_probability=0.0)
            run = run_program(program, seed=0)
            payloads = [s.payload_value for s in run.trace.sends()]
            assert len(payloads) == len(set(payloads))

    def test_size_bounds_respected(self):
        import random

        rng = random.Random(3)
        for index in range(30):
            program = random_program(
                rng, max_senders=2, max_receivers=2, max_messages=2
            )
            run = run_program(program, seed=0)
            assert len(run.trace.sends()) <= 2 + 1  # direct + 1 forward
            assert len(program.threads) <= 4

    def test_rejects_bad_bounds(self):
        import random

        with pytest.raises(ProgramError):
            random_program(random.Random(0), max_messages=0)

    def test_draws_all_assertion_shapes(self):
        """Over a modest sample the generator produces safe, racy and
        impossible assertions as well as assertion-free programs."""
        import random

        rng = random.Random(11)
        labels = set()
        bare = 0
        for index in range(60):
            program = random_program(rng)
            run = run_program(program, seed=0)
            trace_labels = {a.label or "" for a in run.trace.assertions()}
            if not trace_labels:
                bare += 1
            labels |= {label.rsplit("-", 1)[-1] for label in trace_labels}
        assert {"first", "sum", "impossible"} <= labels
        assert bare > 0
