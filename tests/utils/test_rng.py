"""Tests for the deterministic RNG helper."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(42)
    b = DeterministicRNG(42)
    assert [a.randint(0, 100) for _ in range(20)] == [
        b.randint(0, 100) for _ in range(20)
    ]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.randint(0, 10**9) for _ in range(5)] != [
        b.randint(0, 10**9) for _ in range(5)
    ]


def test_fork_is_deterministic():
    a = DeterministicRNG(7).fork(3)
    b = DeterministicRNG(7).fork(3)
    assert a.randint(0, 1000) == b.randint(0, 1000)


def test_fork_independent_of_parent_consumption():
    parent1 = DeterministicRNG(5)
    parent1.randint(0, 10)
    fork1 = parent1.fork(1)
    parent2 = DeterministicRNG(5)
    fork2 = parent2.fork(1)
    assert fork1.randint(0, 10**6) == fork2.randint(0, 10**6)


def test_shuffle_returns_new_list():
    rng = DeterministicRNG(0)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert sorted(shuffled) == original
    assert original == [1, 2, 3, 4, 5]


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        DeterministicRNG(0).choice([])


def test_geometric_bounds():
    rng = DeterministicRNG(3)
    for _ in range(200):
        value = rng.geometric(0.5, cap=8)
        assert 0 <= value <= 8


def test_geometric_p_one_is_zero():
    rng = DeterministicRNG(3)
    assert all(rng.geometric(1.0) == 0 for _ in range(10))


def test_geometric_invalid_p():
    with pytest.raises(ValueError):
        DeterministicRNG(0).geometric(0.0)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(0, 100))
def test_randint_within_bounds(seed, hi):
    rng = DeterministicRNG(seed)
    value = rng.randint(0, hi)
    assert 0 <= value <= hi


@given(st.lists(st.integers(), min_size=1, max_size=20), st.integers(0, 1000))
def test_shuffle_is_permutation(items, seed):
    rng = DeterministicRNG(seed)
    assert sorted(rng.shuffle(items)) == sorted(items)
