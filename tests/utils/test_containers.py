"""Tests for IdGenerator, UnionFind and timing helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.ids import IdGenerator
from repro.utils.timing import StatsCollector, Stopwatch, Timer
from repro.utils.unionfind import UnionFind


class TestIdGenerator:
    def test_fresh_is_monotonic(self):
        gen = IdGenerator()
        ids = [gen.fresh() for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_start_offset(self):
        gen = IdGenerator(start=100)
        assert gen.fresh() == 100

    def test_for_key_is_stable(self):
        gen = IdGenerator()
        a = gen.for_key("x")
        b = gen.for_key("y")
        assert gen.for_key("x") == a
        assert a != b
        assert gen.known("x")
        assert not gen.known("z")

    def test_reset(self):
        gen = IdGenerator()
        gen.for_key("x")
        gen.reset()
        assert not gen.known("x")
        assert gen.fresh() == 0


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(["a", "b"])
        assert not uf.same("a", "b")

    def test_union_links(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_classes_partition(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.add(5)
        classes = uf.classes()
        assert sorted(sorted(c) for c in classes) == [[1, 2], [3, 4], [5]]

    def test_contains_and_len(self):
        uf = UnionFind()
        uf.add("x")
        assert "x" in uf
        assert "y" not in uf
        assert len(uf) == 1

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_transitive_closure_matches_reference(self, pairs):
        """Union-find must agree with a naive reachability computation."""
        uf = UnionFind()
        adjacency = {}
        for a, b in pairs:
            uf.union(a, b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        def reachable(start):
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        for a, b in pairs:
            assert uf.same(a, b) == (b in reachable(a))


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        first = sw.elapsed
        sw.start()
        sw.stop()
        assert sw.elapsed >= first

    def test_stopwatch_misuse(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stopwatch_reset(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_timer_context(self):
        with Timer() as t:
            pass
        assert t.seconds >= 0.0

    def test_stats_collector(self):
        stats = StatsCollector()
        stats.bump("conflicts")
        stats.bump("conflicts", 2)
        stats.record("time", 1.0)
        stats.record("time", 3.0)
        summary = stats.summary()
        assert summary["conflicts"] == 3
        assert summary["time_mean"] == 2.0
        assert summary["time_max"] == 3.0
        assert stats.get("missing") == 0
