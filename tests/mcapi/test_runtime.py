"""Tests for the MCAPI runtime simulator (endpoints, messaging, requests)."""

import pytest

from repro.mcapi import (
    EndpointId,
    ImmediateDelivery,
    McapiRuntime,
    McapiStatus,
    RequestKind,
    UnorderedDelivery,
)
from repro.mcapi.status import MCAPI_PORT_ANY
from repro.utils.errors import McapiError


@pytest.fixture
def runtime():
    rt = McapiRuntime()
    rt.initialize(0)
    rt.initialize(1)
    return rt


class TestLifecycle:
    def test_initialize_and_finalize(self):
        rt = McapiRuntime()
        rt.initialize(7)
        assert rt.is_initialized(7)
        assert rt.finalize(7) is McapiStatus.SUCCESS
        assert not rt.is_initialized(7)

    def test_double_initialize_rejected(self):
        rt = McapiRuntime()
        rt.initialize(0)
        with pytest.raises(McapiError):
            rt.initialize(0)

    def test_finalize_uninitialized(self):
        rt = McapiRuntime()
        assert rt.finalize(3) is McapiStatus.ERR_NODE_NOTINIT

    def test_finalize_closes_endpoints(self):
        rt = McapiRuntime()
        rt.initialize(0)
        ep = rt.endpoint_create(0, 1)
        rt.finalize(0)
        with pytest.raises(McapiError):
            rt.msg_available(ep)


class TestEndpoints:
    def test_create_and_get(self, runtime):
        ep = runtime.endpoint_create(0, 5)
        assert ep == EndpointId(0, 5)
        assert runtime.endpoint_get(0, 5) == ep

    def test_create_on_uninitialized_node(self, runtime):
        with pytest.raises(McapiError):
            runtime.endpoint_create(9, 0)

    def test_duplicate_port_rejected(self, runtime):
        runtime.endpoint_create(0, 3)
        with pytest.raises(McapiError):
            runtime.endpoint_create(0, 3)

    def test_port_any_allocates_fresh_ports(self, runtime):
        a = runtime.endpoint_create(0, MCAPI_PORT_ANY)
        b = runtime.endpoint_create(0, MCAPI_PORT_ANY)
        assert a.node == b.node == 0
        assert a.port != b.port

    def test_get_missing_endpoint(self, runtime):
        with pytest.raises(McapiError):
            runtime.endpoint_get(1, 42)

    def test_delete_endpoint(self, runtime):
        ep = runtime.endpoint_create(0, 2)
        assert runtime.endpoint_delete(ep) is McapiStatus.SUCCESS
        assert runtime.endpoint_delete(ep) is McapiStatus.ERR_ENDP_INVALID


class TestMessaging:
    def test_send_goes_in_transit_not_delivered(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        runtime.msg_send(src, dst, 42)
        assert runtime.msg_available(dst) == 0
        assert not runtime.quiescent()

    def test_deliver_then_receive(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        runtime.msg_send(src, dst, 42)
        (record,) = runtime.deliverable_messages()
        runtime.deliver(record)
        assert runtime.msg_available(dst) == 1
        message = runtime.msg_recv_try(dst)
        assert message.payload == 42
        assert runtime.quiescent()

    def test_recv_on_empty_queue_returns_none(self, runtime):
        dst = runtime.endpoint_create(1, 0)
        assert runtime.msg_recv_try(dst) is None

    def test_send_validations(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        with pytest.raises(McapiError):
            runtime.msg_send(src, EndpointId(5, 5), 1)
        with pytest.raises(McapiError):
            runtime.msg_send(src, dst, 1, priority=99)
        with pytest.raises(McapiError):
            runtime.msg_send(src, dst, "x" * 10_000)

    def test_pair_fifo_is_enforced_by_policies(self, runtime):
        """Two messages over the same endpoint pair deliver in send order."""
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        first = runtime.msg_send(src, dst, 1)
        second = runtime.msg_send(src, dst, 2)
        deliverable = runtime.deliverable_messages()
        assert [r.message_id for r in deliverable] == [first.message_id]
        runtime.deliver(deliverable[0])
        deliverable = runtime.deliverable_messages()
        assert [r.message_id for r in deliverable] == [second.message_id]

    def test_cross_sender_reordering_allowed_by_default(self, runtime):
        """Messages from different sources to one endpoint may arrive in any order."""
        runtime.initialize(2)
        src_a = runtime.endpoint_create(0, 0)
        src_b = runtime.endpoint_create(2, 0)
        dst = runtime.endpoint_create(1, 0)
        a = runtime.msg_send(src_a, dst, 1)
        b = runtime.msg_send(src_b, dst, 2)
        ids = {r.message_id for r in runtime.deliverable_messages()}
        assert ids == {a.message_id, b.message_id}

    def test_immediate_policy_forces_global_order(self):
        rt = McapiRuntime(policy=ImmediateDelivery())
        rt.initialize(0)
        rt.initialize(1)
        rt.initialize(2)
        src_a = rt.endpoint_create(0, 0)
        src_b = rt.endpoint_create(2, 0)
        dst = rt.endpoint_create(1, 0)
        first = rt.msg_send(src_a, dst, 1)
        rt.msg_send(src_b, dst, 2)
        ids = [r.message_id for r in rt.deliverable_messages()]
        assert ids == [first.message_id]

    def test_double_delivery_rejected(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        runtime.msg_send(src, dst, 1)
        (record,) = runtime.deliverable_messages()
        runtime.deliver(record)
        with pytest.raises(McapiError):
            runtime.deliver(record)


class TestNonBlocking:
    def test_send_i_completes_immediately(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        request, message = runtime.msg_send_i(src, dst, 9)
        assert request.kind is RequestKind.SEND
        assert runtime.test(request)
        assert message.payload == 9

    def test_recv_i_binds_on_delivery(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        request = runtime.msg_recv_i(dst)
        assert not runtime.test(request)
        assert not runtime.wait_ready(request)
        runtime.msg_send(src, dst, 5)
        (record,) = runtime.deliverable_messages()
        bound = runtime.deliver(record)
        assert bound is request
        assert runtime.test(request)
        assert request.take_message().payload == 5

    def test_recv_i_binds_immediately_if_message_waiting(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        runtime.msg_send(src, dst, 7)
        (record,) = runtime.deliverable_messages()
        runtime.deliver(record)
        request = runtime.msg_recv_i(dst)
        assert request.completed
        assert request.take_message().payload == 7

    def test_requests_bind_in_posting_order(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        first = runtime.msg_recv_i(dst)
        second = runtime.msg_recv_i(dst)
        runtime.msg_send(src, dst, 1)
        runtime.msg_send(src, dst, 2)
        for record in list(runtime.deliverable_messages()):
            runtime.deliver(record)
        for record in list(runtime.deliverable_messages()):
            runtime.deliver(record)
        assert first.take_message().payload == 1
        assert second.take_message().payload == 2

    def test_cancel(self, runtime):
        dst = runtime.endpoint_create(1, 0)
        request = runtime.msg_recv_i(dst)
        assert runtime.cancel(request) is McapiStatus.SUCCESS
        assert request.cancelled
        with pytest.raises(McapiError):
            runtime.wait_ready(request)

    def test_cancel_completed_request_fails(self, runtime):
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        runtime.msg_send(src, dst, 7)
        (record,) = runtime.deliverable_messages()
        runtime.deliver(record)
        request = runtime.msg_recv_i(dst)
        assert runtime.cancel(request) is McapiStatus.ERR_REQUEST_INVALID

    def test_unknown_request_rejected(self, runtime):
        from repro.mcapi.requests import Request, RequestKind

        foreign = Request(kind=RequestKind.RECEIVE, endpoint=EndpointId(0, 0))
        with pytest.raises(McapiError):
            runtime.test(foreign)
