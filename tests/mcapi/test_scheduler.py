"""Tests for the cooperative scheduler, strategies and the delay policies."""

import pytest

from repro.mcapi import (
    Action,
    DeliveryEagerStrategy,
    McapiRuntime,
    RandomDelayDelivery,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    Scheduler,
    Task,
    TaskStatus,
)
from repro.utils.errors import McapiError
from repro.utils.rng import DeterministicRNG


class SenderTask(Task):
    """Sends a fixed list of payloads to a destination endpoint."""

    def __init__(self, name, source, destination, payloads):
        super().__init__(name)
        self.source = source
        self.destination = destination
        self.payloads = list(payloads)

    def status(self, runtime):
        return TaskStatus.DONE if not self.payloads else TaskStatus.READY

    def step(self, runtime):
        runtime.msg_send(self.source, self.destination, self.payloads.pop(0), sender_thread=self.name)


class ReceiverTask(Task):
    """Receives ``count`` messages on its endpoint, recording payloads."""

    def __init__(self, name, endpoint, count):
        super().__init__(name)
        self.endpoint = endpoint
        self.remaining = count
        self.received = []

    def status(self, runtime):
        if self.remaining == 0:
            return TaskStatus.DONE
        if runtime.msg_available(self.endpoint) == 0:
            return TaskStatus.BLOCKED
        return TaskStatus.READY

    def step(self, runtime):
        message = runtime.msg_recv_try(self.endpoint)
        assert message is not None
        self.received.append(message.payload)
        self.remaining -= 1


def _setup(num_senders=2, messages_each=1):
    runtime = McapiRuntime()
    runtime.initialize(0)
    receiver_ep = runtime.endpoint_create(0, 0)
    tasks = []
    for index in range(num_senders):
        runtime.initialize(index + 1)
        src = runtime.endpoint_create(index + 1, 0)
        payloads = [10 * (index + 1) + k for k in range(messages_each)]
        tasks.append(SenderTask(f"send{index}", src, receiver_ep, payloads))
    receiver = ReceiverTask("recv", receiver_ep, num_senders * messages_each)
    return runtime, [receiver] + tasks, receiver


class TestSchedulerBasics:
    def test_runs_to_completion(self):
        runtime, tasks, receiver = _setup()
        result = Scheduler(runtime, tasks, strategy=RoundRobinStrategy()).run()
        assert result.ok
        assert sorted(receiver.received) == [10, 20]

    def test_duplicate_task_names_rejected(self):
        runtime, tasks, _ = _setup()
        with pytest.raises(McapiError):
            Scheduler(runtime, tasks + [ReceiverTask("recv", tasks[0].endpoint, 1)])

    def test_deadlock_detected(self):
        runtime = McapiRuntime()
        runtime.initialize(0)
        ep = runtime.endpoint_create(0, 0)
        receiver = ReceiverTask("recv", ep, 1)  # nobody ever sends
        result = Scheduler(runtime, [receiver]).run()
        assert result.deadlocked
        assert result.blocked_tasks == ["recv"]
        assert not result.ok

    def test_max_steps_guard(self):
        class SpinTask(Task):
            def status(self, runtime):
                return TaskStatus.READY

            def step(self, runtime):
                pass

        runtime = McapiRuntime()
        with pytest.raises(McapiError):
            Scheduler(runtime, [SpinTask("spin")], max_steps=10).run()

    def test_observer_sees_every_action(self):
        runtime, tasks, _ = _setup()
        seen = []
        scheduler = Scheduler(
            runtime, tasks, strategy=RoundRobinStrategy(), observer=seen.append
        )
        result = scheduler.run()
        assert len(seen) == result.steps
        assert all(isinstance(action, Action) for action in seen)


class TestStrategies:
    def test_random_strategy_is_seed_deterministic(self):
        schedules = []
        for _ in range(2):
            runtime, tasks, receiver = _setup(num_senders=3)
            result = Scheduler(runtime, tasks, strategy=RandomStrategy(7)).run()
            schedules.append([str(a) for a in result.schedule])
        assert schedules[0] == schedules[1]

    def test_different_seeds_can_reorder_messages(self):
        orders = set()
        for seed in range(12):
            runtime, tasks, receiver = _setup(num_senders=2)
            Scheduler(runtime, tasks, strategy=RandomStrategy(seed)).run()
            orders.add(tuple(receiver.received))
        # Both arrival orders should be observable across seeds.
        assert len(orders) >= 2

    def test_delivery_eager_strategy_delivers_in_send_order(self):
        runtime, tasks, receiver = _setup(num_senders=2)
        result = Scheduler(runtime, tasks, strategy=DeliveryEagerStrategy()).run()
        assert result.ok
        assert len(receiver.received) == 2

    def test_replay_strategy_reproduces_schedule(self):
        runtime, tasks, receiver = _setup(num_senders=2)
        result = Scheduler(runtime, tasks, strategy=RandomStrategy(3)).run()
        recorded = result.schedule
        order_first = list(receiver.received)

        runtime2, tasks2, receiver2 = _setup(num_senders=2)
        result2 = Scheduler(runtime2, tasks2, strategy=ReplayStrategy(recorded)).run()
        assert result2.ok
        assert receiver2.received == order_first

    def test_replay_strategy_rejects_infeasible_action(self):
        runtime, tasks, _ = _setup(num_senders=1)
        bogus = [Action(kind="deliver", message_id=999)]
        with pytest.raises(McapiError):
            Scheduler(runtime, tasks, strategy=ReplayStrategy(bogus)).run()

    def test_replay_strategy_exhausted(self):
        runtime, tasks, _ = _setup(num_senders=1)
        with pytest.raises(McapiError):
            Scheduler(runtime, tasks, strategy=ReplayStrategy([])).run()


class TestDelayPolicy:
    def test_random_delay_policy_defers_delivery(self):
        policy = RandomDelayDelivery(DeterministicRNG(1), mean_delay=3.0)
        runtime = McapiRuntime(policy=policy)
        runtime.initialize(0)
        runtime.initialize(1)
        src = runtime.endpoint_create(0, 0)
        dst = runtime.endpoint_create(1, 0)
        delays = []
        for i in range(20):
            message = runtime.msg_send(src, dst, i)
            record = runtime.network.find(message.message_id)
            delays.append(record.min_delay)
        assert any(d > 0 for d in delays)

    def test_action_str_and_key(self):
        a = Action(kind="run", task_name="t0")
        b = Action(kind="deliver", message_id=3)
        assert "t0" in str(a) and "3" in str(b)
        assert a.key() != b.key()
